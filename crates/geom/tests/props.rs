//! Property-based tests for the geometry primitives.

use geom::{Grid2d, Point, Rect};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
    )
        .prop_map(|(a, b, c, d)| Rect::new(a, b, c, d))
}

proptest! {
    #[test]
    fn rect_is_always_normalized(r in arb_rect()) {
        prop_assert!(r.llx <= r.urx);
        prop_assert!(r.lly <= r.ury);
        prop_assert!(r.area() >= 0.0);
    }

    #[test]
    fn intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn manhattan_at_least_euclidean(
        ax in -50.0f64..50.0, ay in -50.0f64..50.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        prop_assert!(a.manhattan_to(b) + 1e-9 >= a.distance_to(b));
    }

    #[test]
    fn triangle_inequality(
        ax in -50.0f64..50.0, ay in -50.0f64..50.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0,
        cx in -50.0f64..50.0, cy in -50.0f64..50.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
    }

    #[test]
    fn splat_conserves_mass_for_interior_rects(
        x in 0.0f64..30.0, y in 0.0f64..30.0,
        w in 0.1f64..10.0, h in 0.1f64..10.0,
        amount in 0.0f64..100.0,
    ) {
        let mut g = Grid2d::new(8, 8, Rect::new(0.0, 0.0, 40.0, 40.0), 0.0);
        let r = Rect::new(x, y, x + w, y + h);
        g.splat(&r, amount);
        // Interior rectangles deposit everything.
        prop_assert!((g.sum() - amount).abs() < 1e-9 * amount.max(1.0));
    }

    #[test]
    fn bin_of_agrees_with_bin_rect(
        x in 0.0f64..40.0, y in 0.0f64..40.0,
    ) {
        let g = Grid2d::new(5, 7, Rect::new(0.0, 0.0, 40.0, 40.0), 0.0f64);
        let (ix, iy) = g.bin_of(x, y).expect("inside extent");
        let r = g.bin_rect(ix, iy);
        prop_assert!(r.contains(Point::new(x, y)));
    }
}
