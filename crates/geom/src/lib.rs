//! Geometry primitives and unit conventions shared by the `coolplace` stack.
//!
//! All layout coordinates in this workspace are **microns** (`f64`), with the
//! die origin at the lower-left corner, x growing right and y growing up —
//! the usual DEF/LEF convention. Discrete layout quantities (row indices,
//! site indices) are integers wrapped in newtypes created with [`define_id!`].
//!
//! # Examples
//!
//! ```
//! use geom::{Point, Rect};
//!
//! let core = Rect::new(0.0, 0.0, 335.0, 335.0);
//! assert!(core.contains(Point::new(100.0, 200.0)));
//! assert_eq!(core.area(), 335.0 * 335.0);
//! ```

mod grid;
mod point;
mod rect;

pub mod ids;

pub use grid::Grid2d;
pub use point::Point;
pub use rect::Rect;

/// Microns, the universal layout length unit of the workspace.
pub type Um = f64;

/// Returns `true` when `a` and `b` differ by at most `tol`.
///
/// Convenience used throughout the geometry tests; exposed because the
/// downstream crates compare layout coordinates with the same tolerance.
///
/// # Examples
///
/// ```
/// assert!(geom::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!geom::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
