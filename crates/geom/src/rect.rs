use serde::{Deserialize, Serialize};

use crate::{Point, Um};

/// An axis-aligned rectangle in die coordinates (microns).
///
/// The rectangle is stored as lower-left / upper-right corners and is kept
/// normalized (`llx <= urx`, `lly <= ury`) by every constructor.
///
/// # Examples
///
/// ```
/// use geom::Rect;
///
/// let a = Rect::new(0.0, 0.0, 10.0, 10.0);
/// let b = Rect::new(5.0, 5.0, 15.0, 15.0);
/// let i = a.intersection(&b).expect("rectangles overlap");
/// assert_eq!(i.area(), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left x in microns.
    pub llx: Um,
    /// Lower-left y in microns.
    pub lly: Um,
    /// Upper-right x in microns.
    pub urx: Um,
    /// Upper-right y in microns.
    pub ury: Um,
}

impl Rect {
    /// Creates a rectangle from two corners, normalizing their order.
    pub fn new(llx: Um, lly: Um, urx: Um, ury: Um) -> Self {
        Rect {
            llx: llx.min(urx),
            lly: lly.min(ury),
            urx: llx.max(urx),
            ury: lly.max(ury),
        }
    }

    /// Creates a rectangle from its lower-left corner and size.
    pub fn from_origin_size(origin: Point, width: Um, height: Um) -> Self {
        Rect::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// Width in microns.
    pub fn width(&self) -> Um {
        self.urx - self.llx
    }

    /// Height in microns.
    pub fn height(&self) -> Um {
        self.ury - self.lly
    }

    /// Area in square microns.
    pub fn area(&self) -> Um {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.llx + self.urx) / 2.0, (self.lly + self.ury) / 2.0)
    }

    /// Lower-left corner.
    pub fn ll(&self) -> Point {
        Point::new(self.llx, self.lly)
    }

    /// Upper-right corner.
    pub fn ur(&self) -> Point {
        Point::new(self.urx, self.ury)
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.llx && p.x <= self.urx && p.y >= self.lly && p.y <= self.ury
    }

    /// Whether `other` lies fully inside `self` (boundaries allowed).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.llx >= self.llx
            && other.lly >= self.lly
            && other.urx <= self.urx
            && other.ury <= self.ury
    }

    /// Whether the two rectangles share interior area (touching edges do
    /// not count as an intersection).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.llx < other.urx && other.llx < self.urx && self.lly < other.ury && other.lly < self.ury
    }

    /// The overlapping region, if the rectangles share interior area.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.llx.max(other.llx),
            self.lly.max(other.lly),
            self.urx.min(other.urx),
            self.ury.min(other.ury),
        ))
    }

    /// Smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.llx.min(other.llx),
            self.lly.min(other.lly),
            self.urx.max(other.urx),
            self.ury.max(other.ury),
        )
    }

    /// Grows (or with a negative margin, shrinks) the rectangle on all
    /// sides. Shrinking past a degenerate rectangle collapses to the center.
    pub fn expand(&self, margin: Um) -> Rect {
        let c = self.center();
        Rect::new(
            (self.llx - margin).min(c.x),
            (self.lly - margin).min(c.y),
            (self.urx + margin).max(c.x),
            (self.ury + margin).max(c.y),
        )
    }

    /// Clamps `self` into `outer`, returning the overlapping portion or a
    /// degenerate rectangle on `outer`'s nearest edge when disjoint.
    pub fn clamp_into(&self, outer: &Rect) -> Rect {
        Rect::new(
            self.llx.clamp(outer.llx, outer.urx),
            self.lly.clamp(outer.lly, outer.ury),
            self.urx.clamp(outer.llx, outer.urx),
            self.ury.clamp(outer.lly, outer.ury),
        )
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.3},{:.3} .. {:.3},{:.3}]",
            self.llx, self.lly, self.urx, self.ury
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_normalizes_corners() {
        let r = Rect::new(10.0, 8.0, 2.0, 4.0);
        assert_eq!(r, Rect::new(2.0, 4.0, 10.0, 8.0));
        assert!(r.width() >= 0.0 && r.height() >= 0.0);
    }

    #[test]
    fn intersection_commutes() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, -2.0, 20.0, 3.0);
        assert_eq!(a.intersection(&b), b.intersection(&a));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(5.0, 0.0, 10.0, 3.0));
    }

    #[test]
    fn touching_edges_do_not_intersect() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(10.0, 0.0, 20.0, 10.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn union_contains_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, 5.0, 6.0, 7.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
    }

    #[test]
    fn expand_then_shrink_roundtrips() {
        let a = Rect::new(2.0, 2.0, 8.0, 8.0);
        let grown = a.expand(1.5);
        assert_eq!(grown.expand(-1.5), a);
    }

    #[test]
    fn shrink_past_center_collapses() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let s = a.expand(-5.0);
        assert_eq!(s.area(), 0.0);
        assert_eq!(s.center(), a.center());
    }

    #[test]
    fn clamp_into_restricts_to_outer() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(-5.0, 3.0, 25.0, 12.0).clamp_into(&outer);
        assert!(outer.contains_rect(&inner));
        assert_eq!(inner, Rect::new(0.0, 3.0, 10.0, 10.0));
    }
}
