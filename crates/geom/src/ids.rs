//! Index newtypes for the EDA databases.
//!
//! Every database in the stack (netlists, placements, circuits) stores its
//! objects in `Vec`s and refers to them by dense `u32` indices. The
//! [`define_id!`](crate::define_id) macro stamps out a newtype per object
//! class so a `CellId` can never be used to index nets (C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! geom::define_id!(
//!     /// Identifies a widget in a widget store.
//!     pub struct WidgetId
//! );
//!
//! let w = WidgetId::new(3);
//! assert_eq!(w.index(), 3);
//! assert_eq!(w.to_string(), "WidgetId(3)");
//! ```

/// Defines a `u32`-backed dense index newtype with the common trait set.
///
/// The generated type implements `Debug`, `Display`, `Clone`, `Copy`,
/// equality, ordering and hashing, plus `new`/`index` accessors and
/// `From<u32>`.
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* pub struct $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            serde::Serialize, serde::Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense vector index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn new(index: usize) -> Self {
                $name(u32::try_from(index).expect("id index overflows u32"))
            }

            /// The dense vector index this id refers to.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    define_id!(
        /// Test-only id.
        pub struct TestId
    );

    #[test]
    fn roundtrips_index() {
        let id = TestId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(TestId::from(42u32), id);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TestId::new(1) < TestId::new(2));
    }

    #[test]
    fn works_in_function_scope() {
        define_id!(
            /// Id declared inside a function.
            pub struct LocalId
        );
        assert_eq!(LocalId::new(0).index(), 0);
    }
}
