use serde::{Deserialize, Serialize};

use crate::{Rect, Um};

/// A dense 2-D grid of values laid over a rectangular die region.
///
/// The grid is the common currency between the power estimator (power-density
/// maps), the thermal simulator (temperature maps) and the hotspot detector.
/// Bin `(0, 0)` is the lower-left corner, following die coordinates.
///
/// # Examples
///
/// ```
/// use geom::{Grid2d, Rect};
///
/// let mut g = Grid2d::new(4, 4, Rect::new(0.0, 0.0, 40.0, 40.0), 0.0f64);
/// *g.get_mut(2, 3) = 7.5;
/// assert_eq!(g.get(2, 3), &7.5);
/// assert_eq!(g.bin_of(25.0, 35.0), Some((2, 3)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2d<T> {
    nx: usize,
    ny: usize,
    extent: Rect,
    data: Vec<T>,
}

impl<T: Clone> Grid2d<T> {
    /// Creates a grid of `nx`×`ny` bins covering `extent`, filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or the extent is degenerate.
    pub fn new(nx: usize, ny: usize, extent: Rect, fill: T) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one bin per axis");
        assert!(
            extent.width() > 0.0 && extent.height() > 0.0,
            "grid extent must have positive area"
        );
        Grid2d {
            nx,
            ny,
            extent,
            data: vec![fill; nx * ny],
        }
    }
}

impl<T> Grid2d<T> {
    /// Number of bins along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of bins along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The die region covered by the grid.
    pub fn extent(&self) -> Rect {
        self.extent
    }

    /// Bin width in microns.
    pub fn bin_width(&self) -> Um {
        self.extent.width() / self.nx as f64
    }

    /// Bin height in microns.
    pub fn bin_height(&self) -> Um {
        self.extent.height() / self.ny as f64
    }

    fn index(&self, ix: usize, iy: usize) -> usize {
        assert!(ix < self.nx && iy < self.ny, "grid index out of bounds");
        iy * self.nx + ix
    }

    /// Reference to the value in bin `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the bin index is out of bounds.
    pub fn get(&self, ix: usize, iy: usize) -> &T {
        &self.data[self.index(ix, iy)]
    }

    /// Mutable reference to the value in bin `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the bin index is out of bounds.
    pub fn get_mut(&mut self, ix: usize, iy: usize) -> &mut T {
        let i = self.index(ix, iy);
        &mut self.data[i]
    }

    /// The bin containing die point `(x, y)`, or `None` outside the extent.
    /// Points on the upper/right boundary map into the last bin.
    pub fn bin_of(&self, x: Um, y: Um) -> Option<(usize, usize)> {
        let e = &self.extent;
        if x < e.llx || x > e.urx || y < e.lly || y > e.ury {
            return None;
        }
        let ix = (((x - e.llx) / self.bin_width()) as usize).min(self.nx - 1);
        let iy = (((y - e.lly) / self.bin_height()) as usize).min(self.ny - 1);
        Some((ix, iy))
    }

    /// The die rectangle covered by bin `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the bin index is out of bounds.
    pub fn bin_rect(&self, ix: usize, iy: usize) -> Rect {
        assert!(ix < self.nx && iy < self.ny, "grid index out of bounds");
        let w = self.bin_width();
        let h = self.bin_height();
        Rect::new(
            self.extent.llx + ix as f64 * w,
            self.extent.lly + iy as f64 * h,
            self.extent.llx + (ix + 1) as f64 * w,
            self.extent.lly + (iy + 1) as f64 * h,
        )
    }

    /// Iterates over `((ix, iy), &value)` in row-major order (y outer).
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &T)> {
        let nx = self.nx;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| ((i % nx, i / nx), v))
    }

    /// The raw values in row-major order (y outer, x inner).
    pub fn values(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw values in row-major order.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl Grid2d<f64> {
    /// Largest value together with its bin, or `None` for all-NaN grids.
    pub fn max_bin(&self) -> Option<((usize, usize), f64)> {
        self.iter()
            .filter(|(_, v)| !v.is_nan())
            .map(|(b, v)| (b, *v))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Smallest value together with its bin, or `None` for all-NaN grids.
    pub fn min_bin(&self) -> Option<((usize, usize), f64)> {
        self.iter()
            .filter(|(_, v)| !v.is_nan())
            .map(|(b, v)| (b, *v))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Sum of all bin values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all bin values.
    pub fn mean(&self) -> f64 {
        self.sum() / (self.data.len() as f64)
    }

    /// Accumulates `amount` into the bins overlapped by `footprint`,
    /// weighted by overlap area. Portions outside the extent are dropped.
    ///
    /// This implements the paper's rule that "the power value in a thermal
    /// cell is the sum of power consumptions in all the standard cells that
    /// it covers", with area weighting for cells straddling bins.
    pub fn splat(&mut self, footprint: &Rect, amount: f64) {
        let total = footprint.area();
        if total <= 0.0 {
            // Degenerate footprint: deposit into the containing bin.
            if let Some((ix, iy)) = self.bin_of(footprint.llx, footprint.lly) {
                *self.get_mut(ix, iy) += amount;
            }
            return;
        }
        let Some(clipped) = footprint.intersection(&self.extent.expand(-0.0)) else {
            return;
        };
        let (ix0, iy0) = self
            .bin_of(clipped.llx, clipped.lly)
            .expect("clipped rect starts inside extent");
        let (ix1, iy1) = self
            .bin_of(
                clipped.urx.min(self.extent.urx),
                clipped.ury.min(self.extent.ury),
            )
            .expect("clipped rect ends inside extent");
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let bin = self.bin_rect(ix, iy);
                if let Some(ov) = bin.intersection(footprint) {
                    *self.get_mut(ix, iy) += amount * ov.area() / total;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Grid2d<f64> {
        Grid2d::new(4, 4, Rect::new(0.0, 0.0, 40.0, 40.0), 0.0)
    }

    #[test]
    fn bin_of_maps_boundaries_inward() {
        let g = grid4();
        assert_eq!(g.bin_of(0.0, 0.0), Some((0, 0)));
        assert_eq!(g.bin_of(40.0, 40.0), Some((3, 3)));
        assert_eq!(g.bin_of(-0.1, 1.0), None);
    }

    #[test]
    fn bin_rect_tiles_extent() {
        let g = grid4();
        let mut area = 0.0;
        for iy in 0..4 {
            for ix in 0..4 {
                area += g.bin_rect(ix, iy).area();
            }
        }
        assert!(crate::approx_eq(area, g.extent().area(), 1e-9));
    }

    #[test]
    fn splat_conserves_mass_inside_extent() {
        let mut g = grid4();
        g.splat(&Rect::new(5.0, 5.0, 25.0, 15.0), 2.0);
        assert!(crate::approx_eq(g.sum(), 2.0, 1e-12));
    }

    #[test]
    fn splat_weights_by_overlap() {
        let mut g = grid4();
        // Straddles bins (0,0) and (1,0) equally.
        g.splat(&Rect::new(5.0, 0.0, 15.0, 10.0), 4.0);
        assert!(crate::approx_eq(*g.get(0, 0), 2.0, 1e-12));
        assert!(crate::approx_eq(*g.get(1, 0), 2.0, 1e-12));
    }

    #[test]
    fn splat_outside_extent_is_dropped() {
        let mut g = grid4();
        g.splat(&Rect::new(100.0, 100.0, 110.0, 110.0), 1.0);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    fn max_and_min_bins() {
        let mut g = grid4();
        *g.get_mut(1, 2) = 9.0;
        *g.get_mut(3, 0) = -4.0;
        assert_eq!(g.max_bin(), Some(((1, 2), 9.0)));
        assert_eq!(g.min_bin(), Some(((3, 0), -4.0)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let g = grid4();
        let _ = g.get(4, 0);
    }
}
