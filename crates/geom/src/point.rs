use serde::{Deserialize, Serialize};

use crate::Um;

/// A point in die coordinates, in microns.
///
/// # Examples
///
/// ```
/// use geom::Point;
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// assert_eq!(a.manhattan_to(b), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in microns.
    pub x: Um,
    /// Vertical coordinate in microns.
    pub y: Um,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: Um, y: Um) -> Self {
        Point { x, y }
    }

    /// The point at the origin `(0, 0)`.
    pub fn origin() -> Self {
        Point::default()
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(self, other: Point) -> Um {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Manhattan (L1) distance to `other` — the routing-relevant metric.
    pub fn manhattan_to(self, other: Point) -> Um {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise translation.
    pub fn offset(self, dx: Um, dy: Um) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(Um, Um)> for Point {
    fn from((x, y): (Um, Um)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(b), 5.0);
    }

    #[test]
    fn manhattan_dominates_euclidean() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.0);
        assert!(a.manhattan_to(b) >= a.distance_to(b));
    }

    #[test]
    fn offset_moves_both_axes() {
        let p = Point::new(1.0, 1.0).offset(2.0, -3.0);
        assert_eq!(p, Point::new(3.0, -2.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Point::origin().to_string().is_empty());
    }
}
