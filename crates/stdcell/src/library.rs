use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{c65_cells, CellDef, CellFunction, Drive, LibCellId};

/// A standard-cell library: the cell catalogue plus the row/site geometry
/// that every placement in this workspace is built on.
///
/// # Examples
///
/// ```
/// use stdcell::{CellFunction, Drive, Library};
///
/// let lib = Library::c65();
/// assert!(lib.len() > 20);
/// let dff = lib.cell_for(CellFunction::Dff, Drive::X1).expect("DFF exists");
/// assert!(lib.cell(dff).function().is_sequential());
/// // Fillers come in power-of-two site widths for gap filling.
/// assert!(!lib.fillers().is_empty());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Library {
    name: String,
    site_width_um: f64,
    row_height_um: f64,
    voltage_v: f64,
    cells: Vec<CellDef>,
    #[serde(skip)]
    by_name: HashMap<String, LibCellId>,
}

impl Library {
    /// Builds a library from explicit geometry and a cell catalogue.
    ///
    /// # Panics
    ///
    /// Panics if two cells share a name, or geometry is non-positive.
    pub fn new(
        name: impl Into<String>,
        site_width_um: f64,
        row_height_um: f64,
        voltage_v: f64,
        cells: Vec<CellDef>,
    ) -> Self {
        assert!(site_width_um > 0.0 && row_height_um > 0.0 && voltage_v > 0.0);
        let mut by_name = HashMap::with_capacity(cells.len());
        for (i, c) in cells.iter().enumerate() {
            let prev = by_name.insert(c.name().to_string(), LibCellId::new(i));
            assert!(prev.is_none(), "duplicate cell name {}", c.name());
        }
        Library {
            name: name.into(),
            site_width_um,
            row_height_um,
            voltage_v,
            cells,
            by_name,
        }
    }

    /// The synthetic 65 nm-class library used throughout the reproduction.
    ///
    /// Geometry is calibrated so the paper's Table I is reproduced exactly:
    /// row pitch 2.7 µm means 20 inserted rows grow a 335 µm core by 16.1 %.
    pub fn c65() -> Self {
        Library::new("c65cool", 0.3, 2.7, 1.0, c65_cells())
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Placement site width in microns.
    pub fn site_width_um(&self) -> f64 {
        self.site_width_um
    }

    /// Layout row height (= row pitch) in microns.
    pub fn row_height_um(&self) -> f64 {
        self.row_height_um
    }

    /// Nominal supply voltage in volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Number of cell masters.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The master with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this library.
    pub fn cell(&self, id: LibCellId) -> &CellDef {
        &self.cells[id.index()]
    }

    /// Looks a master up by name.
    pub fn find(&self, name: &str) -> Option<LibCellId> {
        self.by_name.get(name).copied()
    }

    /// The master implementing `function` at drive `drive`, if present.
    pub fn cell_for(&self, function: CellFunction, drive: Drive) -> Option<LibCellId> {
        self.cells
            .iter()
            .position(|c| c.function() == function && c.drive() == drive)
            .map(LibCellId::new)
    }

    /// The weakest-drive master implementing `function`, if present.
    pub fn any_cell_for(&self, function: CellFunction) -> Option<LibCellId> {
        [Drive::X1, Drive::X2, Drive::X4]
            .into_iter()
            .find_map(|d| self.cell_for(function, d))
    }

    /// Filler (dummy) cell ids sorted by width, widest first — the greedy
    /// gap-filling order.
    pub fn fillers(&self) -> Vec<LibCellId> {
        let mut ids: Vec<LibCellId> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.function() == CellFunction::Filler)
            .map(|(i, _)| LibCellId::new(i))
            .collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.cell(*id).width_sites()));
        ids
    }

    /// Physical width of a master in microns.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell_width_um(&self, id: LibCellId) -> f64 {
        self.cell(id).width_sites() as f64 * self.site_width_um
    }

    /// Physical area of a master in µm².
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell_area_um2(&self, id: LibCellId) -> f64 {
        self.cell_width_um(id) * self.row_height_um
    }

    /// Iterates over `(id, master)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LibCellId, &CellDef)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (LibCellId::new(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c65_covers_every_function() {
        let lib = Library::c65();
        for f in CellFunction::ALL {
            assert!(
                lib.any_cell_for(f).is_some(),
                "function {f} missing from c65 library"
            );
        }
    }

    #[test]
    fn find_by_name_roundtrips() {
        let lib = Library::c65();
        for (id, def) in lib.iter() {
            assert_eq!(lib.find(def.name()), Some(id));
        }
    }

    #[test]
    fn fillers_are_sorted_widest_first_and_include_unit_width() {
        let lib = Library::c65();
        let fillers = lib.fillers();
        assert!(fillers.len() >= 4);
        for pair in fillers.windows(2) {
            assert!(lib.cell(pair[0]).width_sites() >= lib.cell(pair[1]).width_sites());
        }
        assert_eq!(
            lib.cell(*fillers.last().expect("non-empty")).width_sites(),
            1,
            "a 1-site filler is required to guarantee any gap can be filled"
        );
    }

    #[test]
    fn fillers_consume_no_power() {
        let lib = Library::c65();
        for id in lib.fillers() {
            let c = lib.cell(id);
            assert_eq!(c.switching_energy_fj(), 0.0);
            assert_eq!(c.leakage_nw(), 0.0);
            assert_eq!(c.input_cap_ff(), 0.0);
        }
    }

    #[test]
    fn geometry_matches_table1_calibration() {
        let lib = Library::c65();
        // 20 rows × 2.7 µm = 54 µm; 54 / 335 = 16.1 % (paper Table I).
        let growth = 20.0 * lib.row_height_um();
        assert!((growth / 335.0 - 0.161).abs() < 0.001);
    }

    #[test]
    fn stronger_drives_have_lower_resistance() {
        let lib = Library::c65();
        for f in [CellFunction::Inv, CellFunction::Nand2, CellFunction::Buf] {
            let x1 = lib.cell(lib.cell_for(f, Drive::X1).unwrap());
            let x2 = lib.cell(lib.cell_for(f, Drive::X2).unwrap());
            assert!(x1.drive_res_kohm() > x2.drive_res_kohm());
            assert!(x1.width_sites() < x2.width_sites());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn duplicate_names_rejected() {
        let c = CellDef::new("DUP", CellFunction::Inv, Drive::X1, 2);
        let _ = Library::new("bad", 0.3, 2.7, 1.0, vec![c.clone(), c]);
    }

    #[test]
    fn sequential_cells_have_clock_energy() {
        let lib = Library::c65();
        let dff = lib.cell(lib.any_cell_for(CellFunction::Dff).unwrap());
        assert!(dff.clock_energy_fj() > 0.0);
    }
}
