//! A synthetic 65 nm-class standard-cell library.
//!
//! The DATE 2010 flow this workspace reproduces was built on an STM 65 nm
//! library, which is proprietary. This crate provides a self-consistent
//! substitute: a catalogue of [`CellDef`]s covering the combinational and
//! sequential functions needed by the arithmetic-unit generators, plus the
//! **filler (dummy) cells** that the paper's two techniques pour into
//! whitespace — zero-power cells that keep the power/ground rails of each
//! layout row electrically continuous.
//!
//! Absolute numbers (capacitances, energies, delays) are representative of a
//! low-power 65 nm process; the paper only evaluates *relative* temperature
//! reductions, so self-consistency is what matters.
//!
//! # Examples
//!
//! ```
//! use stdcell::{CellFunction, Drive, Library};
//!
//! let lib = Library::c65();
//! let nand = lib.cell_for(CellFunction::Nand2, Drive::X1).expect("in library");
//! let def = lib.cell(nand);
//! assert_eq!(def.function().input_count(), 2);
//! assert!(lib.cell_area_um2(nand) > 0.0);
//! ```

mod c65;
mod cell;
mod function;
mod library;

pub use c65::c65_cells;
pub use cell::{CellDef, Drive, LibCellId};
pub use function::CellFunction;
pub use library::Library;
