use serde::{Deserialize, Serialize};

use crate::CellFunction;

geom::define_id!(
    /// Index of a [`CellDef`](crate::CellDef) inside a [`Library`](crate::Library).
    pub struct LibCellId
);

/// Drive strength variants offered for each logic function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Drive {
    /// Unit drive.
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
}

impl std::fmt::Display for Drive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drive::X1 => write!(f, "X1"),
            Drive::X2 => write!(f, "X2"),
            Drive::X4 => write!(f, "X4"),
        }
    }
}

/// A standard-cell master: geometry, logic function, timing and power data.
///
/// Widths are expressed in **placement sites**; the owning
/// [`Library`](crate::Library) defines the site width and row height, so a
/// cell's physical footprint is `width_sites × site_width × row_height`.
///
/// # Examples
///
/// ```
/// use stdcell::{CellDef, CellFunction, Drive};
///
/// let inv = CellDef::new("IVLL_X1", CellFunction::Inv, Drive::X1, 2)
///     .with_electrical(1.2, 0.6, 2.0)
///     .with_timing(12.0, 6.0);
/// assert_eq!(inv.width_sites(), 2);
/// assert_eq!(inv.leakage_nw(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellDef {
    name: String,
    function: CellFunction,
    drive: Drive,
    width_sites: u32,
    input_cap_ff: f64,
    switching_energy_fj: f64,
    leakage_nw: f64,
    clock_energy_fj: f64,
    intrinsic_delay_ps: f64,
    drive_res_kohm: f64,
}

impl CellDef {
    /// Creates a cell master with zeroed electrical/timing data; chain the
    /// `with_*` builders to fill them in.
    pub fn new(
        name: impl Into<String>,
        function: CellFunction,
        drive: Drive,
        width_sites: u32,
    ) -> Self {
        CellDef {
            name: name.into(),
            function,
            drive,
            width_sites,
            input_cap_ff: 0.0,
            switching_energy_fj: 0.0,
            leakage_nw: 0.0,
            clock_energy_fj: 0.0,
            intrinsic_delay_ps: 0.0,
            drive_res_kohm: 0.0,
        }
    }

    /// Sets the per-input-pin capacitance (fF), internal switching energy
    /// per output toggle (fJ) and leakage power at 25 °C (nW).
    pub fn with_electrical(
        mut self,
        input_cap_ff: f64,
        switching_energy_fj: f64,
        leakage_nw: f64,
    ) -> Self {
        self.input_cap_ff = input_cap_ff;
        self.switching_energy_fj = switching_energy_fj;
        self.leakage_nw = leakage_nw;
        self
    }

    /// Sets the intrinsic delay (ps) and equivalent drive resistance (kΩ);
    /// gate delay is modelled as `intrinsic + R · C_load` (kΩ·fF = ps).
    pub fn with_timing(mut self, intrinsic_delay_ps: f64, drive_res_kohm: f64) -> Self {
        self.intrinsic_delay_ps = intrinsic_delay_ps;
        self.drive_res_kohm = drive_res_kohm;
        self
    }

    /// Sets the per-clock-cycle internal energy (fJ) burnt regardless of
    /// data activity. Non-zero only for sequential cells.
    pub fn with_clock_energy(mut self, clock_energy_fj: f64) -> Self {
        self.clock_energy_fj = clock_energy_fj;
        self
    }

    /// Library name of the master (e.g. `ND2LL_X1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logic function implemented by the master.
    pub fn function(&self) -> CellFunction {
        self.function
    }

    /// Drive strength variant.
    pub fn drive(&self) -> Drive {
        self.drive
    }

    /// Width in placement sites.
    pub fn width_sites(&self) -> u32 {
        self.width_sites
    }

    /// Capacitance presented by each input pin, in fF.
    pub fn input_cap_ff(&self) -> f64 {
        self.input_cap_ff
    }

    /// Internal energy dissipated per output toggle, in fJ.
    pub fn switching_energy_fj(&self) -> f64 {
        self.switching_energy_fj
    }

    /// Leakage power at the reference temperature (25 °C), in nW.
    pub fn leakage_nw(&self) -> f64 {
        self.leakage_nw
    }

    /// Internal energy per clock cycle independent of data activity, in fJ.
    pub fn clock_energy_fj(&self) -> f64 {
        self.clock_energy_fj
    }

    /// Intrinsic (no-load) delay in ps.
    pub fn intrinsic_delay_ps(&self) -> f64 {
        self.intrinsic_delay_ps
    }

    /// Equivalent output drive resistance in kΩ.
    pub fn drive_res_kohm(&self) -> f64 {
        self.drive_res_kohm
    }
}

impl std::fmt::Display for CellDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} {})", self.name, self.function, self.drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_all_fields() {
        let fa = CellDef::new("FALL_X2", CellFunction::FullAdder, Drive::X2, 30)
            .with_electrical(3.0, 5.0, 15.0)
            .with_timing(50.0, 5.0)
            .with_clock_energy(0.0);
        assert_eq!(fa.name(), "FALL_X2");
        assert_eq!(fa.function(), CellFunction::FullAdder);
        assert_eq!(fa.drive(), Drive::X2);
        assert_eq!(fa.width_sites(), 30);
        assert_eq!(fa.input_cap_ff(), 3.0);
        assert_eq!(fa.switching_energy_fj(), 5.0);
        assert_eq!(fa.leakage_nw(), 15.0);
        assert_eq!(fa.intrinsic_delay_ps(), 50.0);
        assert_eq!(fa.drive_res_kohm(), 5.0);
    }

    #[test]
    fn display_mentions_function_and_drive() {
        let c = CellDef::new("IV_X4", CellFunction::Inv, Drive::X4, 5);
        let s = c.to_string();
        assert!(s.contains("Inv") && s.contains("X4"));
    }

    #[test]
    fn drive_ordering() {
        assert!(Drive::X1 < Drive::X2 && Drive::X2 < Drive::X4);
    }
}
