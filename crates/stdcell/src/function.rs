use serde::{Deserialize, Serialize};

/// The logic function implemented by a standard cell.
///
/// Pin conventions (used consistently by the netlist builder, the logic
/// simulator and the timing analyzer):
///
/// * combinational inputs are ordered `A, B, C, …`; [`CellFunction::Mux2`]
///   uses `A, B, S` (select last);
/// * single-output cells drive `Y`;
/// * [`CellFunction::HalfAdder`] / [`CellFunction::FullAdder`] drive
///   `S` (output 0) and `CO` (output 1);
/// * [`CellFunction::Dff`] has input `D` and output `Q` (the clock is
///   implicit: the whole design is a single synchronous domain at 1 GHz);
/// * [`CellFunction::Filler`] has no pins at all — it exists purely to keep
///   power rails continuous through whitespace, exactly the "dummy cells" of
///   the paper.
///
/// # Examples
///
/// ```
/// use stdcell::CellFunction;
///
/// let mut out = [false; 2];
/// CellFunction::FullAdder.eval(&[true, true, false], &mut out);
/// assert_eq!(out, [false, true]); // S = 0, CO = 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellFunction {
    /// Inverter: `Y = !A`.
    Inv,
    /// Buffer: `Y = A`.
    Buf,
    /// 2-input NAND: `Y = !(A & B)`.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR: `Y = !(A | B)`.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-invert: `Y = !((A & B) | C)`.
    Aoi21,
    /// OR-AND-invert: `Y = !((A | B) & C)`.
    Oai21,
    /// 2:1 multiplexer: `Y = S ? B : A` (inputs `A, B, S`).
    Mux2,
    /// Half adder: `S = A ^ B`, `CO = A & B`.
    HalfAdder,
    /// Full adder: `S = A ^ B ^ C`, `CO = majority(A, B, C)`.
    FullAdder,
    /// Rising-edge D flip-flop (`D` → `Q`), implicit single clock.
    Dff,
    /// Constant logic 0 generator.
    TieLo,
    /// Constant logic 1 generator.
    TieHi,
    /// Zero-power dummy cell for whitespace (no pins).
    Filler,
}

impl CellFunction {
    /// All functions, in a stable order (useful for exhaustive library
    /// construction and tests).
    pub const ALL: [CellFunction; 19] = [
        CellFunction::Inv,
        CellFunction::Buf,
        CellFunction::Nand2,
        CellFunction::Nand3,
        CellFunction::Nor2,
        CellFunction::Nor3,
        CellFunction::And2,
        CellFunction::Or2,
        CellFunction::Xor2,
        CellFunction::Xnor2,
        CellFunction::Aoi21,
        CellFunction::Oai21,
        CellFunction::Mux2,
        CellFunction::HalfAdder,
        CellFunction::FullAdder,
        CellFunction::Dff,
        CellFunction::TieLo,
        CellFunction::TieHi,
        CellFunction::Filler,
    ];

    /// Number of logical input pins.
    pub fn input_count(self) -> usize {
        match self {
            CellFunction::Inv | CellFunction::Buf | CellFunction::Dff => 1,
            CellFunction::Nand2
            | CellFunction::Nor2
            | CellFunction::And2
            | CellFunction::Or2
            | CellFunction::Xor2
            | CellFunction::Xnor2
            | CellFunction::HalfAdder => 2,
            CellFunction::Nand3
            | CellFunction::Nor3
            | CellFunction::Aoi21
            | CellFunction::Oai21
            | CellFunction::Mux2
            | CellFunction::FullAdder => 3,
            CellFunction::TieLo | CellFunction::TieHi | CellFunction::Filler => 0,
        }
    }

    /// Number of output pins.
    pub fn output_count(self) -> usize {
        match self {
            CellFunction::Filler => 0,
            CellFunction::HalfAdder | CellFunction::FullAdder => 2,
            _ => 1,
        }
    }

    /// Whether the cell is a state element (evaluated on clock edges only).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellFunction::Dff)
    }

    /// Whether the cell is physical-only (takes space, no logic).
    pub fn is_physical_only(self) -> bool {
        matches!(self, CellFunction::Filler)
    }

    /// The conventional name of input pin `i` (`A`, `B`, `C`, `D`, `S`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= input_count()`.
    pub fn input_name(self, i: usize) -> &'static str {
        assert!(i < self.input_count(), "input pin index out of range");
        match self {
            CellFunction::Dff => "D",
            CellFunction::Mux2 => ["A", "B", "S"][i],
            _ => ["A", "B", "C"][i],
        }
    }

    /// The conventional name of output pin `i` (`Y`, `S`/`CO`, `Q`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= output_count()`.
    pub fn output_name(self, i: usize) -> &'static str {
        assert!(i < self.output_count(), "output pin index out of range");
        match self {
            CellFunction::Dff => "Q",
            CellFunction::HalfAdder | CellFunction::FullAdder => ["S", "CO"][i],
            _ => "Y",
        }
    }

    /// Evaluates the combinational function.
    ///
    /// For the sequential [`CellFunction::Dff`] this computes the *next*
    /// state (`Q := D`); the simulator decides when to commit it.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match [`CellFunction::input_count`] /
    /// [`CellFunction::output_count`], or for [`CellFunction::Filler`]
    /// which has no logic function.
    pub fn eval(self, inputs: &[bool], outputs: &mut [bool]) {
        assert_eq!(inputs.len(), self.input_count(), "wrong input arity");
        assert_eq!(outputs.len(), self.output_count(), "wrong output arity");
        match self {
            CellFunction::Inv => outputs[0] = !inputs[0],
            CellFunction::Buf => outputs[0] = inputs[0],
            CellFunction::Nand2 => outputs[0] = !(inputs[0] && inputs[1]),
            CellFunction::Nand3 => outputs[0] = !(inputs[0] && inputs[1] && inputs[2]),
            CellFunction::Nor2 => outputs[0] = !(inputs[0] || inputs[1]),
            CellFunction::Nor3 => outputs[0] = !(inputs[0] || inputs[1] || inputs[2]),
            CellFunction::And2 => outputs[0] = inputs[0] && inputs[1],
            CellFunction::Or2 => outputs[0] = inputs[0] || inputs[1],
            CellFunction::Xor2 => outputs[0] = inputs[0] ^ inputs[1],
            CellFunction::Xnor2 => outputs[0] = !(inputs[0] ^ inputs[1]),
            CellFunction::Aoi21 => outputs[0] = !((inputs[0] && inputs[1]) || inputs[2]),
            CellFunction::Oai21 => outputs[0] = !((inputs[0] || inputs[1]) && inputs[2]),
            CellFunction::Mux2 => outputs[0] = if inputs[2] { inputs[1] } else { inputs[0] },
            CellFunction::HalfAdder => {
                outputs[0] = inputs[0] ^ inputs[1];
                outputs[1] = inputs[0] && inputs[1];
            }
            CellFunction::FullAdder => {
                outputs[0] = inputs[0] ^ inputs[1] ^ inputs[2];
                // Majority carry: a·b + cin·(a ⊕ b).
                outputs[1] = (inputs[0] && inputs[1]) || (inputs[2] && (inputs[0] ^ inputs[1]));
            }
            CellFunction::Dff => outputs[0] = inputs[0],
            CellFunction::TieLo => outputs[0] = false,
            CellFunction::TieHi => outputs[0] = true,
            CellFunction::Filler => panic!("filler cells have no logic function"),
        }
    }
}

impl std::fmt::Display for CellFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(f: CellFunction, inputs: &[bool]) -> bool {
        let mut out = [false];
        f.eval(inputs, &mut out);
        out[0]
    }

    #[test]
    fn basic_gates_truth_tables() {
        assert!(eval1(CellFunction::Inv, &[false]));
        assert!(!eval1(CellFunction::Inv, &[true]));
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(eval1(CellFunction::Nand2, &[a, b]), !(a && b));
                assert_eq!(eval1(CellFunction::Nor2, &[a, b]), !(a || b));
                assert_eq!(eval1(CellFunction::Xor2, &[a, b]), a ^ b);
                assert_eq!(eval1(CellFunction::Xnor2, &[a, b]), !(a ^ b));
                assert_eq!(eval1(CellFunction::And2, &[a, b]), a && b);
                assert_eq!(eval1(CellFunction::Or2, &[a, b]), a || b);
            }
        }
    }

    #[test]
    fn complex_gates_truth_tables() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert_eq!(eval1(CellFunction::Aoi21, &[a, b, c]), !((a && b) || c));
                    assert_eq!(eval1(CellFunction::Oai21, &[a, b, c]), !((a || b) && c));
                    assert_eq!(eval1(CellFunction::Mux2, &[a, b, c]), if c { b } else { a });
                    assert_eq!(eval1(CellFunction::Nand3, &[a, b, c]), !(a && b && c));
                }
            }
        }
    }

    #[test]
    fn full_adder_matches_arithmetic() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let mut out = [false; 2];
                    CellFunction::FullAdder.eval(&[a, b, c], &mut out);
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(out[0], total & 1 == 1, "sum bit");
                    assert_eq!(out[1], total >= 2, "carry bit");
                }
            }
        }
    }

    #[test]
    fn half_adder_matches_arithmetic() {
        for a in [false, true] {
            for b in [false, true] {
                let mut out = [false; 2];
                CellFunction::HalfAdder.eval(&[a, b], &mut out);
                assert_eq!(out[0], a ^ b);
                assert_eq!(out[1], a && b);
            }
        }
    }

    #[test]
    fn tie_cells_are_constant() {
        assert!(!eval1(CellFunction::TieLo, &[]));
        assert!(eval1(CellFunction::TieHi, &[]));
    }

    #[test]
    fn pin_names_are_distinct_per_cell() {
        for f in CellFunction::ALL {
            let ins: Vec<_> = (0..f.input_count()).map(|i| f.input_name(i)).collect();
            let outs: Vec<_> = (0..f.output_count()).map(|i| f.output_name(i)).collect();
            for (i, a) in ins.iter().enumerate() {
                for b in &ins[i + 1..] {
                    assert_ne!(a, b, "{f}: duplicate input name");
                }
            }
            for (i, a) in outs.iter().enumerate() {
                for b in &outs[i + 1..] {
                    assert_ne!(a, b, "{f}: duplicate output name");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no logic function")]
    fn filler_eval_panics() {
        CellFunction::Filler.eval(&[], &mut []);
    }

    #[test]
    fn arity_is_consistent() {
        for f in CellFunction::ALL {
            if f.is_physical_only() {
                continue;
            }
            let ins = vec![false; f.input_count()];
            let mut outs = vec![false; f.output_count()];
            f.eval(&ins, &mut outs); // must not panic
        }
    }
}
