//! The `c65cool` cell catalogue: a synthetic 65 nm-class low-power library.
//!
//! Values are representative of published 65 nm LP figures: input pin caps
//! of 1–3 fF, per-toggle internal energies of a fraction of a fJ to a few
//! fJ, leakage of a few nW per gate, and FO4-class delays of tens of ps.
//! They are internally consistent (X2 drives are wider, burn more energy,
//! present more input cap and drive with half the resistance), which is all
//! the relative-temperature study needs.

use crate::{CellDef, CellFunction, Drive};

#[allow(clippy::too_many_arguments)] // positional datasheet columns
fn combi(
    name: &str,
    f: CellFunction,
    d: Drive,
    w: u32,
    cap: f64,
    energy: f64,
    leak: f64,
    d0: f64,
    r: f64,
) -> CellDef {
    CellDef::new(name, f, d, w)
        .with_electrical(cap, energy, leak)
        .with_timing(d0, r)
}

/// Builds the full `c65cool` catalogue.
///
/// # Examples
///
/// ```
/// let cells = stdcell::c65_cells();
/// assert!(cells.iter().any(|c| c.name() == "ND2LL_X1"));
/// ```
pub fn c65_cells() -> Vec<CellDef> {
    use CellFunction::*;
    let mut cells = vec![
        // name, function, drive, width(sites), cap(fF), E(fJ), leak(nW), d0(ps), R(kΩ)
        combi("IVLL_X1", Inv, Drive::X1, 2, 1.2, 0.45, 1.8, 10.0, 6.0),
        combi("IVLL_X2", Inv, Drive::X2, 3, 2.3, 0.80, 3.4, 9.0, 3.0),
        combi("IVLL_X4", Inv, Drive::X4, 5, 4.5, 1.50, 6.5, 8.0, 1.5),
        combi("BFLL_X1", Buf, Drive::X1, 4, 1.3, 0.90, 2.6, 22.0, 5.5),
        combi("BFLL_X2", Buf, Drive::X2, 6, 1.4, 1.40, 4.8, 20.0, 2.8),
        combi("BFLL_X4", Buf, Drive::X4, 9, 1.6, 2.40, 8.9, 18.0, 1.4),
        combi("ND2LL_X1", Nand2, Drive::X1, 4, 1.4, 0.75, 2.8, 14.0, 7.0),
        combi("ND2LL_X2", Nand2, Drive::X2, 6, 2.7, 1.30, 5.2, 13.0, 3.5),
        combi("ND3LL_X1", Nand3, Drive::X1, 6, 1.6, 1.05, 4.0, 18.0, 8.0),
        combi("ND3LL_X2", Nand3, Drive::X2, 9, 3.1, 1.80, 7.4, 17.0, 4.0),
        combi("NR2LL_X1", Nor2, Drive::X1, 4, 1.5, 0.80, 2.9, 16.0, 8.0),
        combi("NR2LL_X2", Nor2, Drive::X2, 6, 2.9, 1.40, 5.4, 15.0, 4.0),
        combi("NR3LL_X1", Nor3, Drive::X1, 6, 1.7, 1.15, 4.2, 21.0, 9.5),
        combi("AD2LL_X1", And2, Drive::X1, 5, 1.3, 1.05, 3.4, 26.0, 6.0),
        combi("AD2LL_X2", And2, Drive::X2, 7, 2.5, 1.70, 6.1, 24.0, 3.0),
        combi("OR2LL_X1", Or2, Drive::X1, 5, 1.4, 1.10, 3.5, 28.0, 6.0),
        combi("OR2LL_X2", Or2, Drive::X2, 7, 2.7, 1.80, 6.3, 26.0, 3.0),
        combi("EO2LL_X1", Xor2, Drive::X1, 10, 2.3, 2.10, 5.8, 36.0, 8.5),
        combi("EO2LL_X2", Xor2, Drive::X2, 14, 4.4, 3.40, 10.6, 33.0, 4.2),
        combi("EN2LL_X1", Xnor2, Drive::X1, 10, 2.3, 2.10, 5.8, 36.0, 8.5),
        combi("AOI21LL_X1", Aoi21, Drive::X1, 6, 1.6, 1.00, 3.8, 19.0, 8.0),
        combi("OAI21LL_X1", Oai21, Drive::X1, 6, 1.6, 1.00, 3.8, 19.0, 8.0),
        combi("MX2LL_X1", Mux2, Drive::X1, 9, 2.0, 1.80, 5.2, 30.0, 7.5),
        combi("MX2LL_X2", Mux2, Drive::X2, 13, 3.8, 2.90, 9.6, 28.0, 3.7),
        combi(
            "HALL_X1",
            HalfAdder,
            Drive::X1,
            13,
            2.4,
            2.80,
            7.6,
            38.0,
            8.0,
        ),
        combi(
            "FALL_X1",
            FullAdder,
            Drive::X1,
            24,
            2.6,
            4.60,
            12.5,
            52.0,
            8.5,
        ),
        combi(
            "FALL_X2",
            FullAdder,
            Drive::X2,
            33,
            4.9,
            7.20,
            22.8,
            48.0,
            4.2,
        ),
        combi("TIE0LL", TieLo, Drive::X1, 3, 0.0, 0.0, 0.6, 0.0, 50.0),
        combi("TIE1LL", TieHi, Drive::X1, 3, 0.0, 0.0, 0.6, 0.0, 50.0),
    ];
    // Flip-flops burn internal clock energy every cycle even when the data
    // input is quiet — this is what makes gated-off units measurably cooler
    // but not stone cold, as in the paper's workload-controlled benchmark.
    cells.push(
        CellDef::new("DFLL_X1", Dff, Drive::X1, 18)
            .with_electrical(1.9, 3.6, 9.8)
            .with_timing(85.0, 7.0)
            .with_clock_energy(1.1),
    );
    cells.push(
        CellDef::new("DFLL_X2", Dff, Drive::X2, 24)
            .with_electrical(3.6, 5.4, 17.5)
            .with_timing(78.0, 3.5)
            .with_clock_energy(1.8),
    );
    // Dummy / filler cells: zero power, power-rail continuity only.
    for w in [1u32, 2, 4, 8, 16, 32, 64] {
        cells.push(CellDef::new(format!("FILLERLL_{w}"), Filler, Drive::X1, w));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_size_is_stable() {
        // 29 combinational/tie + 2 DFF + 7 fillers.
        assert_eq!(c65_cells().len(), 38);
    }

    #[test]
    fn all_logic_cells_have_positive_power_data() {
        for c in c65_cells() {
            if c.function().is_physical_only() {
                continue;
            }
            assert!(c.leakage_nw() > 0.0, "{}: zero leakage", c.name());
            if c.function().input_count() > 0 {
                assert!(c.input_cap_ff() > 0.0, "{}: zero input cap", c.name());
                assert!(
                    c.switching_energy_fj() > 0.0,
                    "{}: zero switching energy",
                    c.name()
                );
                assert!(c.intrinsic_delay_ps() > 0.0, "{}: zero delay", c.name());
            }
            assert!(c.drive_res_kohm() > 0.0, "{}: zero drive", c.name());
        }
    }

    #[test]
    fn filler_widths_are_powers_of_two_up_to_64() {
        let widths: Vec<u32> = c65_cells()
            .iter()
            .filter(|c| c.function() == CellFunction::Filler)
            .map(|c| c.width_sites())
            .collect();
        assert_eq!(widths, vec![1, 2, 4, 8, 16, 32, 64]);
    }
}
