use netlist::{Netlist, UnitId};

/// Drive mode of one unit's primary inputs during simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnitMode {
    /// Inputs receive fresh random transitions; each input bit flips each
    /// cycle with the given probability (0..=1).
    Active {
        /// Per-cycle, per-bit flip probability.
        toggle_probability: f64,
    },
    /// Inputs are held constant — after one cycle the unit's data path is
    /// completely quiet.
    Idle,
}

/// Per-unit input drive specification — the knob the paper turns to place
/// hotspots ("we are able \[to\] control the size and position of hotspots
/// using different workloads").
///
/// # Examples
///
/// ```
/// use logicsim::{UnitMode, Workload};
/// use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = build_benchmark(&BenchmarkConfig::small())?;
/// let mut w = Workload::all_idle(&nl);
/// w.set_mode(UnitRole::Mac.unit_id(), UnitMode::Active { toggle_probability: 0.4 });
/// assert_eq!(w.active_units().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    modes: Vec<UnitMode>,
}

impl Workload {
    /// All units idle.
    pub fn all_idle(netlist: &Netlist) -> Self {
        Workload {
            modes: vec![UnitMode::Idle; netlist.unit_count()],
        }
    }

    /// Every unit active with the same toggle probability.
    ///
    /// # Panics
    ///
    /// Panics if `toggle_probability` is outside `[0, 1]`.
    pub fn uniform(netlist: &Netlist, toggle_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&toggle_probability));
        Workload {
            modes: vec![UnitMode::Active { toggle_probability }; netlist.unit_count()],
        }
    }

    /// Only `active` units toggle (at `toggle_probability`); the rest idle.
    ///
    /// # Panics
    ///
    /// Panics if `toggle_probability` is outside `[0, 1]` or a unit id is
    /// out of range.
    pub fn with_active_units(
        netlist: &Netlist,
        active: &[UnitId],
        toggle_probability: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&toggle_probability));
        let mut w = Workload::all_idle(netlist);
        for &u in active {
            w.set_mode(u, UnitMode::Active { toggle_probability });
        }
        w
    }

    /// Sets the drive mode of one unit.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn set_mode(&mut self, unit: UnitId, mode: UnitMode) {
        self.modes[unit.index()] = mode;
    }

    /// The drive mode of `unit`.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn mode(&self, unit: UnitId) -> UnitMode {
        self.modes[unit.index()]
    }

    /// The flip probability for `unit`'s inputs, or `None` when idle.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn toggle_probability(&self, unit: UnitId) -> Option<f64> {
        match self.modes[unit.index()] {
            UnitMode::Active { toggle_probability } => Some(toggle_probability),
            UnitMode::Idle => None,
        }
    }

    /// Ids of all active units.
    pub fn active_units(&self) -> Vec<UnitId> {
        self.modes
            .iter()
            .enumerate()
            .filter(|(_, m)| matches!(m, UnitMode::Active { .. }))
            .map(|(i, _)| UnitId::new(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;
    use stdcell::Library;

    fn three_unit_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t", Library::c65());
        for i in 0..3 {
            b.add_unit(format!("u{i}"));
        }
        b.finish().unwrap()
    }

    #[test]
    fn uniform_activates_everything() {
        let nl = three_unit_netlist();
        let w = Workload::uniform(&nl, 0.3);
        assert_eq!(w.active_units().len(), 3);
        assert_eq!(w.toggle_probability(UnitId::new(1)), Some(0.3));
    }

    #[test]
    fn selective_activation() {
        let nl = three_unit_netlist();
        let w = Workload::with_active_units(&nl, &[UnitId::new(2)], 0.5);
        assert_eq!(w.active_units(), vec![UnitId::new(2)]);
        assert_eq!(w.toggle_probability(UnitId::new(0)), None);
        assert_eq!(
            w.mode(UnitId::new(2)),
            UnitMode::Active {
                toggle_probability: 0.5
            }
        );
    }

    #[test]
    #[should_panic]
    fn invalid_probability_rejected() {
        let nl = three_unit_netlist();
        let _ = Workload::uniform(&nl, 1.5);
    }
}
