use netlist::NetId;

/// Per-net switching activity accumulated over a simulation run — the
/// "annotated switching activity" the power estimator consumes.
///
/// # Examples
///
/// ```
/// use logicsim::Activity;
/// use netlist::NetId;
///
/// let act = Activity::new(100, vec![50, 0, 25]);
/// assert_eq!(act.switching_activity(NetId::new(0)), 0.5);
/// assert_eq!(act.switching_activity(NetId::new(1)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    cycles: u64,
    toggles: Vec<u64>,
}

impl Activity {
    /// Wraps raw toggle counts measured over `cycles` clock cycles.
    pub fn new(cycles: u64, toggles: Vec<u64>) -> Self {
        Activity { cycles, toggles }
    }

    /// Clock cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Raw toggle count of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn toggles(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// Switching activity of a net: toggles per clock cycle (0 when no
    /// cycles were simulated).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn switching_activity(&self, net: NetId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[net.index()] as f64 / self.cycles as f64
        }
    }

    /// Mean switching activity across all nets.
    pub fn mean_activity(&self) -> f64 {
        if self.cycles == 0 || self.toggles.is_empty() {
            return 0.0;
        }
        let total: u64 = self.toggles.iter().sum();
        total as f64 / (self.cycles as f64 * self.toggles.len() as f64)
    }

    /// Number of nets covered.
    pub fn net_count(&self) -> usize {
        self.toggles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_is_toggles_over_cycles() {
        let act = Activity::new(200, vec![100, 200, 0]);
        assert_eq!(act.switching_activity(NetId::new(0)), 0.5);
        assert_eq!(act.switching_activity(NetId::new(1)), 1.0);
        assert_eq!(act.switching_activity(NetId::new(2)), 0.0);
        assert!((act.mean_activity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_zero_activity() {
        let act = Activity::new(0, vec![0, 0]);
        assert_eq!(act.switching_activity(NetId::new(0)), 0.0);
        assert_eq!(act.mean_activity(), 0.0);
    }
}
