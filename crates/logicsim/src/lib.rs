//! Cycle-based gate-level logic simulation with switching-activity
//! annotation — the workspace's substitute for the paper's Synopsys VCS +
//! "annotated switching activity of randomly generated test vectors".
//!
//! The whole benchmark is a single synchronous domain (1 GHz in the paper),
//! so a two-valued, zero-delay, cycle-based simulator is sufficient: each
//! [`Simulator::step`] commits all flip-flops on the implicit clock edge
//! and re-settles the combinational logic in topological order, counting
//! per-net toggles along the way.
//!
//! Workloads drive the primary inputs of each *unit* independently
//! ([`Workload`]), which is exactly how the paper controls the size and
//! position of thermal hotspots.
//!
//! # Examples
//!
//! ```
//! use logicsim::{Simulator, Workload};
//! use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = build_benchmark(&BenchmarkConfig::small())?;
//! let workload = Workload::with_active_units(&nl, &[UnitRole::ArrayMult.unit_id()], 0.5);
//! let mut sim = Simulator::new(&nl);
//! sim.run_workload(&workload, 256, 42);
//! let activity = sim.activity();
//! assert_eq!(activity.cycles(), 256);
//! # Ok(())
//! # }
//! ```

mod activity;
mod sim;
mod workload;

pub use activity::Activity;
pub use sim::Simulator;
pub use workload::{UnitMode, Workload};
