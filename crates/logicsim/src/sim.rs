use netlist::{topo_order, CellId, NetDriver, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Activity, Workload};

/// Two-valued, cycle-based simulator over a validated [`Netlist`].
///
/// See the [crate docs](crate) for the simulation semantics and an
/// end-to-end example.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    topo: Vec<CellId>,
    ffs: Vec<CellId>,
    values: Vec<bool>,
    prev_values: Vec<bool>,
    toggles: Vec<u64>,
    cycles: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with all state initialized to logic 0 and the
    /// combinational logic settled.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle — impossible
    /// for netlists produced by [`netlist::NetlistBuilder::finish`], which
    /// validates this.
    pub fn new(netlist: &'a Netlist) -> Self {
        let topo = topo_order(netlist).expect("validated netlist is acyclic");
        let ffs = netlist
            .cells()
            .filter(|(_, c)| {
                netlist
                    .library()
                    .cell(c.master())
                    .function()
                    .is_sequential()
            })
            .map(|(id, _)| id)
            .collect();
        let mut sim = Simulator {
            netlist,
            topo,
            ffs,
            values: vec![false; netlist.net_count()],
            prev_values: vec![false; netlist.net_count()],
            toggles: vec![0; netlist.net_count()],
            cycles: 0,
        };
        sim.eval_combinational();
        sim.prev_values.copy_from_slice(&sim.values);
        sim
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Number of clock cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current logic value of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn net_value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Drives a primary-input net. The value takes effect at the next
    /// [`Simulator::step`].
    ///
    /// # Panics
    ///
    /// Panics if `net` is not driven by an input port.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert!(
            matches!(self.netlist.net(net).driver(), NetDriver::Port(_)),
            "net {net} is not a primary input"
        );
        self.values[net.index()] = value;
    }

    /// Drives a bus of primary-input nets (LSB first) from an integer.
    ///
    /// # Panics
    ///
    /// Panics if any net is not a primary input.
    pub fn set_input_bus(&mut self, nets: &[NetId], value: u128) {
        for (i, &net) in nets.iter().enumerate() {
            self.set_input(net, (value >> i) & 1 == 1);
        }
    }

    /// Reads a bus of nets (LSB first) as an integer.
    ///
    /// # Panics
    ///
    /// Panics if the bus is wider than 128 bits.
    pub fn read_bus(&self, nets: &[NetId]) -> u128 {
        assert!(nets.len() <= 128, "bus too wide for u128");
        nets.iter().enumerate().fold(0u128, |acc, (i, &n)| {
            acc | ((self.net_value(n) as u128) << i)
        })
    }

    fn eval_combinational(&mut self) {
        let lib = self.netlist.library();
        let mut inputs = [false; 3];
        let mut outputs = [false; 2];
        for &cell_id in &self.topo {
            let cell = self.netlist.cell(cell_id);
            let f = lib.cell(cell.master()).function();
            let ni = f.input_count();
            let no = f.output_count();
            for (slot, &pin) in cell.input_pins().iter().enumerate() {
                inputs[slot] = self.values[self.netlist.pin(pin).net().index()];
            }
            f.eval(&inputs[..ni], &mut outputs[..no]);
            for (slot, &pin) in cell.output_pins().iter().enumerate() {
                self.values[self.netlist.pin(pin).net().index()] = outputs[slot];
            }
        }
    }

    /// Advances one clock cycle: commits every flip-flop (`Q ← D`),
    /// re-settles the combinational logic, and accumulates per-net toggle
    /// counts against the previous settled state.
    pub fn step(&mut self) {
        // Capture all D inputs simultaneously…
        let captured: Vec<bool> = self
            .ffs
            .iter()
            .map(|&ff| {
                let d_pin = self.netlist.cell(ff).input_pins()[0];
                self.values[self.netlist.pin(d_pin).net().index()]
            })
            .collect();
        // …then commit to the Q outputs.
        for (&ff, &q) in self.ffs.iter().zip(&captured) {
            let q_pin = self.netlist.cell(ff).output_pins()[0];
            self.values[self.netlist.pin(q_pin).net().index()] = q;
        }
        self.eval_combinational();
        for i in 0..self.values.len() {
            if self.values[i] != self.prev_values[i] {
                self.toggles[i] += 1;
            }
        }
        self.prev_values.copy_from_slice(&self.values);
        self.cycles += 1;
    }

    /// Runs `cycles` clock cycles driving primary inputs per `workload`
    /// with a deterministic RNG seeded by `seed`.
    ///
    /// Inputs of *active* units receive fresh random bits each cycle with
    /// the unit's toggle probability; inputs of *idle* units are held at
    /// their current value, so after one cycle an idle unit's data path is
    /// completely quiet (only its flip-flops' internal clock energy
    /// remains — exactly the paper's workload-controlled hotspots).
    pub fn run_workload(&mut self, workload: &Workload, cycles: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Snapshot the port nets and their owning units once.
        let ports: Vec<(NetId, netlist::UnitId)> = self
            .netlist
            .input_ports()
            .iter()
            .map(|p| (p.net(), p.unit()))
            .collect();
        for _ in 0..cycles {
            for &(net, unit) in &ports {
                if let Some(p) = workload.toggle_probability(unit) {
                    if rng.gen_bool(p) {
                        let v = self.values[net.index()];
                        self.values[net.index()] = !v;
                    }
                }
            }
            self.step();
        }
    }

    /// The per-net switching activity accumulated so far.
    pub fn activity(&self) -> Activity {
        Activity::new(self.cycles, self.toggles.clone())
    }

    /// Resets toggle counters and the cycle count (state is kept).
    pub fn reset_activity(&mut self) {
        self.toggles.iter_mut().for_each(|t| *t = 0);
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;
    use stdcell::{CellFunction, Drive, Library};

    fn inv_chain() -> (Netlist, Vec<NetId>) {
        let mut b = NetlistBuilder::new("chain", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        b.cell(u, CellFunction::Inv, Drive::X1, &[a], &[n1])
            .unwrap();
        b.cell(u, CellFunction::Inv, Drive::X1, &[n1], &[n2])
            .unwrap();
        let nl = b.finish().unwrap();
        (nl, vec![a, n1, n2])
    }

    #[test]
    fn combinational_settles_on_construction() {
        let (nl, nets) = inv_chain();
        let sim = Simulator::new(&nl);
        assert!(!sim.net_value(nets[0]));
        assert!(sim.net_value(nets[1]));
        assert!(!sim.net_value(nets[2]));
    }

    #[test]
    fn input_propagates_on_step() {
        let (nl, nets) = inv_chain();
        let mut sim = Simulator::new(&nl);
        sim.set_input(nets[0], true);
        sim.step();
        assert!(!sim.net_value(nets[1]));
        assert!(sim.net_value(nets[2]));
        // Toggle counts: all three nets flipped exactly once.
        let act = sim.activity();
        for &n in &nets {
            assert_eq!(act.toggles(n), 1, "net {n}");
        }
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut b = NetlistBuilder::new("ff", Library::c65());
        let u = b.add_unit("u");
        let d = b.input_port("d", u);
        let q = b.net("q");
        b.cell(u, CellFunction::Dff, Drive::X1, &[d], &[q]).unwrap();
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);
        sim.set_input(d, true);
        assert!(!sim.net_value(q), "not yet clocked");
        sim.step();
        assert!(sim.net_value(q), "captured on the edge");
        sim.set_input(d, false);
        sim.step();
        assert!(!sim.net_value(q));
    }

    #[test]
    fn held_inputs_mean_zero_toggles_after_settling() {
        let (nl, nets) = inv_chain();
        let mut sim = Simulator::new(&nl);
        sim.set_input(nets[0], true);
        sim.step();
        sim.reset_activity();
        for _ in 0..10 {
            sim.step();
        }
        let act = sim.activity();
        for &n in &nets {
            assert_eq!(act.toggles(n), 0);
        }
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn driving_internal_net_panics() {
        let (nl, nets) = inv_chain();
        let mut sim = Simulator::new(&nl);
        sim.set_input(nets[1], true);
    }

    #[test]
    fn bus_roundtrip() {
        let mut b = NetlistBuilder::new("bus", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_bus("a", 8, u);
        let y: Vec<NetId> = a.iter().map(|_| b.auto_net()).collect();
        for i in 0..8 {
            b.cell(u, CellFunction::Buf, Drive::X1, &[a[i]], &[y[i]])
                .unwrap();
        }
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);
        sim.set_input_bus(&a, 0xA5);
        sim.step();
        assert_eq!(sim.read_bus(&y), 0xA5);
    }
}
