//! Property-based simulation invariants on the small benchmark.

use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
use logicsim::{Simulator, Workload};
use proptest::prelude::*;

fn netlist() -> netlist::Netlist {
    build_benchmark(&BenchmarkConfig::small()).expect("benchmark")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_same_activity(seed in any::<u64>(), prob in 0.05f64..0.95) {
        let nl = netlist();
        let w = Workload::uniform(&nl, prob);
        let run = |nl: &netlist::Netlist| {
            let mut sim = Simulator::new(nl);
            sim.run_workload(&w, 64, seed);
            sim.activity()
        };
        prop_assert_eq!(run(&nl), run(&nl));
    }

    #[test]
    fn switching_activity_is_bounded(seed in any::<u64>(), prob in 0.05f64..0.95) {
        let nl = netlist();
        let w = Workload::uniform(&nl, prob);
        let mut sim = Simulator::new(&nl);
        sim.run_workload(&w, 64, seed);
        let act = sim.activity();
        for (id, _) in nl.nets() {
            let a = act.switching_activity(id);
            prop_assert!((0.0..=1.0).contains(&a), "net {id}: activity {a}");
        }
    }

    #[test]
    fn idle_units_never_toggle(
        seed in any::<u64>(),
        active_idx in 0usize..9,
    ) {
        let nl = netlist();
        let active = UnitRole::ALL[active_idx].unit_id();
        let w = Workload::with_active_units(&nl, &[active], 0.5);
        let mut sim = Simulator::new(&nl);
        sim.run_workload(&w, 8, seed);     // settle
        sim.reset_activity();
        sim.run_workload(&w, 48, seed.wrapping_add(1));
        let act = sim.activity();
        for (_, cell) in nl.cells() {
            if cell.unit() == active {
                continue;
            }
            for &pin in cell.output_pins() {
                prop_assert_eq!(
                    act.toggles(nl.pin(pin).net()),
                    0,
                    "idle unit {} toggled",
                    cell.unit()
                );
            }
        }
    }

    #[test]
    fn higher_toggle_probability_means_more_activity(seed in any::<u64>()) {
        let nl = netlist();
        let run = |prob: f64| {
            let w = Workload::uniform(&nl, prob);
            let mut sim = Simulator::new(&nl);
            sim.run_workload(&w, 128, seed);
            sim.activity().mean_activity()
        };
        let low = run(0.05);
        let high = run(0.8);
        prop_assert!(high > low, "high {high} vs low {low}");
    }
}
