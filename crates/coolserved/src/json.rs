//! A tiny, dependency-free JSON value type with a stable writer and a
//! strict-enough reader.
//!
//! Two consumers share this module: the service's persistent result
//! cache (every `<key>.json` on disk is a rendered [`Json`] document)
//! and the bench pipeline's CI contract (`BENCH_sweep.json`), which
//! re-exports it as `coolplace_bench::json`. Both need the same
//! properties: object keys keep insertion order, floats render in
//! Rust's shortest round-trip form (so `f64`s survive a
//! render → parse cycle bit-exactly), and output is pretty-printed with
//! two-space indents. The vendored `serde` stub has no `serde_json`, so
//! this module carries the few hundred lines both pipelines need.

use std::fmt::Write as _;

/// A JSON document node. Object keys keep insertion order so rendered
/// schemas are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from ordered pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this node is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this node is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric member lookup that *names what is missing*: the regression
    /// gate walks bench documents with this so a malformed or truncated
    /// section produces "section `delta` is missing key `max_drift_c`"
    /// instead of an opaque `None` (or, worse, a panic mid-check).
    ///
    /// # Errors
    ///
    /// Returns a message naming `section` and `key` when the key is
    /// absent or not a (finite-rendered) number.
    pub fn require_f64(&self, section: &str, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(value) => match value.as_f64() {
                // NaN/infinity poison every threshold comparison
                // downstream (`NaN > tol` is false), so a gate fed a
                // non-finite number must fail by name, not silently pass.
                Some(v) if v.is_finite() => Ok(v),
                Some(v) => Err(format!(
                    "section `{section}`: key `{key}` is not finite ({v})"
                )),
                None => Err(format!("section `{section}`: key `{key}` is not a number")),
            },
            None => Err(format!("section `{section}` is missing key `{key}`")),
        }
    }

    /// Renders the document pretty-printed (two-space indent, trailing
    /// newline) — the stable on-disk format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (objects, arrays, strings with the common
    /// escapes, numbers, booleans, null). Trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message for malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // Copy one UTF-8 character verbatim.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8".to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number bytes at {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = Json::obj([
            ("schema_version", Json::Num(1.0)),
            ("name", Json::Str("sweep \"smoke\"\n".to_string())),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "records",
                Json::Arr(vec![
                    Json::obj([("peak_c", Json::Num(83.25)), ("idx", Json::Num(0.0))]),
                    Json::obj([("peak_c", Json::Num(79.5)), ("idx", Json::Num(1.0))]),
                ]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn keys_keep_insertion_order() {
        let doc = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        let text = doc.render();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn accessors_walk_a_parsed_document() {
        let doc = Json::parse(r#"{"speedup": 3.5, "records": [{"peak_c": 83.1}]}"#).unwrap();
        assert_eq!(doc.get("speedup").and_then(Json::as_f64), Some(3.5));
        let records = doc.get("records").and_then(Json::as_arr).unwrap();
        assert_eq!(records[0].get("peak_c").and_then(Json::as_f64), Some(83.1));
    }

    #[test]
    fn require_f64_names_the_missing_piece() {
        let doc = Json::parse(r#"{"speedup": 3.5, "mode": "smoke"}"#).unwrap();
        assert_eq!(doc.require_f64("root", "speedup"), Ok(3.5));
        let missing = doc
            .require_f64("solver_scaling", "max_drift_k")
            .unwrap_err();
        assert!(missing.contains("solver_scaling"), "{missing}");
        assert!(missing.contains("max_drift_k"), "{missing}");
        let wrong_type = doc.require_f64("root", "mode").unwrap_err();
        assert!(wrong_type.contains("not a number"), "{wrong_type}");
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", "nul"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let escaped = Json::parse("\"a\\u00e9b\"").unwrap();
        assert_eq!(escaped.as_str(), Some("aéb"));
        let verbatim = Json::parse("\"aéb\"").unwrap();
        assert_eq!(verbatim.as_str(), Some("aéb"));
    }
}
