//! Error type of the optimization service.

use postplace::FlowError;

/// Errors surfaced by the service front end, its workers, and the
/// persistent result store.
#[derive(Debug)]
pub enum ServiceError {
    /// The underlying flow failed to build or evaluate.
    Flow(FlowError),
    /// A disk-tier read or write failed.
    Io {
        /// The file involved.
        path: String,
        /// The OS error.
        detail: String,
    },
    /// A persisted document failed to parse or decode.
    Codec {
        /// What went wrong, naming the offending section/key.
        detail: String,
    },
    /// A job failed on a worker; the flow error's rendered form (the
    /// job table hands results across threads, so the non-`Clone`
    /// source error is captured as its message).
    Job {
        /// The failed job's rendered error.
        detail: String,
    },
    /// A job id that this service never issued.
    UnknownJob {
        /// The id that was asked about.
        id: postplace::JobId,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Flow(e) => write!(f, "flow: {e}"),
            ServiceError::Io { path, detail } => write!(f, "io at {path}: {detail}"),
            ServiceError::Codec { detail } => write!(f, "codec: {detail}"),
            ServiceError::Job { detail } => write!(f, "job failed: {detail}"),
            ServiceError::UnknownJob { id } => write!(f, "unknown job {id}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlowError> for ServiceError {
    fn from(e: FlowError) -> Self {
        ServiceError::Flow(e)
    }
}
