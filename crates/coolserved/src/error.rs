//! Error type of the optimization service, with a retryability
//! taxonomy.
//!
//! Every error maps to an [`ErrorClass`], and
//! [`ServiceError::is_retryable`] is the policy clients (and the
//! service's own retry loops) key off: `Transient` / `Timeout` /
//! `Unavailable` are worth resubmitting, everything else is permanent
//! until the input or the code changes.

use postplace::FlowError;

/// The coarse class of a [`ServiceError`] — small, `Copy`, and
/// preserved across the job table, so a client that only sees a
/// [`ServiceError::Job`] envelope can still tell a retryable failure
/// from a permanent one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The optimization flow itself failed (bad request, solver error).
    Flow,
    /// A disk-tier I/O error that was not classified transient.
    Io,
    /// A persisted document failed to parse or decode.
    Codec,
    /// A transient fault (disk I/O that kept failing past the retry
    /// budget, a deduplicated solve that failed under another job) —
    /// resubmitting may succeed.
    Transient,
    /// A per-job deadline expired before the answer was ready.
    Timeout,
    /// The service (or a tier of it) is over capacity or out of
    /// service right now — back off and resubmit.
    Unavailable,
    /// A job id this service never issued.
    UnknownJob,
}

impl ErrorClass {
    /// Stable kebab-case name (log lines, wire forms).
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::Flow => "flow",
            ErrorClass::Io => "io",
            ErrorClass::Codec => "codec",
            ErrorClass::Transient => "transient",
            ErrorClass::Timeout => "timeout",
            ErrorClass::Unavailable => "unavailable",
            ErrorClass::UnknownJob => "unknown-job",
        }
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors surfaced by the service front end, its workers, and the
/// persistent result store.
#[derive(Debug)]
pub enum ServiceError {
    /// The underlying flow failed to build or evaluate.
    Flow(FlowError),
    /// A disk-tier read or write failed.
    Io {
        /// The file involved.
        path: String,
        /// The OS error.
        detail: String,
    },
    /// A persisted document failed to parse or decode.
    Codec {
        /// What went wrong, naming the offending section/key.
        detail: String,
    },
    /// A transient fault that exhausted its retry budget; resubmitting
    /// may succeed (the disk may recover, the other job's failure may
    /// have been a fluke).
    Transient {
        /// What kept failing.
        detail: String,
    },
    /// A job's wall-clock budget ([`postplace::OptimizeRequest`]'s
    /// `deadline_ms`) expired at a tier boundary before the answer was
    /// ready.
    Timeout {
        /// Milliseconds elapsed when the boundary check fired.
        elapsed_ms: u64,
        /// The job's budget, milliseconds.
        deadline_ms: u64,
    },
    /// The service cannot accept or serve the request right now
    /// (bounded queue full, tier out of service) — retryable
    /// backpressure, not a verdict on the request.
    Unavailable {
        /// What is over capacity.
        detail: String,
    },
    /// A job failed on a worker. The non-`Clone` source error cannot
    /// cross the job table, so its rendered form travels with the
    /// preserved [`ErrorClass`] — clients distinguish retryable from
    /// permanent failures without parsing the message.
    Job {
        /// The class of the error that failed the job.
        class: ErrorClass,
        /// The failed job's rendered error.
        detail: String,
    },
    /// A job id that this service never issued.
    UnknownJob {
        /// The id that was asked about.
        id: postplace::JobId,
    },
}

impl ServiceError {
    /// The error's class. A [`ServiceError::Job`] envelope reports the
    /// class of the error that failed the job, not a class of its own.
    pub fn class(&self) -> ErrorClass {
        match self {
            ServiceError::Flow(_) => ErrorClass::Flow,
            ServiceError::Io { .. } => ErrorClass::Io,
            ServiceError::Codec { .. } => ErrorClass::Codec,
            ServiceError::Transient { .. } => ErrorClass::Transient,
            ServiceError::Timeout { .. } => ErrorClass::Timeout,
            ServiceError::Unavailable { .. } => ErrorClass::Unavailable,
            ServiceError::Job { class, .. } => *class,
            ServiceError::UnknownJob { .. } => ErrorClass::UnknownJob,
        }
    }

    /// Whether resubmitting the same request could plausibly succeed:
    /// transient faults, blown deadlines, and backpressure are
    /// retryable; flow, codec, plain-I/O and unknown-job errors are
    /// permanent until something else changes.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.class(),
            ErrorClass::Transient | ErrorClass::Timeout | ErrorClass::Unavailable
        )
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Flow(e) => write!(f, "flow: {e}"),
            ServiceError::Io { path, detail } => write!(f, "io at {path}: {detail}"),
            ServiceError::Codec { detail } => write!(f, "codec: {detail}"),
            ServiceError::Transient { detail } => write!(f, "transient: {detail}"),
            ServiceError::Timeout {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "timeout: {elapsed_ms} ms elapsed against a {deadline_ms} ms deadline"
            ),
            ServiceError::Unavailable { detail } => write!(f, "unavailable: {detail}"),
            ServiceError::Job { class, detail } => write!(f, "job failed ({class}): {detail}"),
            ServiceError::UnknownJob { id } => write!(f, "unknown job {id}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlowError> for ServiceError {
    fn from(e: FlowError) -> Self {
        ServiceError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_the_class() {
        let transient = ServiceError::Transient {
            detail: "disk flapping".to_string(),
        };
        let timeout = ServiceError::Timeout {
            elapsed_ms: 250,
            deadline_ms: 100,
        };
        let full = ServiceError::Unavailable {
            detail: "queue full".to_string(),
        };
        let codec = ServiceError::Codec {
            detail: "bad doc".to_string(),
        };
        assert!(transient.is_retryable());
        assert!(timeout.is_retryable());
        assert!(full.is_retryable());
        assert!(!codec.is_retryable());
        assert!(!ServiceError::UnknownJob {
            id: postplace::JobId::new(1)
        }
        .is_retryable());
    }

    #[test]
    fn job_envelopes_preserve_the_inner_class() {
        let failed = ServiceError::Timeout {
            elapsed_ms: 9,
            deadline_ms: 5,
        };
        let envelope = ServiceError::Job {
            class: failed.class(),
            detail: failed.to_string(),
        };
        assert_eq!(envelope.class(), ErrorClass::Timeout);
        assert!(envelope.is_retryable(), "retryability survives the table");
        let permanent = ServiceError::Job {
            class: ErrorClass::Flow,
            detail: "bad request".to_string(),
        };
        assert!(!permanent.is_retryable());
        assert!(permanent.to_string().contains("(flow)"));
    }
}
