//! Wire codecs: typed request/response values ⇄ [`Json`] documents.
//!
//! The vendored `serde` is a stub (its derives are no-op facade
//! markers), so the service's actual serialization lives here as
//! hand-rolled, schema-stable codecs. Numbers travel as `f64` through
//! [`Json::Num`]; the writer renders the shortest round-trip form, so
//! every finite `f64` survives an encode → render → parse → decode
//! cycle **bit-exactly** — the property the cache-hit-equals-cold-solve
//! guarantee rests on.
//!
//! Every decoder names what is missing (`request.goal: missing key
//! `budget``) instead of returning an opaque `None`: a truncated or
//! hand-edited cache file must fail loudly, not deserialize to garbage.

use arithgen::UnitRole;
use geom::Rect;
use netlist::CellId;
use postplace::{
    BudgetOptimum, CacheKey, FlowReport, Hotspot, OptimizeGoal, OptimizeOutcome, OptimizeRequest,
    OptimizeResponse, ParetoFrontier, ParetoPoint, RowOptimum, SolverKind, Strategy,
    ThermalSummary, WorkloadSpec,
};
use timan::TimingReport;

use crate::json::Json;
use crate::ServiceError;

/// Schema version of the on-disk result documents; bump on any
/// incompatible layout change so stale caches are rejected, not
/// misread.
pub const WIRE_SCHEMA: f64 = 1.0;

fn codec_err(detail: String) -> ServiceError {
    ServiceError::Codec { detail }
}

fn member<'a>(value: &'a Json, ctx: &str, key: &str) -> Result<&'a Json, ServiceError> {
    value
        .get(key)
        .ok_or_else(|| codec_err(format!("{ctx}: missing key `{key}`")))
}

fn member_f64(value: &Json, ctx: &str, key: &str) -> Result<f64, ServiceError> {
    member(value, ctx, key)?
        .as_f64()
        .ok_or_else(|| codec_err(format!("{ctx}: key `{key}` is not a number")))
}

fn member_usize(value: &Json, ctx: &str, key: &str) -> Result<usize, ServiceError> {
    let v = member_f64(value, ctx, key)?;
    // lint: allow(float-eq, reason = "fract() != 0.0 is the exact integer-ness test, not a tolerance comparison")
    if v.fract() != 0.0 || !(0.0..9.0e15).contains(&v) {
        return Err(codec_err(format!(
            "{ctx}: key `{key}` is not a non-negative integer ({v})"
        )));
    }
    Ok(v as usize)
}

fn member_str<'a>(value: &'a Json, ctx: &str, key: &str) -> Result<&'a str, ServiceError> {
    member(value, ctx, key)?
        .as_str()
        .ok_or_else(|| codec_err(format!("{ctx}: key `{key}` is not a string")))
}

fn member_arr<'a>(value: &'a Json, ctx: &str, key: &str) -> Result<&'a [Json], ServiceError> {
    member(value, ctx, key)?
        .as_arr()
        .ok_or_else(|| codec_err(format!("{ctx}: key `{key}` is not an array")))
}

fn f64_arr(value: &Json, ctx: &str, key: &str) -> Result<Vec<f64>, ServiceError> {
    member_arr(value, ctx, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| codec_err(format!("{ctx}: `{key}` holds a non-number")))
        })
        .collect()
}

fn role_name(role: UnitRole) -> &'static str {
    role.unit_name()
}

fn role_from_name(name: &str) -> Result<UnitRole, ServiceError> {
    UnitRole::ALL
        .iter()
        .copied()
        .find(|r| r.unit_name() == name)
        .ok_or_else(|| codec_err(format!("workload.active: unknown unit role `{name}`")))
}

/// [`WorkloadSpec`] → JSON.
pub fn workload_to_json(spec: &WorkloadSpec) -> Json {
    Json::obj([
        (
            "active",
            Json::Arr(
                spec.active
                    .iter()
                    .map(|&r| Json::Str(role_name(r).to_string()))
                    .collect(),
            ),
        ),
        ("toggle_probability", Json::Num(spec.toggle_probability)),
    ])
}

/// JSON → [`WorkloadSpec`].
pub fn workload_from_json(value: &Json) -> Result<WorkloadSpec, ServiceError> {
    let active = member_arr(value, "workload", "active")?
        .iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| codec_err("workload.active holds a non-string".to_string()))
                .and_then(role_from_name)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WorkloadSpec {
        active,
        toggle_probability: member_f64(value, "workload", "toggle_probability")?,
    })
}

/// [`Strategy`] → JSON. Structural, not stringly: float parameters are
/// carried as numbers so they round-trip bit-exactly (the transform-id
/// string form formats floats and would not).
pub fn strategy_to_json(strategy: &Strategy) -> Json {
    match strategy {
        Strategy::None => Json::obj([("kind", Json::Str("none".to_string()))]),
        Strategy::UniformSlack { area_overhead } => Json::obj([
            ("kind", Json::Str("uniform".to_string())),
            ("area_overhead", Json::Num(*area_overhead)),
        ]),
        Strategy::EmptyRowInsertion { rows } => Json::obj([
            ("kind", Json::Str("eri".to_string())),
            ("rows", Json::Num(*rows as f64)),
        ]),
        Strategy::HotspotWrapper { area_overhead } => Json::obj([
            ("kind", Json::Str("wrapper".to_string())),
            ("area_overhead", Json::Num(*area_overhead)),
        ]),
    }
}

/// JSON → [`Strategy`].
pub fn strategy_from_json(value: &Json) -> Result<Strategy, ServiceError> {
    match member_str(value, "strategy", "kind")? {
        "none" => Ok(Strategy::None),
        "uniform" => Ok(Strategy::UniformSlack {
            area_overhead: member_f64(value, "strategy", "area_overhead")?,
        }),
        "eri" => Ok(Strategy::EmptyRowInsertion {
            rows: member_usize(value, "strategy", "rows")?,
        }),
        "wrapper" => Ok(Strategy::HotspotWrapper {
            area_overhead: member_f64(value, "strategy", "area_overhead")?,
        }),
        other => Err(codec_err(format!("strategy: unknown kind `{other}`"))),
    }
}

fn goal_to_json(goal: &OptimizeGoal) -> Json {
    match goal {
        OptimizeGoal::Strategy(s) => Json::obj([
            ("type", Json::Str("strategy".to_string())),
            ("strategy", strategy_to_json(s)),
        ]),
        OptimizeGoal::Transform { id } => Json::obj([
            ("type", Json::Str("transform".to_string())),
            ("id", Json::Str(id.clone())),
        ]),
        OptimizeGoal::BestWithinBudget { budget } => Json::obj([
            ("type", Json::Str("budget".to_string())),
            ("budget", Json::Num(*budget)),
        ]),
        OptimizeGoal::Frontier { budgets } => Json::obj([
            ("type", Json::Str("frontier".to_string())),
            (
                "budgets",
                Json::Arr(budgets.iter().map(|&b| Json::Num(b)).collect()),
            ),
        ]),
        OptimizeGoal::RowsForTarget {
            target_reduction_pct,
            max_rows,
        } => Json::obj([
            ("type", Json::Str("rows_for_target".to_string())),
            ("target_reduction_pct", Json::Num(*target_reduction_pct)),
            ("max_rows", Json::Num(*max_rows as f64)),
        ]),
    }
}

fn goal_from_json(value: &Json) -> Result<OptimizeGoal, ServiceError> {
    match member_str(value, "goal", "type")? {
        "strategy" => Ok(OptimizeGoal::Strategy(strategy_from_json(member(
            value, "goal", "strategy",
        )?)?)),
        "transform" => Ok(OptimizeGoal::Transform {
            id: member_str(value, "goal", "id")?.to_string(),
        }),
        "budget" => Ok(OptimizeGoal::BestWithinBudget {
            budget: member_f64(value, "goal", "budget")?,
        }),
        "frontier" => Ok(OptimizeGoal::Frontier {
            budgets: f64_arr(value, "goal", "budgets")?,
        }),
        "rows_for_target" => Ok(OptimizeGoal::RowsForTarget {
            target_reduction_pct: member_f64(value, "goal", "target_reduction_pct")?,
            max_rows: member_usize(value, "goal", "max_rows")?,
        }),
        other => Err(codec_err(format!("goal: unknown type `{other}`"))),
    }
}

/// [`OptimizeRequest`] → JSON. `solver_threads`, `deadline_ms` and
/// `solver` are emitted only when set, so documents written before any
/// of those knobs existed render byte-identically to ones written now
/// without them.
pub fn request_to_json(request: &OptimizeRequest) -> Json {
    let mut members = vec![
        ("workload".to_string(), workload_to_json(&request.workload)),
        (
            "mesh".to_string(),
            Json::Arr(vec![
                Json::Num(request.mesh.0 as f64),
                Json::Num(request.mesh.1 as f64),
            ]),
        ),
        ("goal".to_string(), goal_to_json(&request.goal)),
        (
            "tag".to_string(),
            match &request.tag {
                Some(tag) => Json::Str(tag.clone()),
                None => Json::Null,
            },
        ),
    ];
    if let Some(threads) = request.solver_threads {
        members.push(("solver_threads".to_string(), Json::Num(threads as f64)));
    }
    if let Some(deadline_ms) = request.deadline_ms {
        members.push(("deadline_ms".to_string(), Json::Num(deadline_ms as f64)));
    }
    if let Some(solver) = request.solver {
        members.push((
            "solver".to_string(),
            Json::Str(solver_token(solver).to_string()),
        ));
    }
    Json::Obj(members)
}

fn solver_token(solver: SolverKind) -> &'static str {
    match solver {
        SolverKind::Auto => "auto",
        SolverKind::Stencil => "stencil",
        SolverKind::Csr => "csr",
        SolverKind::Spectral => "spectral",
    }
}

fn solver_from_token(token: &str) -> Result<SolverKind, ServiceError> {
    match token {
        "auto" => Ok(SolverKind::Auto),
        "stencil" => Ok(SolverKind::Stencil),
        "csr" => Ok(SolverKind::Csr),
        "spectral" => Ok(SolverKind::Spectral),
        other => Err(codec_err(format!(
            "request.solver: unknown backend `{other}` (expected auto/stencil/csr/spectral)"
        ))),
    }
}

/// JSON → [`OptimizeRequest`].
pub fn request_from_json(value: &Json) -> Result<OptimizeRequest, ServiceError> {
    let mesh = member_arr(value, "request", "mesh")?;
    let [nx, ny] = mesh else {
        return Err(codec_err(format!(
            "request.mesh: expected [nx, ny], got {} element(s)",
            mesh.len()
        )));
    };
    let dim = |v: &Json, name: &str| {
        v.as_f64()
            // lint: allow(float-eq, reason = "fract() == 0.0 is the exact integer-ness test, not a tolerance comparison")
            .filter(|d| d.fract() == 0.0 && *d >= 0.0)
            .map(|d| d as usize)
            .ok_or_else(|| codec_err(format!("request.mesh: `{name}` is not an integer")))
    };
    let tag = match member(value, "request", "tag")? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        _ => {
            return Err(codec_err(
                "request.tag is neither string nor null".to_string(),
            ))
        }
    };
    // Absent or null means "inherit the service default": documents
    // written before the knob existed must keep decoding.
    let solver_threads = match value.get("solver_threads") {
        None | Some(Json::Null) => None,
        Some(_) => Some(member_usize(value, "request", "solver_threads")?),
    };
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(_) => Some(member_usize(value, "request", "deadline_ms")? as u64),
    };
    let solver = match value.get("solver") {
        None | Some(Json::Null) => None,
        Some(_) => Some(solver_from_token(member_str(value, "request", "solver")?)?),
    };
    Ok(OptimizeRequest {
        workload: workload_from_json(member(value, "request", "workload")?)?,
        mesh: (dim(nx, "nx")?, dim(ny, "ny")?),
        goal: goal_from_json(member(value, "request", "goal")?)?,
        tag,
        solver_threads,
        deadline_ms,
        solver,
    })
}

fn thermal_summary_to_json(s: &ThermalSummary) -> Json {
    Json::obj([
        ("peak_c", Json::Num(s.peak_c)),
        ("peak_rise", Json::Num(s.peak_rise)),
        ("mean_rise", Json::Num(s.mean_rise)),
        ("gradient", Json::Num(s.gradient)),
    ])
}

fn thermal_summary_from_json(value: &Json, ctx: &str) -> Result<ThermalSummary, ServiceError> {
    Ok(ThermalSummary {
        peak_c: member_f64(value, ctx, "peak_c")?,
        peak_rise: member_f64(value, ctx, "peak_rise")?,
        mean_rise: member_f64(value, ctx, "mean_rise")?,
        gradient: member_f64(value, ctx, "gradient")?,
    })
}

fn timing_to_json(t: &TimingReport) -> Json {
    Json::obj([
        ("critical_path_ps", Json::Num(t.critical_path_ps)),
        ("slack_ps", Json::Num(t.slack_ps)),
        (
            "critical_cells",
            Json::Arr(
                t.critical_cells
                    .iter()
                    .map(|c| Json::Num(c.index() as f64))
                    .collect(),
            ),
        ),
    ])
}

fn timing_from_json(value: &Json, ctx: &str) -> Result<TimingReport, ServiceError> {
    let critical_cells = member_arr(value, ctx, "critical_cells")?
        .iter()
        .map(|v| {
            v.as_f64()
                // lint: allow(float-eq, reason = "fract() == 0.0 is the exact integer-ness test, not a tolerance comparison")
                .filter(|d| d.fract() == 0.0 && *d >= 0.0)
                .map(|d| CellId::new(d as usize))
                .ok_or_else(|| codec_err(format!("{ctx}.critical_cells holds a non-index")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TimingReport {
        critical_path_ps: member_f64(value, ctx, "critical_path_ps")?,
        slack_ps: member_f64(value, ctx, "slack_ps")?,
        critical_cells,
    })
}

fn rect_to_json(r: &Rect) -> Json {
    Json::Arr(vec![
        Json::Num(r.llx),
        Json::Num(r.lly),
        Json::Num(r.urx),
        Json::Num(r.ury),
    ])
}

fn rect_from_json(value: &Json, ctx: &str) -> Result<Rect, ServiceError> {
    let arr = value
        .as_arr()
        .ok_or_else(|| codec_err(format!("{ctx}: rect is not an array")))?;
    let [llx, lly, urx, ury] = arr else {
        return Err(codec_err(format!(
            "{ctx}: rect needs [llx, lly, urx, ury], got {} element(s)",
            arr.len()
        )));
    };
    let coord = |v: &Json| {
        v.as_f64()
            .ok_or_else(|| codec_err(format!("{ctx}: rect holds a non-number")))
    };
    Ok(Rect::new(
        coord(llx)?,
        coord(lly)?,
        coord(urx)?,
        coord(ury)?,
    ))
}

fn hotspot_to_json(h: &Hotspot) -> Json {
    Json::obj([
        (
            "bins",
            Json::Arr(
                h.bins
                    .iter()
                    .map(|&(x, y)| Json::Arr(vec![Json::Num(x as f64), Json::Num(y as f64)]))
                    .collect(),
            ),
        ),
        ("bbox", rect_to_json(&h.bbox)),
        ("peak_c", Json::Num(h.peak_c)),
        ("area_um2", Json::Num(h.area_um2)),
    ])
}

fn hotspot_from_json(value: &Json) -> Result<Hotspot, ServiceError> {
    let bins = member_arr(value, "hotspot", "bins")?
        .iter()
        .map(|pair| {
            let items = pair
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| codec_err("hotspot.bins holds a non-pair".to_string()))?;
            let idx = |v: &Json| {
                v.as_f64()
                    // lint: allow(float-eq, reason = "fract() == 0.0 is the exact integer-ness test, not a tolerance comparison")
                    .filter(|d| d.fract() == 0.0 && *d >= 0.0)
                    .map(|d| d as usize)
                    .ok_or_else(|| codec_err("hotspot.bins holds a non-index".to_string()))
            };
            Ok((idx(&items[0])?, idx(&items[1])?))
        })
        .collect::<Result<Vec<_>, ServiceError>>()?;
    Ok(Hotspot {
        bins,
        bbox: rect_from_json(member(value, "hotspot", "bbox")?, "hotspot.bbox")?,
        peak_c: member_f64(value, "hotspot", "peak_c")?,
        area_um2: member_f64(value, "hotspot", "area_um2")?,
    })
}

/// [`FlowReport`] → JSON.
pub fn report_to_json(report: &FlowReport) -> Json {
    Json::obj([
        ("strategy", strategy_to_json(&report.strategy)),
        ("transform_id", Json::Str(report.transform_id.clone())),
        ("base_area_um2", Json::Num(report.base_area_um2)),
        ("new_area_um2", Json::Num(report.new_area_um2)),
        ("area_overhead_pct", Json::Num(report.area_overhead_pct)),
        ("before", thermal_summary_to_json(&report.before)),
        ("after", thermal_summary_to_json(&report.after)),
        (
            "hotspots",
            Json::Arr(report.hotspots.iter().map(hotspot_to_json).collect()),
        ),
        ("timing_before", timing_to_json(&report.timing_before)),
        ("timing_after", timing_to_json(&report.timing_after)),
        ("hpwl_before_um", Json::Num(report.hpwl_before_um)),
        ("hpwl_after_um", Json::Num(report.hpwl_after_um)),
        ("total_power_w", Json::Num(report.total_power_w)),
    ])
}

/// JSON → [`FlowReport`].
pub fn report_from_json(value: &Json) -> Result<FlowReport, ServiceError> {
    let hotspots = member_arr(value, "report", "hotspots")?
        .iter()
        .map(hotspot_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FlowReport {
        strategy: strategy_from_json(member(value, "report", "strategy")?)?,
        transform_id: member_str(value, "report", "transform_id")?.to_string(),
        base_area_um2: member_f64(value, "report", "base_area_um2")?,
        new_area_um2: member_f64(value, "report", "new_area_um2")?,
        area_overhead_pct: member_f64(value, "report", "area_overhead_pct")?,
        before: thermal_summary_from_json(member(value, "report", "before")?, "report.before")?,
        after: thermal_summary_from_json(member(value, "report", "after")?, "report.after")?,
        hotspots,
        timing_before: timing_from_json(
            member(value, "report", "timing_before")?,
            "report.timing_before",
        )?,
        timing_after: timing_from_json(
            member(value, "report", "timing_after")?,
            "report.timing_after",
        )?,
        hpwl_before_um: member_f64(value, "report", "hpwl_before_um")?,
        hpwl_after_um: member_f64(value, "report", "hpwl_after_um")?,
        total_power_w: member_f64(value, "report", "total_power_w")?,
    })
}

fn point_to_json(p: &ParetoPoint) -> Json {
    Json::obj([
        ("transform_id", Json::Str(p.transform_id.clone())),
        ("kind", Json::Str(p.kind.clone())),
        ("budget", Json::Num(p.budget)),
        (
            "estimated_reduction_pct",
            Json::Num(p.estimated_reduction_pct),
        ),
        ("report", report_to_json(&p.report)),
    ])
}

fn point_from_json(value: &Json) -> Result<ParetoPoint, ServiceError> {
    Ok(ParetoPoint {
        transform_id: member_str(value, "point", "transform_id")?.to_string(),
        kind: member_str(value, "point", "kind")?.to_string(),
        budget: member_f64(value, "point", "budget")?,
        estimated_reduction_pct: member_f64(value, "point", "estimated_reduction_pct")?,
        report: report_from_json(member(value, "point", "report")?)?,
    })
}

fn outcome_to_json(outcome: &OptimizeOutcome) -> Json {
    match outcome {
        OptimizeOutcome::Report(report) => Json::obj([
            ("type", Json::Str("report".to_string())),
            ("report", report_to_json(report)),
        ]),
        OptimizeOutcome::Budget(b) => Json::obj([
            ("type", Json::Str("budget".to_string())),
            ("report", report_to_json(&b.report)),
            ("screened", Json::Num(b.screened as f64)),
            ("evaluations", Json::Num(b.evaluations as f64)),
            (
                "skipped_over_budget",
                Json::Num(b.skipped_over_budget as f64),
            ),
        ]),
        OptimizeOutcome::Frontier(frontier) => Json::obj([
            ("type", Json::Str("frontier".to_string())),
            (
                "points",
                Json::Arr(frontier.points.iter().map(point_to_json).collect()),
            ),
            ("candidates", Json::Num(frontier.candidates as f64)),
            ("screened", Json::Num(frontier.screened as f64)),
            ("exact_runs", Json::Num(frontier.exact_runs as f64)),
            ("skipped", Json::Num(frontier.skipped as f64)),
        ]),
        OptimizeOutcome::Rows(r) => Json::obj([
            ("type", Json::Str("rows".to_string())),
            ("rows", Json::Num(r.rows as f64)),
            ("report", report_to_json(&r.report)),
            ("evaluations", Json::Num(r.evaluations as f64)),
            ("screened", Json::Num(r.screened as f64)),
        ]),
    }
}

fn outcome_from_json(value: &Json) -> Result<OptimizeOutcome, ServiceError> {
    match member_str(value, "outcome", "type")? {
        "report" => Ok(OptimizeOutcome::Report(report_from_json(member(
            value, "outcome", "report",
        )?)?)),
        "budget" => Ok(OptimizeOutcome::Budget(BudgetOptimum {
            report: report_from_json(member(value, "outcome", "report")?)?,
            screened: member_usize(value, "outcome", "screened")?,
            evaluations: member_usize(value, "outcome", "evaluations")?,
            skipped_over_budget: member_usize(value, "outcome", "skipped_over_budget")?,
        })),
        "frontier" => Ok(OptimizeOutcome::Frontier(ParetoFrontier {
            points: member_arr(value, "outcome", "points")?
                .iter()
                .map(point_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            candidates: member_usize(value, "outcome", "candidates")?,
            screened: member_usize(value, "outcome", "screened")?,
            exact_runs: member_usize(value, "outcome", "exact_runs")?,
            skipped: member_usize(value, "outcome", "skipped")?,
        })),
        "rows" => Ok(OptimizeOutcome::Rows(RowOptimum {
            rows: member_usize(value, "outcome", "rows")?,
            report: report_from_json(member(value, "outcome", "report")?)?,
            evaluations: member_usize(value, "outcome", "evaluations")?,
            screened: member_usize(value, "outcome", "screened")?,
        })),
        other => Err(codec_err(format!("outcome: unknown type `{other}`"))),
    }
}

/// [`OptimizeResponse`] → JSON.
pub fn response_to_json(response: &OptimizeResponse) -> Json {
    Json::obj([
        ("key", Json::Str(response.key.to_hex())),
        ("outcome", outcome_to_json(&response.outcome)),
    ])
}

/// JSON → [`OptimizeResponse`].
pub fn response_from_json(value: &Json) -> Result<OptimizeResponse, ServiceError> {
    let key = member_str(value, "response", "key")?;
    let key = CacheKey::from_hex(key)
        .ok_or_else(|| codec_err(format!("response.key `{key}` is not 32 hex digits")))?;
    Ok(OptimizeResponse {
        key,
        outcome: outcome_from_json(member(value, "response", "outcome")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> OptimizeRequest {
        OptimizeRequest::builder()
            .workload(WorkloadSpec {
                active: vec![UnitRole::BoothMult, UnitRole::Alu],
                toggle_probability: 0.4375,
            })
            .mesh(16, 16)
            .strategy(Strategy::UniformSlack {
                // A value with a busy mantissa: 0.1 has no exact binary
                // form, so a formatting codec would corrupt it.
                area_overhead: 0.1,
            })
            .tag("wire-test")
            .solver_threads(3)
            .build()
            .unwrap()
    }

    #[test]
    fn requests_round_trip_bit_exactly_through_text() {
        for goal in [
            sample_request(),
            OptimizeRequest::builder()
                .workload(WorkloadSpec::checkerboard())
                .mesh(10, 12)
                .transform("composite(eri:8+wrap)")
                .build()
                .unwrap(),
            OptimizeRequest::builder()
                .workload(WorkloadSpec::clustered_hotspot())
                .mesh(8, 8)
                .budget(0.16)
                .build()
                .unwrap(),
            OptimizeRequest::builder()
                .workload(WorkloadSpec::clustered_hotspot())
                .mesh(8, 8)
                .frontier([0.04, 0.08, 1.0 / 3.0])
                .build()
                .unwrap(),
            OptimizeRequest::builder()
                .workload(WorkloadSpec::clustered_hotspot())
                .mesh(8, 8)
                .rows_for_target(12.5, 24)
                .build()
                .unwrap(),
        ] {
            let text = request_to_json(&goal).render();
            let back = request_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(goal, back, "request must survive the wire");
        }
    }

    #[test]
    fn requests_without_solver_threads_still_decode() {
        // A document written before the knob existed: no key at all.
        let mut request = sample_request();
        request.solver_threads = None;
        let text = request_to_json(&request).render();
        assert!(
            !text.contains("solver_threads"),
            "an unset knob must not appear on the wire: {text}"
        );
        let back = request_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.solver_threads, None);
        assert_eq!(request, back);
    }

    #[test]
    fn deadlines_ride_the_wire_only_when_set() {
        let mut request = sample_request();
        request.deadline_ms = Some(750);
        let text = request_to_json(&request).render();
        assert!(text.contains("\"deadline_ms\": 750"), "{text}");
        let back = request_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.deadline_ms, Some(750));
        assert_eq!(request, back);
        request.deadline_ms = None;
        let text = request_to_json(&request).render();
        assert!(
            !text.contains("deadline_ms"),
            "an unset deadline must not appear on the wire: {text}"
        );
        let back = request_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.deadline_ms, None);
    }

    #[test]
    fn solver_rides_the_wire_only_when_set() {
        for (kind, token) in [
            (SolverKind::Auto, "auto"),
            (SolverKind::Stencil, "stencil"),
            (SolverKind::Csr, "csr"),
            (SolverKind::Spectral, "spectral"),
        ] {
            let mut request = sample_request();
            request.solver = Some(kind);
            let text = request_to_json(&request).render();
            assert!(text.contains(&format!("\"solver\": \"{token}\"")), "{text}");
            let back = request_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.solver, Some(kind));
            assert_eq!(request, back);
        }
        let mut request = sample_request();
        request.solver = None;
        let text = request_to_json(&request).render();
        assert!(
            !text.contains("\"solver\""),
            "an unset solver must not appear on the wire: {text}"
        );
        let back = request_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.solver, None);
        let err = request_from_json(
            &Json::parse(&text.replace(
                "\"solver_threads\": 3",
                "\"solver_threads\": 3, \"solver\": \"warp-drive\"",
            ))
            .unwrap(),
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("warp-drive"), "{err}");
    }

    #[test]
    fn pre_solver_documents_decode_and_re_render_byte_identically() {
        // A request document exactly as the service wrote it before the
        // `solver` knob existed must decode to `None` (= inherit the
        // service default) and — crucially for the persistent disk
        // cache, which compares re-rendered documents byte-for-byte —
        // render back to the very same bytes.
        let request = sample_request();
        let pre_pr_text = request_to_json(&request).render();
        assert!(!pre_pr_text.contains("\"solver\""));
        let back = request_from_json(&Json::parse(&pre_pr_text).unwrap()).unwrap();
        assert_eq!(back.solver, None);
        assert_eq!(request_to_json(&back).render(), pre_pr_text);
        // An explicit null is the other legacy spelling of "unset".
        let nulled = pre_pr_text.replace(
            "\"solver_threads\": 3",
            "\"solver_threads\": 3, \"solver\": null",
        );
        assert_ne!(nulled, pre_pr_text, "replacement must have fired");
        let back = request_from_json(&Json::parse(&nulled).unwrap()).unwrap();
        assert_eq!(back.solver, None);
        assert_eq!(request_to_json(&back).render(), pre_pr_text);
    }

    #[test]
    fn strategies_round_trip_structurally() {
        for strategy in [
            Strategy::None,
            Strategy::UniformSlack {
                area_overhead: 0.163_841_99,
            },
            Strategy::EmptyRowInsertion { rows: 17 },
            Strategy::HotspotWrapper {
                area_overhead: f64::MIN_POSITIVE,
            },
        ] {
            let text = strategy_to_json(&strategy).render();
            let back = strategy_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(strategy, back);
        }
    }

    #[test]
    fn decoders_name_whats_missing() {
        let doc = Json::parse(r#"{"type": "budget"}"#).unwrap();
        let err = outcome_from_json(&doc).unwrap_err().to_string();
        assert!(err.contains("missing key `report`"), "{err}");
        let doc = Json::parse(r#"{"kind": "warp-drive"}"#).unwrap();
        let err = strategy_from_json(&doc).unwrap_err().to_string();
        assert!(err.contains("unknown kind `warp-drive`"), "{err}");
    }

    #[test]
    fn unknown_unit_roles_are_rejected() {
        let doc = Json::parse(r#"{"active": ["mul_booth", "quantum"], "toggle_probability": 0.5}"#)
            .unwrap();
        let err = workload_from_json(&doc).unwrap_err().to_string();
        assert!(err.contains("quantum"), "{err}");
    }

    #[test]
    fn every_unit_role_survives_the_name_mapping() {
        for role in UnitRole::ALL {
            assert_eq!(role_from_name(role.unit_name()).unwrap(), role);
        }
    }
}
