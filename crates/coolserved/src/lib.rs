//! `coolserved` — a long-running thermal-optimization service over the
//! [`postplace`] flow.
//!
//! The crate turns the one-shot library API into a job-oriented
//! service suitable for a design team's shared box:
//!
//! * **Typed requests in, typed envelopes out.** Clients build
//!   [`postplace::OptimizeRequest`] values and submit them through a
//!   [`ServiceHandle`]; completed jobs come back as [`JobRecord`]s
//!   carrying the deterministic [`postplace::OptimizeResponse`] plus
//!   per-execution metadata (wall time, [`ResultSource`]) that is
//!   deliberately **not** part of the response, so warm answers stay
//!   bit-identical to cold solves.
//! * **A worker pool behind a queue.** [`serve`] spawns scoped worker
//!   threads that share one primed [`postplace::Flow`] per distinct
//!   resolved configuration and drain the queue on shutdown.
//! * **A two-tier persistent result cache.** [`ResultStore`] layers an
//!   in-memory LRU over an on-disk JSON directory keyed by
//!   [`postplace::CacheKey`] — a stable content hash, so a second
//!   process (or a run next week) reuses last week's solves.
//! * **Fault tolerance by construction.** All disk I/O and time reads
//!   route through the [`backend::StoreBackend`] seam, so the
//!   deterministic [`fault::FaultPlan`] harness can fail the Nth write,
//!   corrupt a read, or stretch the clock in tests. On top of the seam:
//!   retry with capped backoff ([`backend::RetryPolicy`]), corrupt
//!   document quarantine, single-flight request deduplication, per-job
//!   deadlines, graceful degradation to memory-only mode
//!   ([`DiskHealth`]), and compare-and-swap disk writes safe across
//!   processes. Errors carry an [`ErrorClass`] and answer
//!   [`ServiceError::is_retryable`].
//!
//! ```no_run
//! use coolserved::{serve, ServiceConfig};
//! use postplace::{FlowConfig, OptimizeRequest};
//!
//! let config = ServiceConfig::new(FlowConfig::scattered_small())
//!     .workers(4)
//!     .disk_root("/tmp/coolserved-cache");
//! let record = serve(config, |service| {
//!     let request = OptimizeRequest::builder()
//!         .workload(postplace::WorkloadSpec::clustered_hotspot())
//!         .mesh(16, 16)
//!         .budget(0.16)
//!         .build()
//!         .unwrap();
//!     let id = service.submit(request);
//!     service.wait(id).unwrap()
//! });
//! println!("{} via {}", record.key, record.source);
//! ```

pub mod backend;
pub mod fault;
pub mod json;

mod error;
mod service;
mod store;
pub mod wire;

pub use backend::{OsBackend, RetryPolicy, StoreBackend};
pub use error::{ErrorClass, ServiceError};
pub use fault::{FaultKind, FaultOp, FaultPlan, FaultRule};
pub use service::{serve, JobRecord, JobStatus, ServiceConfig, ServiceHandle, ServiceStats};
pub use store::{DiskHealth, DiskOptions, ResultSource, ResultStore, StoreStats, STORE_NAMESPACE};
