//! Two-tier persistent result store: in-memory LRU over an on-disk
//! JSON layer, built to survive a misbehaving disk.
//!
//! Results are keyed by [`CacheKey`] — the stable content hash of the
//! request plus the resolved flow configuration — so a key computed in
//! one process finds a result written by another. The memory tier is a
//! [`KeyedCache`]; the optional disk tier stores one rendered document
//! per key at `<root>/optimize/<hex-key>.json`.
//!
//! All disk I/O and time reads route through a [`StoreBackend`]
//! (see [`crate::backend`]), which is the fault-injection seam: every
//! recovery path below is pinned by a scheduled [`crate::fault`] test.
//! The disk tier's failure policy, in order of escalation:
//!
//! 1. **Retry** — transient I/O failures are retried with capped
//!    exponential backoff ([`RetryPolicy`]).
//! 2. **Quarantine** — a document failing parse / schema / content-key
//!    integrity is atomically renamed to `<key>.quarantine.<n>` and the
//!    lookup reports a miss, so the caller recomputes and rewrites a
//!    clean document instead of failing forever on the same bytes.
//! 3. **Degrade** — if the disk keeps failing past the retry budget,
//!    the tier drops to memory-only mode ([`DiskHealth::Degraded`])
//!    instead of failing every request; with
//!    [`DiskOptions::degrade_on_failure`] off, the store surfaces
//!    [`ServiceError::Transient`] instead so callers can retry.
//!
//! Writes are multi-process safe by compare-and-swap: peek the
//! incumbent document, write a temp file, re-peek, and only then
//! atomically rename over — two processes sharing `<root>/optimize/`
//! never tear or interleave documents, and the loser of a same-key race
//! discards its temp file (counted, not errored: both wrote the same
//! deterministic bytes).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use postplace::{CacheKey, CacheStats, KeyedCache, OptimizeResponse};

use crate::backend::{OsBackend, RetryPolicy, StoreBackend};
use crate::json::Json;
use crate::wire::{response_from_json, response_to_json, WIRE_SCHEMA};
use crate::ServiceError;

/// Directory under the disk root that namespaces this store's files;
/// other stores (future stores of different document kinds) get their
/// own namespace beside it.
pub const STORE_NAMESPACE: &str = "optimize";

/// Most quarantine generations kept per key before the store deletes
/// the corrupt document outright instead of archiving another copy.
const MAX_QUARANTINE_GENERATIONS: u64 = 16;

/// Where an answered request's result actually came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultSource {
    /// Nothing cached; a worker ran the optimization.
    ColdSolve,
    /// Served from the in-memory tier.
    MemoryCache,
    /// Served from the on-disk tier (and promoted to memory).
    DiskCache,
}

impl std::fmt::Display for ResultSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResultSource::ColdSolve => "cold-solve",
            ResultSource::MemoryCache => "memory-cache",
            ResultSource::DiskCache => "disk-cache",
        })
    }
}

/// Health of the disk tier, recorded rather than thrown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DiskHealth {
    /// No disk tier was configured.
    #[default]
    Disabled,
    /// The disk tier is serving reads and writes.
    Healthy,
    /// The disk kept failing past the retry budget; the store dropped
    /// to memory-only mode and stopped touching it.
    Degraded,
}

impl std::fmt::Display for DiskHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DiskHealth::Disabled => "disabled",
            DiskHealth::Healthy => "healthy",
            DiskHealth::Degraded => "degraded",
        })
    }
}

/// Failure policy and bounds of the disk tier.
#[derive(Debug, Clone, Copy)]
pub struct DiskOptions {
    /// Retry policy for transient disk I/O.
    pub retry: RetryPolicy,
    /// Most documents kept on disk; oldest are evicted past the bound.
    /// `None` (the default) keeps everything.
    pub max_documents: Option<usize>,
    /// Oldest a document may grow (milliseconds on the backend clock)
    /// before eviction. `None` (the default) keeps documents forever.
    pub max_age_ms: Option<u64>,
    /// When `true` (the default), a disk that keeps failing degrades
    /// the tier to memory-only mode; when `false`, store calls surface
    /// [`ServiceError::Transient`] to the caller instead.
    pub degrade_on_failure: bool,
}

impl Default for DiskOptions {
    fn default() -> Self {
        DiskOptions {
            retry: RetryPolicy::default(),
            max_documents: None,
            max_age_ms: None,
            degrade_on_failure: true,
        }
    }
}

/// Counter snapshot of a [`ResultStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Memory-tier counters (hits/misses/evictions/inserts).
    pub memory: CacheStats,
    /// Lookups answered by the disk tier.
    pub disk_hits: u64,
    /// Documents written to the disk tier.
    pub disk_writes: u64,
    /// Disk operations retried after a transient failure.
    pub disk_retries: u64,
    /// Corrupt documents quarantined (or deleted when the quarantine
    /// itself failed).
    pub quarantined: u64,
    /// Documents evicted by the count/age bounds.
    pub evicted: u64,
    /// Same-key write races lost to another writer (the incumbent
    /// document won; ours was discarded).
    pub write_races_lost: u64,
    /// Current health of the disk tier.
    pub disk_health: DiskHealth,
}

/// What a peek at a key's on-disk slot found.
enum Incumbent {
    /// No document (or an unreadable slot we will overwrite anyway).
    Absent,
    /// A document that decodes cleanly — a concurrent writer won.
    Valid,
    /// A document that fails integrity checks.
    Corrupt,
}

/// The disk tier: a directory of documents behind the backend seam.
struct DiskTier {
    dir: PathBuf,
    backend: Arc<dyn StoreBackend>,
    options: DiskOptions,
    degraded: AtomicBool,
    hits: AtomicU64,
    writes: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
    races_lost: AtomicU64,
}

/// The two-tier store. Cloning is cheap and shares both tiers.
#[derive(Clone)]
pub struct ResultStore {
    memory: KeyedCache<CacheKey, OptimizeResponse>,
    disk: Option<Arc<DiskTier>>,
}

impl DiskTier {
    fn path_for(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.to_hex()))
    }

    fn degrade(&self) {
        self.degraded.store(true, Ordering::Relaxed);
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Runs `op` up to the retry budget, sleeping the capped
    /// exponential backoff (through the backend, so fault-injected
    /// tests pay virtual time only) between attempts.
    fn with_retries<T>(
        &self,
        what: &str,
        path: &Path,
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> Result<T, ServiceError> {
        let budget = self.options.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if attempt >= budget {
                        return Err(ServiceError::Transient {
                            detail: format!(
                                "{what} {} still failing after {budget} attempt(s): {e}",
                                path.display()
                            ),
                        });
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.backend
                        .sleep_ms(self.options.retry.backoff_ms(attempt - 1));
                }
            }
        }
    }

    /// Decodes a persisted document, checking schema and content-key
    /// integrity against the file the bytes came from.
    fn decode(&self, text: &str, key: CacheKey, path: &Path) -> Result<OptimizeResponse, String> {
        let doc = Json::parse(text).map_err(|detail| format!("{}: {detail}", path.display()))?;
        let schema = doc.get("schema").and_then(Json::as_f64);
        if schema != Some(WIRE_SCHEMA) {
            return Err(format!(
                "{}: schema {schema:?} does not match wire schema {WIRE_SCHEMA}",
                path.display()
            ));
        }
        // The file is named by the *content* key (resolved physics +
        // goal); the response's own `key` field is the cheaper request
        // fingerprint, so integrity is checked against the envelope's
        // content_key instead.
        let named = doc.get("content_key").and_then(Json::as_str);
        if named != Some(key.to_hex().as_str()) {
            return Err(format!(
                "{}: document says content key {named:?} but file is named {key}",
                path.display()
            ));
        }
        doc.get("response")
            .ok_or_else(|| format!("{}: missing key `response`", path.display()))
            .and_then(|r| response_from_json(r).map_err(|e| e.to_string()))
    }

    /// Moves a corrupt document out of the lookup path so the key can
    /// recompute cleanly. Best effort, escalating: rename to the next
    /// free `<key>.quarantine.<n>` slot, else delete, else degrade the
    /// tier (strict mode surfaces the failure instead).
    fn quarantine(&self, key: CacheKey, path: &Path) -> Result<(), ServiceError> {
        let hex = key.to_hex();
        for n in 1..=MAX_QUARANTINE_GENERATIONS {
            let slot = self.dir.join(format!("{hex}.quarantine.{n}"));
            if self.backend.exists(&slot) {
                continue;
            }
            if self.backend.rename(path, &slot).is_ok() {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            break;
        }
        // Could not archive it (rename kept failing, or every slot is
        // taken): deleting still unblocks the recompute.
        match self.with_retries("quarantine-delete", path, || self.backend.remove_file(path)) {
            Ok(()) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) if self.options.degrade_on_failure => {
                // The poisoned document is stuck in place; stop serving
                // from this disk rather than re-tripping on it.
                self.degrade();
                let _ = e;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Peeks at what currently occupies `key`'s slot. An unreadable
    /// slot reports [`Incumbent::Absent`]: we cannot verify it, and the
    /// atomic rename about to happen replaces it wholesale anyway.
    fn peek(&self, key: CacheKey, path: &Path) -> Incumbent {
        if !self.backend.exists(path) {
            return Incumbent::Absent;
        }
        match self.backend.read_to_string(path) {
            Err(_) => Incumbent::Absent,
            Ok(text) => match self.decode(&text, key, path) {
                Ok(_) => Incumbent::Valid,
                Err(_) => Incumbent::Corrupt,
            },
        }
    }

    /// How many quarantine generations already exist for `key` — the
    /// next document's generation number is one past them.
    fn generation_for(&self, key: CacheKey) -> u64 {
        let hex = key.to_hex();
        let mut n = 0;
        while n < MAX_QUARANTINE_GENERATIONS {
            let slot = self.dir.join(format!("{hex}.quarantine.{}", n + 1));
            if !self.backend.exists(&slot) {
                break;
            }
            n += 1;
        }
        n + 1
    }

    /// Enforces the count/age bounds, oldest first. Best effort: a
    /// failing list or delete is skipped, never escalated — eviction is
    /// hygiene, not correctness.
    fn evict(&self) {
        if self.options.max_documents.is_none() && self.options.max_age_ms.is_none() {
            return;
        }
        let Ok(entries) = self.backend.list_dir(&self.dir) else {
            return;
        };
        let mut documents: Vec<(u64, PathBuf)> = entries
            .into_iter()
            .filter(|p| is_document_name(p))
            .map(|p| (self.backend.modified_millis(&p).unwrap_or(0), p))
            .collect();
        documents.sort();
        let now = self.backend.now_millis();
        let mut survivors = Vec::with_capacity(documents.len());
        if let Some(max_age) = self.options.max_age_ms {
            for (mtime, path) in documents {
                if now.saturating_sub(mtime) > max_age {
                    if self.backend.remove_file(&path).is_ok() {
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    survivors.push((mtime, path));
                }
            }
            documents = survivors;
        }
        if let Some(max_docs) = self.options.max_documents {
            while documents.len() > max_docs {
                let (_, oldest) = documents.remove(0);
                if self.backend.remove_file(&oldest).is_ok() {
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Sweeps temp files a crashed writer left behind. Best effort.
    fn sweep_temps(&self) {
        let Ok(entries) = self.backend.list_dir(&self.dir) else {
            return;
        };
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with('.') && name.contains(".tmp-") {
                let _ = self.backend.remove_file(&path);
            }
        }
    }

    /// Persists `response` under `key` with compare-and-swap
    /// discipline. Returns `Ok(false)` when a concurrent writer's valid
    /// document won the race (ours was discarded).
    fn persist(&self, key: CacheKey, response: &OptimizeResponse) -> Result<bool, ServiceError> {
        self.with_retries("create-dir", &self.dir, || {
            self.backend.create_dir_all(&self.dir)
        })?;
        let path = self.path_for(key);
        match self.peek(key, &path) {
            Incumbent::Valid => {
                // Another process (or an earlier run) already persisted
                // this key. Responses are deterministic, so the bytes
                // on disk equal the bytes we would write: yield.
                self.races_lost.fetch_add(1, Ordering::Relaxed);
                return Ok(false);
            }
            Incumbent::Corrupt => {
                self.quarantine(key, &path)?;
            }
            Incumbent::Absent => {}
        }
        let document = Json::obj([
            ("schema", Json::Num(WIRE_SCHEMA)),
            ("content_key", Json::Str(key.to_hex())),
            ("generation", Json::Num(self.generation_for(key) as f64)),
            ("response", response_to_json(response)),
        ]);
        // Unique temp name per process+key: concurrent writers of the
        // same key race only at the rename, which is atomic.
        let tmp = self
            .dir
            .join(format!(".{}.tmp-{}", key.to_hex(), std::process::id()));
        let rendered = document.render();
        self.with_retries("write", &tmp, || self.backend.write(&tmp, &rendered))?;
        // Re-peek before publishing: if a valid document landed while
        // we rendered and wrote the temp file, it wins — renaming over
        // it would be harmless (same bytes) but the count should say
        // who actually published.
        if let Incumbent::Valid = self.peek(key, &path) {
            let _ = self.backend.remove_file(&tmp);
            self.races_lost.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        self.with_retries("rename", &path, || self.backend.rename(&tmp, &path))?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.evict();
        Ok(true)
    }
}

/// Whether a directory entry looks like a live result document:
/// `<32-hex>.json`. Quarantine slots and temp files do not match.
fn is_document_name(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    let Some(stem) = name.strip_suffix(".json") else {
        return false;
    };
    stem.len() == 32 && stem.bytes().all(|b| b.is_ascii_hexdigit())
}

impl ResultStore {
    /// A store whose memory tier holds at most `capacity` responses,
    /// optionally backed by `<disk_root>/optimize/` on the real
    /// filesystem with the default failure policy.
    pub fn new(capacity: usize, disk_root: Option<PathBuf>) -> ResultStore {
        ResultStore::with_backend(
            capacity,
            disk_root,
            Arc::new(OsBackend),
            DiskOptions::default(),
        )
    }

    /// A store with an explicit storage backend and failure policy —
    /// the constructor fault-injection tests use, and the one
    /// [`crate::serve`] builds from its config.
    ///
    /// If the disk directory cannot be created even with retries, the
    /// tier starts [`DiskHealth::Degraded`] (memory-only) rather than
    /// failing construction.
    pub fn with_backend(
        capacity: usize,
        disk_root: Option<PathBuf>,
        backend: Arc<dyn StoreBackend>,
        options: DiskOptions,
    ) -> ResultStore {
        let disk = disk_root.map(|root| {
            let tier = DiskTier {
                dir: root.join(STORE_NAMESPACE),
                backend,
                options,
                degraded: AtomicBool::new(false),
                hits: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                quarantined: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
                races_lost: AtomicU64::new(0),
            };
            match tier.with_retries("create-dir", &tier.dir, || {
                tier.backend.create_dir_all(&tier.dir)
            }) {
                Ok(()) => tier.sweep_temps(),
                Err(_) => tier.degrade(),
            }
            Arc::new(tier)
        });
        ResultStore {
            memory: KeyedCache::with_capacity(capacity),
            disk,
        }
    }

    /// The on-disk path a key persists to, if a disk tier is attached.
    pub fn path_for(&self, key: CacheKey) -> Option<PathBuf> {
        self.disk.as_deref().map(|tier| tier.path_for(key))
    }

    /// Current health of the disk tier.
    pub fn disk_health(&self) -> DiskHealth {
        match self.disk.as_deref() {
            None => DiskHealth::Disabled,
            Some(tier) if tier.is_degraded() => DiskHealth::Degraded,
            Some(_) => DiskHealth::Healthy,
        }
    }

    /// Looks `key` up, memory tier first, then disk. A disk hit is
    /// decoded, promoted into memory, and counted.
    ///
    /// A corrupt document is quarantined and reported as a miss so the
    /// caller recomputes; a disk that keeps failing degrades the tier
    /// to memory-only (also a miss).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Transient`] when the disk keeps failing past the
    /// retry budget and [`DiskOptions::degrade_on_failure`] is off.
    pub fn get(
        &self,
        key: CacheKey,
    ) -> Result<Option<(Arc<OptimizeResponse>, ResultSource)>, ServiceError> {
        if let Some(hit) = self.memory.get(&key) {
            return Ok(Some((hit, ResultSource::MemoryCache)));
        }
        let Some(tier) = self.disk.as_deref() else {
            return Ok(None);
        };
        if tier.is_degraded() {
            return Ok(None);
        }
        let path = tier.path_for(key);
        if !tier.backend.exists(&path) {
            return Ok(None);
        }
        let text = match tier.with_retries("read", &path, || tier.backend.read_to_string(&path)) {
            Ok(text) => text,
            Err(e) => {
                if tier.options.degrade_on_failure {
                    tier.degrade();
                    return Ok(None);
                }
                return Err(e);
            }
        };
        match tier.decode(&text, key, &path) {
            Ok(response) => {
                let response = Arc::new(response);
                self.memory.insert(key, Arc::clone(&response));
                tier.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some((response, ResultSource::DiskCache)))
            }
            Err(_) => {
                // Corrupt document: move it aside and report a miss so
                // the caller recomputes and rewrites a clean one.
                tier.quarantine(key, &path)?;
                Ok(None)
            }
        }
    }

    /// Stores `response` under `key` in both tiers: disk first (through
    /// the compare-and-swap path), then memory.
    ///
    /// A disk that keeps failing degrades the tier to memory-only; the
    /// memory insert still happens, so the caller's answer is cached
    /// either way.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Transient`] when the disk keeps failing past the
    /// retry budget and [`DiskOptions::degrade_on_failure`] is off.
    pub fn put(&self, key: CacheKey, response: Arc<OptimizeResponse>) -> Result<(), ServiceError> {
        if let Some(tier) = self.disk.as_deref() {
            if !tier.is_degraded() {
                match tier.persist(key, &response) {
                    Ok(_) => {}
                    Err(e) => {
                        if !tier.options.degrade_on_failure {
                            return Err(e);
                        }
                        tier.degrade();
                    }
                }
            }
        }
        self.memory.insert(key, response);
        Ok(())
    }

    /// Counter snapshot across both tiers.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            memory: self.memory.stats(),
            disk_health: self.disk_health(),
            ..StoreStats::default()
        };
        if let Some(tier) = self.disk.as_deref() {
            stats.disk_hits = tier.hits.load(Ordering::Relaxed);
            stats.disk_writes = tier.writes.load(Ordering::Relaxed);
            stats.disk_retries = tier.retries.load(Ordering::Relaxed);
            stats.quarantined = tier.quarantined.load(Ordering::Relaxed);
            stats.evicted = tier.evicted.load(Ordering::Relaxed);
            stats.write_races_lost = tier.races_lost.load(Ordering::Relaxed);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_names_are_strict() {
        assert!(is_document_name(Path::new(
            "/x/0123456789abcdef0123456789abcdef.json"
        )));
        assert!(!is_document_name(Path::new(
            "/x/0123456789abcdef0123456789abcdef.quarantine.1"
        )));
        assert!(!is_document_name(Path::new(
            "/x/.0123456789abcdef0123456789abcdef.tmp-42"
        )));
        assert!(!is_document_name(Path::new("/x/short.json")));
        assert!(!is_document_name(Path::new(
            "/x/zzzz56789abcdef0123456789abcdef0.json"
        )));
    }
}
