//! Two-tier persistent result store: in-memory LRU over an on-disk
//! JSON layer.
//!
//! Results are keyed by [`CacheKey`] — the stable content hash of the
//! request plus the resolved flow configuration — so a key computed in
//! one process finds a result written by another. The memory tier is a
//! [`KeyedCache`]; the optional disk tier stores one rendered document
//! per key at `<root>/optimize/<hex-key>.json`, written atomically
//! (temp file + rename) so a crashed writer never leaves a torn
//! document for a later reader to choke on. Disk hits are promoted
//! into the memory tier on the way out.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use postplace::{CacheKey, CacheStats, KeyedCache, OptimizeResponse};

use crate::json::Json;
use crate::wire::{response_from_json, response_to_json, WIRE_SCHEMA};
use crate::ServiceError;

/// Directory under the disk root that namespaces this store's files;
/// other stores (future stores of different document kinds) get their
/// own namespace beside it.
pub const STORE_NAMESPACE: &str = "optimize";

/// Where an answered request's result actually came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultSource {
    /// Nothing cached; a worker ran the optimization.
    ColdSolve,
    /// Served from the in-memory tier.
    MemoryCache,
    /// Served from the on-disk tier (and promoted to memory).
    DiskCache,
}

impl std::fmt::Display for ResultSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResultSource::ColdSolve => "cold-solve",
            ResultSource::MemoryCache => "memory-cache",
            ResultSource::DiskCache => "disk-cache",
        })
    }
}

/// Counter snapshot of a [`ResultStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Memory-tier counters (hits/misses/evictions/inserts).
    pub memory: CacheStats,
    /// Lookups answered by the disk tier.
    pub disk_hits: u64,
    /// Documents written to the disk tier.
    pub disk_writes: u64,
}

/// The two-tier store. Cloning is cheap and shares the memory tier.
#[derive(Clone)]
pub struct ResultStore {
    memory: KeyedCache<CacheKey, OptimizeResponse>,
    disk: Option<Arc<PathBuf>>,
    disk_hits: Arc<AtomicU64>,
    disk_writes: Arc<AtomicU64>,
}

fn io_err(path: &Path, e: std::io::Error) -> ServiceError {
    ServiceError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

impl ResultStore {
    /// A store whose memory tier holds at most `capacity` responses,
    /// optionally backed by `<disk_root>/optimize/`.
    pub fn new(capacity: usize, disk_root: Option<PathBuf>) -> ResultStore {
        ResultStore {
            memory: KeyedCache::with_capacity(capacity),
            disk: disk_root.map(|root| Arc::new(root.join(STORE_NAMESPACE))),
            disk_hits: Arc::new(AtomicU64::new(0)),
            disk_writes: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The on-disk path a key persists to, if a disk tier is attached.
    pub fn path_for(&self, key: CacheKey) -> Option<PathBuf> {
        self.disk
            .as_deref()
            .map(|dir| dir.join(format!("{}.json", key.to_hex())))
    }

    /// Looks `key` up, memory tier first, then disk. A disk hit is
    /// decoded, promoted into memory, and counted.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if the persisted file exists but cannot be
    /// read, [`ServiceError::Codec`] if it does not decode — a corrupt
    /// cache entry fails loudly rather than masquerading as a miss.
    pub fn get(
        &self,
        key: CacheKey,
    ) -> Result<Option<(Arc<OptimizeResponse>, ResultSource)>, ServiceError> {
        if let Some(hit) = self.memory.get(&key) {
            return Ok(Some((hit, ResultSource::MemoryCache)));
        }
        let Some(path) = self.path_for(key) else {
            return Ok(None);
        };
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        let doc = Json::parse(&text).map_err(|detail| ServiceError::Codec {
            detail: format!("{}: {detail}", path.display()),
        })?;
        let schema = doc.get("schema").and_then(Json::as_f64);
        if schema != Some(WIRE_SCHEMA) {
            return Err(ServiceError::Codec {
                detail: format!(
                    "{}: schema {schema:?} does not match wire schema {WIRE_SCHEMA}",
                    path.display()
                ),
            });
        }
        // The file is named by the *content* key (resolved physics +
        // goal); the response's own `key` field is the cheaper request
        // fingerprint, so integrity is checked against the envelope's
        // content_key instead.
        let named = doc.get("content_key").and_then(Json::as_str);
        if named != Some(key.to_hex().as_str()) {
            return Err(ServiceError::Codec {
                detail: format!(
                    "{}: document says content key {named:?} but file is named {key}",
                    path.display()
                ),
            });
        }
        let response = doc
            .get("response")
            .ok_or_else(|| ServiceError::Codec {
                detail: format!("{}: missing key `response`", path.display()),
            })
            .and_then(response_from_json)?;
        let response = Arc::new(response);
        self.memory.insert(key, Arc::clone(&response));
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        Ok(Some((response, ResultSource::DiskCache)))
    }

    /// Stores `response` under `key` in both tiers. The disk write goes
    /// through a temp file and an atomic rename.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if the disk tier cannot be written.
    pub fn put(&self, key: CacheKey, response: Arc<OptimizeResponse>) -> Result<(), ServiceError> {
        if let Some(path) = self.path_for(key) {
            let dir = path.parent().unwrap_or_else(|| Path::new("."));
            fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
            let document = Json::obj([
                ("schema", Json::Num(WIRE_SCHEMA)),
                ("content_key", Json::Str(key.to_hex())),
                ("response", response_to_json(&response)),
            ]);
            // Unique temp name per process+key: concurrent writers of
            // the same key race only at the rename, which is atomic.
            let tmp = dir.join(format!(".{}.tmp-{}", key.to_hex(), std::process::id()));
            fs::write(&tmp, document.render()).map_err(|e| io_err(&tmp, e))?;
            fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
            self.disk_writes.fetch_add(1, Ordering::Relaxed);
        }
        self.memory.insert(key, response);
        Ok(())
    }

    /// Counter snapshot across both tiers.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            memory: self.memory.stats(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
        }
    }
}
