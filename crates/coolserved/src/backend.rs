//! The injectable storage/clock seam of the disk tier.
//!
//! Production code never touches `std::fs` or the wall clock directly:
//! every disk-tier operation and every time read routes through a
//! [`StoreBackend`], so the fault-injection harness
//! ([`crate::fault::FaultPlan`]) can fail the Nth write, corrupt a
//! read, or stretch the clock *deterministically* — each recovery path
//! in the service is pinned by a scheduled test, not hoped at.
//!
//! [`OsBackend`] is the real implementation; it is stateless and what
//! [`crate::ServiceConfig`] uses unless a test installs a plan.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, UNIX_EPOCH};

/// Everything the disk tier needs from the outside world: file I/O and
/// time. Object-safe so a service can carry `Arc<dyn StoreBackend>`.
pub trait StoreBackend: Send + Sync {
    /// Reads a whole file as UTF-8 text.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Writes `contents` to `path`, creating or truncating it.
    fn write(&self, path: &Path, contents: &str) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// The files (not directories) directly inside `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Last-modified time of `path`, milliseconds on this backend's
    /// clock (epoch millis for the OS backend).
    fn modified_millis(&self, path: &Path) -> io::Result<u64>;
    /// The current time in milliseconds on this backend's clock. Only
    /// *differences* are meaningful — deadline and age arithmetic — so
    /// a virtual clock that starts at zero is a valid implementation.
    fn now_millis(&self) -> u64;
    /// Sleeps for `ms` milliseconds (retry backoff). A test backend may
    /// advance its virtual clock instead of blocking.
    fn sleep_ms(&self, ms: u64);
}

/// The real backend: `std::fs` + the system clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsBackend;

impl StoreBackend for OsBackend {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write(&self, path: &Path, contents: &str) -> io::Result<()> {
        std::fs::write(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }

    fn modified_millis(&self, path: &Path) -> io::Result<u64> {
        let modified = std::fs::metadata(path)?.modified()?;
        Ok(modified
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_millis() as u64)
    }

    fn now_millis(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Retry policy for transient disk-tier I/O: up to `max_attempts` tries
/// with capped exponential backoff between them (`base_backoff_ms`,
/// `2·base`, `4·base`, … clamped to `max_backoff_ms`). Backoff sleeps
/// go through [`StoreBackend::sleep_ms`], so fault-injected tests pay
/// no wall-clock time for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included. Zero is clamped to one.
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms initial backoff, 200 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 200,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every failure is final on the first attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
        }
    }

    /// The backoff to sleep after failed attempt `attempt` (zero-based):
    /// `base · 2^attempt`, saturating, clamped to the cap.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_backoff_ms
            .saturating_mul(factor)
            .min(self.max_backoff_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_ms: 10,
            max_backoff_ms: 70,
        };
        assert_eq!(policy.backoff_ms(0), 10);
        assert_eq!(policy.backoff_ms(1), 20);
        assert_eq!(policy.backoff_ms(2), 40);
        assert_eq!(policy.backoff_ms(3), 70, "capped");
        assert_eq!(policy.backoff_ms(63), 70, "no overflow at large shifts");
        assert_eq!(policy.backoff_ms(64), 70, "shift wider than u64 saturates");
    }

    #[test]
    fn os_backend_round_trips_files() {
        let dir = std::env::temp_dir().join(format!("coolserved-backend-{}", std::process::id()));
        let backend = OsBackend;
        backend.create_dir_all(&dir).unwrap();
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        backend.write(&a, "hello").unwrap();
        assert!(backend.exists(&a));
        assert!(backend.modified_millis(&a).unwrap() > 0);
        backend.rename(&a, &b).unwrap();
        assert!(!backend.exists(&a));
        assert_eq!(backend.read_to_string(&b).unwrap(), "hello");
        assert_eq!(backend.list_dir(&dir).unwrap(), vec![b.clone()]);
        backend.remove_file(&b).unwrap();
        assert!(backend.list_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
