//! Deterministic fault injection for the disk tier: a [`StoreBackend`]
//! that wraps the real filesystem and fails *by schedule*.
//!
//! A [`FaultPlan`] carries a list of [`FaultRule`]s, each naming an
//! operation kind, the occurrence window it covers (fail the Nth write,
//! an EIO burst over reads 2–5, …) and what goes wrong
//! ([`FaultKind`]): a plain error, a torn write (a truncated document
//! reported as fully written), a corrupted read, a virtual-clock jump
//! (`Slow` — how deadline hits are produced without wall-clock sleeps),
//! or a real stall (`Stall` — how tests force two workers to overlap).
//!
//! Time on this backend is **virtual**: it starts at zero, advances by
//! one millisecond per backend operation (so modification times are
//! totally ordered), and jumps only on `Slow` faults, retry backoff
//! sleeps, and explicit [`FaultPlan::advance_clock_ms`] calls. Every
//! recovery path the service claims to have is therefore exercised by a
//! test whose outcome is a pure function of the schedule.
//!
//! The plan is a test harness, but it ships compiled in (not
//! `#[cfg(test)]`) so integration suites, downstream crates, and chaos
//! drills against a staging service can all drive the same seam.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::backend::{OsBackend, StoreBackend};

/// The operation class a [`FaultRule`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// [`StoreBackend::read_to_string`]
    Read,
    /// [`StoreBackend::write`]
    Write,
    /// [`StoreBackend::rename`]
    Rename,
    /// [`StoreBackend::create_dir_all`]
    CreateDir,
    /// [`StoreBackend::remove_file`]
    Remove,
    /// [`StoreBackend::list_dir`]
    List,
}

impl FaultOp {
    fn name(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Rename => "rename",
            FaultOp::CreateDir => "create-dir",
            FaultOp::Remove => "remove",
            FaultOp::List => "list",
        }
    }
}

/// What a firing rule does to the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an injected I/O error (an EIO stand-in).
    Error,
    /// A torn write: only the first `keep_bytes` bytes reach the file,
    /// but the call reports success — the on-disk document is truncated
    /// without anyone noticing until read time.
    Torn {
        /// Bytes actually written (clamped to a UTF-8 boundary).
        keep_bytes: usize,
    },
    /// A corrupted read: the file's real content comes back garbled.
    Corrupt,
    /// The operation succeeds but the virtual clock jumps forward first
    /// — a slow disk, as seen by deadline arithmetic, at zero test cost.
    Slow {
        /// Virtual milliseconds the operation appears to take.
        advance_ms: u64,
    },
    /// The operation succeeds after a *real* sleep — used by tests that
    /// need two workers to demonstrably overlap in wall-clock time.
    Stall {
        /// Real milliseconds to block the calling thread.
        sleep_ms: u64,
    },
}

/// One scheduled fault: `kind` applied to occurrences
/// `[from_nth, from_nth + count)` of `op`, counting from 1.
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// Which operation class to intercept.
    pub op: FaultOp,
    /// What goes wrong.
    pub kind: FaultKind,
    /// First occurrence (1-based) the rule covers.
    pub from_nth: u64,
    /// How many consecutive occurrences it covers.
    pub count: u64,
}

impl FaultRule {
    fn covers(&self, nth: u64) -> bool {
        nth >= self.from_nth && nth < self.from_nth.saturating_add(self.count)
    }
}

/// The fault-injecting backend. Build one with the `with_*` schedule
/// methods, wrap it in an `Arc`, and hand it to
/// [`crate::ServiceConfig::backend`] (keep a second `Arc` to inspect
/// [`FaultPlan::fired`] afterwards).
pub struct FaultPlan {
    inner: OsBackend,
    rules: Vec<FaultRule>,
    counts: Mutex<HashMap<FaultOp, u64>>,
    clock_ms: AtomicU64,
    mtimes: Mutex<HashMap<PathBuf, u64>>,
    fired: Mutex<Vec<String>>,
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// A plan with no faults scheduled (a deterministic-clock backend).
    pub fn new() -> FaultPlan {
        FaultPlan {
            inner: OsBackend,
            rules: Vec::new(),
            counts: Mutex::new(HashMap::new()),
            clock_ms: AtomicU64::new(0),
            mtimes: Mutex::new(HashMap::new()),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// Adds one rule to the schedule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Fails the `nth` occurrence of `op` (1-based) with an I/O error.
    pub fn with_fail(self, op: FaultOp, nth: u64) -> Self {
        self.with_burst(op, nth, 1)
    }

    /// Fails occurrences `[from_nth, from_nth + count)` of `op` — an
    /// EIO burst.
    pub fn with_burst(self, op: FaultOp, from_nth: u64, count: u64) -> Self {
        self.with_rule(FaultRule {
            op,
            kind: FaultKind::Error,
            from_nth,
            count,
        })
    }

    /// Tears the `nth` write: only `keep_bytes` bytes land, success is
    /// reported.
    pub fn with_torn_write(self, nth: u64, keep_bytes: usize) -> Self {
        self.with_rule(FaultRule {
            op: FaultOp::Write,
            kind: FaultKind::Torn { keep_bytes },
            from_nth: nth,
            count: 1,
        })
    }

    /// Corrupts the text returned by the `nth` read.
    pub fn with_corrupt_read(self, nth: u64) -> Self {
        self.with_rule(FaultRule {
            op: FaultOp::Read,
            kind: FaultKind::Corrupt,
            from_nth: nth,
            count: 1,
        })
    }

    /// Makes the `nth` occurrence of `op` appear to take `advance_ms`
    /// virtual milliseconds.
    pub fn with_slow(self, op: FaultOp, nth: u64, advance_ms: u64) -> Self {
        self.with_rule(FaultRule {
            op,
            kind: FaultKind::Slow { advance_ms },
            from_nth: nth,
            count: 1,
        })
    }

    /// Blocks the `nth` occurrence of `op` for `sleep_ms` *real*
    /// milliseconds (still succeeding).
    pub fn with_stall(self, op: FaultOp, nth: u64, sleep_ms: u64) -> Self {
        self.with_rule(FaultRule {
            op,
            kind: FaultKind::Stall { sleep_ms },
            from_nth: nth,
            count: 1,
        })
    }

    /// Jumps the virtual clock forward — how tests age documents for
    /// TTL eviction without waiting.
    pub fn advance_clock_ms(&self, ms: u64) {
        self.clock_ms.fetch_add(ms, Ordering::Relaxed);
    }

    /// Every fault that actually fired, in order, as `"op#N: kind"`
    /// strings — lets a test assert its schedule was exercised rather
    /// than silently skipped.
    pub fn fired(&self) -> Vec<String> {
        unpoison(self.fired.lock()).clone()
    }

    /// How many operations of class `op` the plan has seen.
    pub fn ops_seen(&self, op: FaultOp) -> u64 {
        unpoison(self.counts.lock()).get(&op).copied().unwrap_or(0)
    }

    /// Counts the occurrence, advances the per-op virtual tick, and
    /// returns the rule (if any) covering this occurrence.
    fn arm(&self, op: FaultOp) -> Option<FaultRule> {
        // Every operation costs one virtual millisecond, so write times
        // are totally ordered even when no fault is scheduled.
        self.clock_ms.fetch_add(1, Ordering::Relaxed);
        let nth = {
            let mut counts = unpoison(self.counts.lock());
            let slot = counts.entry(op).or_insert(0);
            *slot += 1;
            *slot
        };
        let rule = self
            .rules
            .iter()
            .find(|r| r.op == op && r.covers(nth))
            .copied();
        if let Some(rule) = rule {
            unpoison(self.fired.lock()).push(format!("{}#{nth}: {:?}", op.name(), rule.kind));
        }
        rule
    }

    fn injected_error(op: FaultOp) -> io::Error {
        io::Error::other(format!("injected fault: {} failed", op.name()))
    }

    fn stamp_mtime(&self, path: &Path) {
        let now = self.clock_ms.load(Ordering::Relaxed);
        unpoison(self.mtimes.lock()).insert(path.to_path_buf(), now);
    }
}

/// Deterministically garbles text so it no longer parses as JSON but
/// stays valid UTF-8 and recognizably "the same file gone bad".
fn garble(text: &str) -> String {
    let keep = text.len() / 2;
    let mut cut = keep.min(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}\u{fffd}#CORRUPT#", &text[..cut])
}

/// Truncates to at most `keep` bytes on a UTF-8 boundary.
fn torn_prefix(text: &str, keep: usize) -> &str {
    let mut cut = keep.min(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    &text[..cut]
}

impl StoreBackend for FaultPlan {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        match self.arm(FaultOp::Read) {
            Some(FaultRule {
                kind: FaultKind::Error,
                ..
            }) => Err(Self::injected_error(FaultOp::Read)),
            Some(FaultRule {
                kind: FaultKind::Corrupt,
                ..
            }) => Ok(garble(&self.inner.read_to_string(path)?)),
            Some(FaultRule {
                kind: FaultKind::Slow { advance_ms },
                ..
            }) => {
                self.advance_clock_ms(advance_ms);
                self.inner.read_to_string(path)
            }
            Some(FaultRule {
                kind: FaultKind::Stall { sleep_ms },
                ..
            }) => {
                self.inner.sleep_ms(sleep_ms);
                self.inner.read_to_string(path)
            }
            Some(FaultRule {
                kind: FaultKind::Torn { .. },
                ..
            })
            | None => self.inner.read_to_string(path),
        }
    }

    fn write(&self, path: &Path, contents: &str) -> io::Result<()> {
        let rule = self.arm(FaultOp::Write);
        match rule {
            Some(FaultRule {
                kind: FaultKind::Error,
                ..
            }) => return Err(Self::injected_error(FaultOp::Write)),
            Some(FaultRule {
                kind: FaultKind::Torn { keep_bytes },
                ..
            }) => {
                // The lie at the heart of a torn write: partial bytes
                // land, success is reported.
                self.inner.write(path, torn_prefix(contents, keep_bytes))?;
                self.stamp_mtime(path);
                return Ok(());
            }
            Some(FaultRule {
                kind: FaultKind::Slow { advance_ms },
                ..
            }) => self.advance_clock_ms(advance_ms),
            Some(FaultRule {
                kind: FaultKind::Stall { sleep_ms },
                ..
            }) => self.inner.sleep_ms(sleep_ms),
            Some(FaultRule {
                kind: FaultKind::Corrupt,
                ..
            })
            | None => {}
        }
        self.inner.write(path, contents)?;
        self.stamp_mtime(path);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.arm(FaultOp::Rename) {
            Some(FaultRule {
                kind: FaultKind::Error,
                ..
            }) => return Err(Self::injected_error(FaultOp::Rename)),
            Some(FaultRule {
                kind: FaultKind::Slow { advance_ms },
                ..
            }) => self.advance_clock_ms(advance_ms),
            Some(FaultRule {
                kind: FaultKind::Stall { sleep_ms },
                ..
            }) => self.inner.sleep_ms(sleep_ms),
            _ => {}
        }
        self.inner.rename(from, to)?;
        let mut mtimes = unpoison(self.mtimes.lock());
        let stamp = mtimes
            .remove(from)
            .unwrap_or_else(|| self.clock_ms.load(Ordering::Relaxed));
        mtimes.insert(to.to_path_buf(), stamp);
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.arm(FaultOp::CreateDir) {
            Some(FaultRule {
                kind: FaultKind::Error,
                ..
            }) => Err(Self::injected_error(FaultOp::CreateDir)),
            _ => self.inner.create_dir_all(dir),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.arm(FaultOp::Remove) {
            Some(FaultRule {
                kind: FaultKind::Error,
                ..
            }) => Err(Self::injected_error(FaultOp::Remove)),
            _ => {
                self.inner.remove_file(path)?;
                unpoison(self.mtimes.lock()).remove(path);
                Ok(())
            }
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.arm(FaultOp::List) {
            Some(FaultRule {
                kind: FaultKind::Error,
                ..
            }) => Err(Self::injected_error(FaultOp::List)),
            _ => self.inner.list_dir(dir),
        }
    }

    fn modified_millis(&self, path: &Path) -> io::Result<u64> {
        if !self.inner.exists(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}: no such file", path.display()),
            ));
        }
        // Files this plan never wrote (pre-existing documents) read as
        // time zero: infinitely old on the virtual clock.
        Ok(unpoison(self.mtimes.lock()).get(path).copied().unwrap_or(0))
    }

    fn now_millis(&self) -> u64 {
        self.clock_ms.load(Ordering::Relaxed)
    }

    fn sleep_ms(&self, ms: u64) {
        // Retry backoff costs virtual time only — a fault-matrix run
        // with hundreds of scheduled retries still finishes instantly.
        self.advance_clock_ms(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("coolserved-fault-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn rules_fire_on_schedule_and_are_logged() {
        let dir = scratch("schedule");
        let plan = FaultPlan::new()
            .with_fail(FaultOp::Write, 2)
            .with_corrupt_read(1);
        let path = dir.join("doc.json");
        plan.write(&path, "{\"a\": 1}").unwrap();
        assert!(plan.write(&path, "again").is_err(), "2nd write must fail");
        plan.write(&path, "{\"a\": 1}").unwrap();
        let garbled = plan.read_to_string(&path).unwrap();
        assert!(garbled.contains("#CORRUPT#"));
        assert_eq!(plan.read_to_string(&path).unwrap(), "{\"a\": 1}");
        assert_eq!(plan.ops_seen(FaultOp::Write), 3);
        assert_eq!(plan.ops_seen(FaultOp::Read), 2);
        assert_eq!(plan.fired().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_writes_truncate_but_report_success() {
        let dir = scratch("torn");
        let plan = FaultPlan::new().with_torn_write(1, 4);
        let path = dir.join("doc.json");
        plan.write(&path, "0123456789").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "0123");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn the_clock_is_virtual_and_ordered_by_ops() {
        let dir = scratch("clock");
        let plan = FaultPlan::new().with_slow(FaultOp::Read, 1, 500);
        let a = dir.join("a");
        let b = dir.join("b");
        plan.write(&a, "x").unwrap();
        plan.write(&b, "y").unwrap();
        let (ta, tb) = (
            plan.modified_millis(&a).unwrap(),
            plan.modified_millis(&b).unwrap(),
        );
        assert!(ta < tb, "write order must order mtimes ({ta} vs {tb})");
        let before = plan.now_millis();
        plan.read_to_string(&a).unwrap();
        assert!(
            plan.now_millis() >= before + 500,
            "slow read must advance the clock"
        );
        plan.sleep_ms(250);
        assert!(plan.now_millis() >= before + 750, "backoff is virtual too");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garble_never_panics_on_multibyte_text() {
        for text in ["", "é", "héllo wörld", "{\"k\": \"véry lóng téxt\"}"] {
            let bad = garble(text);
            assert!(bad.contains("#CORRUPT#"));
        }
        assert_eq!(torn_prefix("héllo", 3), "h\u{e9}");
    }
}
