//! The optimization service: a job queue in front of a scoped worker
//! pool, answering from the two-tier [`ResultStore`].
//!
//! [`serve`] owns the whole lifecycle: it builds the shared state,
//! spawns `workers` threads inside a [`std::thread::scope`], hands the
//! client closure a [`ServiceHandle`], and on closure return flips the
//! shutdown flag. Workers **drain the queue before exiting**, so every
//! job submitted before the closure returned has a terminal state by
//! the time `serve` does — the scope join is the completion barrier.
//!
//! Flows are expensive to build (netlist synthesis, placement, thermal
//! factorization), so workers share one [`Flow`] per distinct resolved
//! configuration through a keyed cache; requests that only differ in
//! goal reuse the same primed flow.
//!
//! Robustness behaviors layered on the basic loop:
//!
//! - **Single-flight dedup** — concurrent submissions resolving to the
//!   same content key share one solve: the first worker to claim the
//!   key leads, the rest wait and re-read the store when it publishes
//!   (counted in [`ServiceStats::dedup_hits`]).
//! - **Deadlines** — a request carrying `deadline_ms` is checked at
//!   tier boundaries (dequeue, flow built, store miss, before the cold
//!   solve) against the backend clock, measured from submission; a blown
//!   budget fails the job with a typed [`ServiceError::Timeout`]. A
//!   cache *hit* is returned even past the deadline — the answer is
//!   already in hand.
//! - **Backpressure** — [`ServiceHandle::try_submit`] bounds the queue
//!   ([`ServiceConfig::queue_limit`]) and rejects with a typed,
//!   retryable [`ServiceError::Unavailable`] when it is full.
//! - **Structured failures** — a failed job's [`ErrorClass`] crosses
//!   the job table intact, so [`ServiceHandle::wait`] callers can ask
//!   [`ServiceError::is_retryable`] instead of parsing a message.
//!
//! All disk I/O and time reads route through the
//! [`StoreBackend`](crate::backend::StoreBackend) seam on
//! [`ServiceConfig::backend`], so the fault-injection tests drive every
//! one of these paths deterministically.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use postplace::{
    config_fingerprint, CacheKey, CacheStats, Flow, FlowConfig, JobId, OptimizeRequest,
};

use crate::backend::{OsBackend, RetryPolicy, StoreBackend};
use crate::error::ErrorClass;
use crate::store::{DiskOptions, ResultSource, ResultStore, StoreStats};
use crate::ServiceError;

/// Configuration of one [`serve`] run.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Base flow configuration; each request's workload and mesh are
    /// resolved on top of it.
    pub base: FlowConfig,
    /// Worker threads. Zero is clamped to one.
    pub workers: usize,
    /// Capacity of the in-memory result tier.
    pub cache_capacity: usize,
    /// Root of the on-disk result tier; `None` disables persistence.
    pub disk_root: Option<PathBuf>,
    /// Solver threads per job. Zero means auto: divide the machine's
    /// available parallelism across the worker pool,
    /// `max(1, available_parallelism / workers)`, so workers × solver
    /// threads never oversubscribes the host. The resolved value is
    /// written into the base configuration before serving; a request
    /// carrying its own `solver_threads` still overrides it. Thread
    /// count is a latency knob only — answers are bit-identical at any
    /// setting, so cached results stay valid across it.
    pub solver_threads: usize,
    /// Linear-solver backend for every job's thermal solves; `None`
    /// (the default) keeps the base configuration's solver — normally
    /// [`postplace::SolverKind::Auto`], which takes the spectral (DCT)
    /// direct tier whenever the stack qualifies. The resolved value is
    /// written into the base configuration before serving; a request
    /// carrying its own `solver` still overrides it. Unlike
    /// `solver_threads`, the backend is part of each request's cache
    /// key when explicitly set on the request — the backends agree
    /// only to solver tolerance, not bit-for-bit.
    pub solver: Option<postplace::SolverKind>,
    /// Retry policy for transient disk-tier I/O.
    pub retry: RetryPolicy,
    /// Most documents kept on disk (oldest evicted past the bound);
    /// `None` (the default) keeps everything.
    pub disk_max_documents: Option<usize>,
    /// Oldest a disk document may grow, in milliseconds on the backend
    /// clock, before eviction; `None` (the default) keeps forever.
    pub disk_max_age_ms: Option<u64>,
    /// Most jobs allowed to sit in the queue before
    /// [`ServiceHandle::try_submit`] rejects with
    /// [`ServiceError::Unavailable`]; `None` (the default) is
    /// unbounded. Plain [`ServiceHandle::submit`] ignores the limit.
    pub queue_limit: Option<usize>,
    /// The storage/clock backend the disk tier and deadline checks run
    /// through. Defaults to the real filesystem and clock
    /// ([`OsBackend`]); tests install a
    /// [`FaultPlan`](crate::fault::FaultPlan) here.
    pub backend: Arc<dyn StoreBackend>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("workers", &self.workers)
            .field("cache_capacity", &self.cache_capacity)
            .field("disk_root", &self.disk_root)
            .field("solver_threads", &self.solver_threads)
            .field("solver", &self.solver)
            .field("retry", &self.retry)
            .field("disk_max_documents", &self.disk_max_documents)
            .field("disk_max_age_ms", &self.disk_max_age_ms)
            .field("queue_limit", &self.queue_limit)
            .finish_non_exhaustive()
    }
}

impl ServiceConfig {
    /// A service over `base` with two workers, a 256-entry memory
    /// tier, no disk tier, auto solver threading, default retry
    /// policy, and no disk or queue bounds.
    pub fn new(base: FlowConfig) -> ServiceConfig {
        ServiceConfig {
            base,
            workers: 2,
            cache_capacity: 256,
            disk_root: None,
            solver_threads: 0,
            solver: None,
            retry: RetryPolicy::default(),
            disk_max_documents: None,
            disk_max_age_ms: None,
            queue_limit: None,
            backend: Arc::new(OsBackend),
        }
    }

    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the memory-tier capacity.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Attaches a persistent disk tier rooted at `root`.
    pub fn disk_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.disk_root = Some(root.into());
        self
    }

    /// Sets the per-job solver-thread count; zero restores auto mode.
    pub fn solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads;
        self
    }

    /// Sets the linear-solver backend for every job (requests carrying
    /// their own `solver` still override it).
    pub fn solver(mut self, solver: postplace::SolverKind) -> Self {
        self.solver = Some(solver);
        self
    }

    /// Sets the retry policy for transient disk-tier I/O.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Bounds the disk tier to at most `max` documents, oldest-first.
    pub fn disk_max_documents(mut self, max: usize) -> Self {
        self.disk_max_documents = Some(max);
        self
    }

    /// Bounds disk-document age to `max_age_ms` milliseconds.
    pub fn disk_max_age_ms(mut self, max_age_ms: u64) -> Self {
        self.disk_max_age_ms = Some(max_age_ms);
        self
    }

    /// Bounds the job queue for [`ServiceHandle::try_submit`].
    pub fn queue_limit(mut self, limit: usize) -> Self {
        self.queue_limit = Some(limit);
        self
    }

    /// Installs a storage/clock backend (fault injection, virtual
    /// time).
    pub fn backend(mut self, backend: Arc<dyn StoreBackend>) -> Self {
        self.backend = backend;
        self
    }
}

/// Lifecycle of a submitted job, as reported by
/// [`ServiceHandle::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet picked up by a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished; [`ServiceHandle::wait`] returns its [`JobRecord`].
    Done,
    /// Failed; [`ServiceHandle::wait`] returns the error.
    Failed,
}

/// The completed-job envelope: the deterministic response plus the
/// per-execution metadata that deliberately lives outside it.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The id [`ServiceHandle::submit`] returned.
    pub id: JobId,
    /// The request this job answered.
    pub request: OptimizeRequest,
    /// The content key the result is cached under.
    pub key: postplace::CacheKey,
    /// The answer; bit-identical whether solved or served from cache.
    pub response: Arc<postplace::OptimizeResponse>,
    /// Where the answer came from.
    pub source: ResultSource,
    /// Wall-clock time from dequeue to terminal state.
    pub wall_ms: f64,
}

enum JobState {
    Queued,
    Running,
    Done(JobRecord),
    // The class travels beside the rendered error so wait() can
    // rebuild a typed, retryability-preserving ServiceError::Job.
    Failed(ErrorClass, String),
}

/// Counter snapshot of a running service.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Jobs accepted by [`ServiceHandle::submit`] /
    /// [`ServiceHandle::try_submit`].
    pub submitted: u64,
    /// Jobs that reached [`JobStatus::Done`].
    pub completed: u64,
    /// Jobs that reached [`JobStatus::Failed`].
    pub failed: u64,
    /// Jobs answered by actually running the optimization.
    pub cold_solves: u64,
    /// Distinct flows built (one per resolved configuration).
    pub flows_built: u64,
    /// Jobs that shared another job's in-flight solve instead of
    /// running their own (single-flight deduplication).
    pub dedup_hits: u64,
    /// Jobs failed on a blown [`OptimizeRequest`] deadline.
    pub timeouts: u64,
    /// Submissions rejected by the queue bound.
    pub rejected: u64,
    /// Result-store counters (memory hits/misses, disk hits/writes,
    /// retries, quarantines, evictions, health).
    pub store: StoreStats,
    /// Flow-cache counters.
    pub flows: CacheStats,
}

struct Shared {
    base: FlowConfig,
    backend: Arc<dyn StoreBackend>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    queue_limit: Option<usize>,
    jobs: Mutex<HashMap<u64, JobState>>,
    jobs_cv: Condvar,
    // Content keys with a solve in flight; the worker that inserts a
    // key leads, everyone else waits on the condvar and re-reads the
    // store when woken.
    inflight: Mutex<HashSet<CacheKey>>,
    inflight_cv: Condvar,
    shutdown: AtomicBool,
    store: ResultStore,
    flows: postplace::KeyedCache<u64, Flow>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cold_solves: AtomicU64,
    flows_built: AtomicU64,
    dedup_hits: AtomicU64,
    timeouts: AtomicU64,
    rejected: AtomicU64,
}

struct QueuedJob {
    id: JobId,
    request: OptimizeRequest,
    /// Backend-clock time the job was accepted; deadlines count from
    /// here, so queue wait burns budget too.
    submitted_at_ms: u64,
}

/// Capacity of the per-service flow cache: flows are large (placed
/// netlist + factorized thermal model), so only a handful of distinct
/// configurations stay resident.
const FLOW_CACHE_CAP: usize = 8;

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Client-side handle to a running service; shared by reference with
/// every thread the client closure spawns.
pub struct ServiceHandle<'a> {
    shared: &'a Shared,
}

impl ServiceHandle<'_> {
    fn enqueue(&self, request: OptimizeRequest, queue: &mut VecDeque<QueuedJob>) -> JobId {
        let id = JobId::new(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        unpoison(self.shared.jobs.lock()).insert(id.value(), JobState::Queued);
        queue.push_back(QueuedJob {
            id,
            request,
            submitted_at_ms: self.shared.backend.now_millis(),
        });
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.queue_cv.notify_one();
        id
    }

    /// Enqueues a request and returns its job id immediately. Never
    /// rejects — the queue bound applies to [`ServiceHandle::try_submit`]
    /// only.
    pub fn submit(&self, request: OptimizeRequest) -> JobId {
        let mut queue = unpoison(self.shared.queue.lock());
        self.enqueue(request, &mut queue)
    }

    /// Enqueues a request, honoring [`ServiceConfig::queue_limit`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::Unavailable`] (retryable backpressure) when the
    /// queue is at its bound.
    pub fn try_submit(&self, request: OptimizeRequest) -> Result<JobId, ServiceError> {
        // The length check and the push happen under one lock, so two
        // racing submitters cannot both squeeze past the bound.
        let mut queue = unpoison(self.shared.queue.lock());
        if let Some(limit) = self.shared.queue_limit {
            if queue.len() >= limit {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Unavailable {
                    detail: format!("job queue is full ({} queued, limit {limit})", queue.len()),
                });
            }
        }
        Ok(self.enqueue(request, &mut queue))
    }

    /// The job's current lifecycle state.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for an id this service never
    /// issued.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServiceError> {
        let jobs = unpoison(self.shared.jobs.lock());
        match jobs.get(&id.value()) {
            Some(JobState::Queued) => Ok(JobStatus::Queued),
            Some(JobState::Running) => Ok(JobStatus::Running),
            Some(JobState::Done(_)) => Ok(JobStatus::Done),
            Some(JobState::Failed(..)) => Ok(JobStatus::Failed),
            None => Err(ServiceError::UnknownJob { id }),
        }
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// record.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for an unissued id;
    /// [`ServiceError::Job`] if the job failed, carrying the worker
    /// error's [`ErrorClass`] beside its rendered form — so
    /// [`ServiceError::is_retryable`] answers correctly for a timeout
    /// or transient fault that crossed the job table.
    pub fn wait(&self, id: JobId) -> Result<JobRecord, ServiceError> {
        let mut jobs = unpoison(self.shared.jobs.lock());
        loop {
            match jobs.get(&id.value()) {
                None => return Err(ServiceError::UnknownJob { id }),
                Some(JobState::Done(record)) => return Ok(record.clone()),
                Some(JobState::Failed(class, detail)) => {
                    return Err(ServiceError::Job {
                        class: *class,
                        detail: detail.clone(),
                    })
                }
                Some(JobState::Queued | JobState::Running) => {
                    jobs = unpoison(self.shared.jobs_cv.wait(jobs));
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            cold_solves: self.shared.cold_solves.load(Ordering::Relaxed),
            flows_built: self.shared.flows_built.load(Ordering::Relaxed),
            dedup_hits: self.shared.dedup_hits.load(Ordering::Relaxed),
            timeouts: self.shared.timeouts.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            store: self.shared.store.stats(),
            flows: self.shared.flows.stats(),
        }
    }
}

/// Fails with a typed [`ServiceError::Timeout`] if the job's budget
/// (counted from submission on the backend clock) is spent. Requests
/// without a deadline always pass.
fn check_deadline(
    shared: &Shared,
    request: &OptimizeRequest,
    submitted_at_ms: u64,
) -> Result<(), ServiceError> {
    let Some(deadline_ms) = request.deadline_ms else {
        return Ok(());
    };
    let elapsed_ms = shared.backend.now_millis().saturating_sub(submitted_at_ms);
    if elapsed_ms > deadline_ms {
        return Err(ServiceError::Timeout {
            elapsed_ms,
            deadline_ms,
        });
    }
    Ok(())
}

fn execute(shared: &Shared, job: &QueuedJob) -> Result<JobRecord, ServiceError> {
    let started = Instant::now();
    let request = &job.request;
    check_deadline(shared, request, job.submitted_at_ms)?;
    let resolved = request.resolve_config(&shared.base);
    // `config_fingerprint` deliberately excludes the thread knob (it
    // cannot change results), but a Flow bakes its thread count into
    // the factorized solver — so flows resolved at different thread
    // counts must not share a cache slot. Mix the normalized count
    // into the flow key; the result-store key is untouched.
    let fingerprint = config_fingerprint(&resolved)
        ^ (resolved.thermal.threads.max(1) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let flow = shared.flows.get_or_compute(fingerprint, || {
        let flow = Flow::new(resolved)?;
        flow.prime_baseline()?;
        shared.flows_built.fetch_add(1, Ordering::Relaxed);
        Ok::<_, ServiceError>(flow)
    })?;
    check_deadline(shared, request, job.submitted_at_ms)?;
    let key = flow.content_key(request)?;
    // Single-flight: a store hit (fresh, or published by the leader we
    // waited on) answers outright — even past the deadline, since the
    // answer is already in hand. A miss makes us the leader if no solve
    // for this key is in flight, otherwise we wait and re-check.
    let (response, source) = loop {
        if let Some(hit) = shared.store.get(key)? {
            break hit;
        }
        check_deadline(shared, request, job.submitted_at_ms)?;
        let mut inflight = unpoison(shared.inflight.lock());
        if inflight.insert(key) {
            drop(inflight);
            let outcome: Result<(Arc<postplace::OptimizeResponse>, ResultSource), ServiceError> =
                (|| {
                    // Double-check under leadership: the previous leader
                    // may have published between our miss and our claim.
                    if let Some(hit) = shared.store.get(key)? {
                        return Ok(hit);
                    }
                    let response = lead_solve(shared, request, job.submitted_at_ms, &flow, key)?;
                    Ok((response, ResultSource::ColdSolve))
                })();
            // Leadership must be released on every path — success,
            // timeout, solver error — or waiting followers hang.
            unpoison(shared.inflight.lock()).remove(&key);
            shared.inflight_cv.notify_all();
            break outcome?;
        }
        shared.dedup_hits.fetch_add(1, Ordering::Relaxed);
        let waited = unpoison(shared.inflight_cv.wait(inflight));
        drop(waited);
        // Re-loop: if the leader published, the store answers; if the
        // leader failed, the store misses again and we take the lead.
    };
    Ok(JobRecord {
        id: job.id,
        request: request.clone(),
        key,
        response,
        source,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}

/// The leader's half of single-flight: run the solve and publish it.
fn lead_solve(
    shared: &Shared,
    request: &OptimizeRequest,
    submitted_at_ms: u64,
    flow: &Flow,
    key: CacheKey,
) -> Result<Arc<postplace::OptimizeResponse>, ServiceError> {
    check_deadline(shared, request, submitted_at_ms)?;
    let response = Arc::new(flow.optimize(request)?);
    shared.store.put(key, Arc::clone(&response))?;
    shared.cold_solves.fetch_add(1, Ordering::Relaxed);
    Ok(response)
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = unpoison(shared.queue.lock());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = unpoison(shared.queue_cv.wait(queue));
            }
        };
        let Some(job) = job else { return };
        unpoison(shared.jobs.lock()).insert(job.id.value(), JobState::Running);
        let state = match execute(shared, &job) {
            Ok(record) => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                JobState::Done(record)
            }
            Err(e) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                if e.class() == ErrorClass::Timeout {
                    shared.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                JobState::Failed(e.class(), e.to_string())
            }
        };
        unpoison(shared.jobs.lock()).insert(job.id.value(), state);
        shared.jobs_cv.notify_all();
    }
}

/// Runs a service for the lifetime of `client`: spawn workers, hand
/// the closure a handle, and on return shut down after the queue
/// drains. Every submitted job has a terminal state when this returns.
pub fn serve<R>(config: ServiceConfig, client: impl FnOnce(&ServiceHandle<'_>) -> R) -> R {
    let workers = config.workers.max(1);
    let solver_threads = if config.solver_threads == 0 {
        // Auto: split the machine across the worker pool so workers ×
        // solver threads never exceeds the hardware.
        let hw = std::thread::available_parallelism()
            .map(|hw| hw.get())
            .unwrap_or(1);
        (hw / workers).max(1)
    } else {
        config.solver_threads
    };
    let mut base = config.base;
    base.thermal.threads = solver_threads;
    if let Some(solver) = config.solver {
        base.thermal.solver = solver;
    }
    let store = ResultStore::with_backend(
        config.cache_capacity.max(1),
        config.disk_root,
        Arc::clone(&config.backend),
        DiskOptions {
            retry: config.retry,
            max_documents: config.disk_max_documents,
            max_age_ms: config.disk_max_age_ms,
            degrade_on_failure: true,
        },
    );
    let shared = Shared {
        base,
        backend: config.backend,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        queue_limit: config.queue_limit,
        jobs: Mutex::new(HashMap::new()),
        jobs_cv: Condvar::new(),
        inflight: Mutex::new(HashSet::new()),
        inflight_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        store,
        flows: postplace::KeyedCache::with_capacity(FLOW_CACHE_CAP),
        next_id: AtomicU64::new(1),
        submitted: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        cold_solves: AtomicU64::new(0),
        flows_built: AtomicU64::new(0),
        dedup_hits: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&shared));
        }
        let handle = ServiceHandle { shared: &shared };
        // The shutdown flag must flip even if the client panics —
        // otherwise the workers idle forever and the scope's implicit
        // join deadlocks instead of propagating the panic.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| client(&handle)));
        shared.shutdown.store(true, Ordering::Release);
        shared.queue_cv.notify_all();
        match out {
            Ok(out) => out,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}
