//! The optimization service: a job queue in front of a scoped worker
//! pool, answering from the two-tier [`ResultStore`].
//!
//! [`serve`] owns the whole lifecycle: it builds the shared state,
//! spawns `workers` threads inside a [`std::thread::scope`], hands the
//! client closure a [`ServiceHandle`], and on closure return flips the
//! shutdown flag. Workers **drain the queue before exiting**, so every
//! job submitted before the closure returned has a terminal state by
//! the time `serve` does — the scope join is the completion barrier.
//!
//! Flows are expensive to build (netlist synthesis, placement, thermal
//! factorization), so workers share one [`Flow`] per distinct resolved
//! configuration through a keyed cache; requests that only differ in
//! goal reuse the same primed flow. Results are keyed by
//! [`Flow::content_key`] and deduplicated by the store; two workers
//! racing on the same key both solve and one overwrites the other with
//! a bit-identical document, which is tolerated rather than locked
//! around.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use postplace::{config_fingerprint, CacheStats, Flow, FlowConfig, JobId, OptimizeRequest};

use crate::store::{ResultSource, ResultStore, StoreStats};
use crate::ServiceError;

/// Configuration of one [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Base flow configuration; each request's workload and mesh are
    /// resolved on top of it.
    pub base: FlowConfig,
    /// Worker threads. Zero is clamped to one.
    pub workers: usize,
    /// Capacity of the in-memory result tier.
    pub cache_capacity: usize,
    /// Root of the on-disk result tier; `None` disables persistence.
    pub disk_root: Option<PathBuf>,
    /// Solver threads per job. Zero means auto: divide the machine's
    /// available parallelism across the worker pool,
    /// `max(1, available_parallelism / workers)`, so workers × solver
    /// threads never oversubscribes the host. The resolved value is
    /// written into the base configuration before serving; a request
    /// carrying its own `solver_threads` still overrides it. Thread
    /// count is a latency knob only — answers are bit-identical at any
    /// setting, so cached results stay valid across it.
    pub solver_threads: usize,
}

impl ServiceConfig {
    /// A service over `base` with two workers, a 256-entry memory
    /// tier, no disk tier, and auto solver threading.
    pub fn new(base: FlowConfig) -> ServiceConfig {
        ServiceConfig {
            base,
            workers: 2,
            cache_capacity: 256,
            disk_root: None,
            solver_threads: 0,
        }
    }

    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the memory-tier capacity.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Attaches a persistent disk tier rooted at `root`.
    pub fn disk_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.disk_root = Some(root.into());
        self
    }

    /// Sets the per-job solver-thread count; zero restores auto mode.
    pub fn solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads;
        self
    }
}

/// Lifecycle of a submitted job, as reported by
/// [`ServiceHandle::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet picked up by a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished; [`ServiceHandle::wait`] returns its [`JobRecord`].
    Done,
    /// Failed; [`ServiceHandle::wait`] returns the error.
    Failed,
}

/// The completed-job envelope: the deterministic response plus the
/// per-execution metadata that deliberately lives outside it.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The id [`ServiceHandle::submit`] returned.
    pub id: JobId,
    /// The request this job answered.
    pub request: OptimizeRequest,
    /// The content key the result is cached under.
    pub key: postplace::CacheKey,
    /// The answer; bit-identical whether solved or served from cache.
    pub response: Arc<postplace::OptimizeResponse>,
    /// Where the answer came from.
    pub source: ResultSource,
    /// Wall-clock time from dequeue to terminal state.
    pub wall_ms: f64,
}

enum JobState {
    Queued,
    Running,
    Done(JobRecord),
    Failed(String),
}

/// Counter snapshot of a running service.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Jobs accepted by [`ServiceHandle::submit`].
    pub submitted: u64,
    /// Jobs that reached [`JobStatus::Done`].
    pub completed: u64,
    /// Jobs that reached [`JobStatus::Failed`].
    pub failed: u64,
    /// Jobs answered by actually running the optimization.
    pub cold_solves: u64,
    /// Distinct flows built (one per resolved configuration).
    pub flows_built: u64,
    /// Result-store counters (memory hits/misses, disk hits/writes).
    pub store: StoreStats,
    /// Flow-cache counters.
    pub flows: CacheStats,
}

struct Shared {
    base: FlowConfig,
    queue: Mutex<VecDeque<(JobId, OptimizeRequest)>>,
    queue_cv: Condvar,
    jobs: Mutex<HashMap<u64, JobState>>,
    jobs_cv: Condvar,
    shutdown: AtomicBool,
    store: ResultStore,
    flows: postplace::KeyedCache<u64, Flow>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cold_solves: AtomicU64,
    flows_built: AtomicU64,
}

/// Capacity of the per-service flow cache: flows are large (placed
/// netlist + factorized thermal model), so only a handful of distinct
/// configurations stay resident.
const FLOW_CACHE_CAP: usize = 8;

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Client-side handle to a running service; shared by reference with
/// every thread the client closure spawns.
pub struct ServiceHandle<'a> {
    shared: &'a Shared,
}

impl ServiceHandle<'_> {
    /// Enqueues a request and returns its job id immediately.
    pub fn submit(&self, request: OptimizeRequest) -> JobId {
        let id = JobId::new(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        unpoison(self.shared.jobs.lock()).insert(id.value(), JobState::Queued);
        unpoison(self.shared.queue.lock()).push_back((id, request));
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.queue_cv.notify_one();
        id
    }

    /// The job's current lifecycle state.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for an id this service never
    /// issued.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServiceError> {
        let jobs = unpoison(self.shared.jobs.lock());
        match jobs.get(&id.value()) {
            Some(JobState::Queued) => Ok(JobStatus::Queued),
            Some(JobState::Running) => Ok(JobStatus::Running),
            Some(JobState::Done(_)) => Ok(JobStatus::Done),
            Some(JobState::Failed(_)) => Ok(JobStatus::Failed),
            None => Err(ServiceError::UnknownJob { id }),
        }
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// record.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for an unissued id;
    /// [`ServiceError::Job`] carrying the worker's rendered error if
    /// the job failed.
    pub fn wait(&self, id: JobId) -> Result<JobRecord, ServiceError> {
        let mut jobs = unpoison(self.shared.jobs.lock());
        loop {
            match jobs.get(&id.value()) {
                None => return Err(ServiceError::UnknownJob { id }),
                Some(JobState::Done(record)) => return Ok(record.clone()),
                Some(JobState::Failed(detail)) => {
                    return Err(ServiceError::Job {
                        detail: detail.clone(),
                    })
                }
                Some(JobState::Queued | JobState::Running) => {
                    jobs = unpoison(self.shared.jobs_cv.wait(jobs));
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            cold_solves: self.shared.cold_solves.load(Ordering::Relaxed),
            flows_built: self.shared.flows_built.load(Ordering::Relaxed),
            store: self.shared.store.stats(),
            flows: self.shared.flows.stats(),
        }
    }
}

fn execute(
    shared: &Shared,
    request: &OptimizeRequest,
    id: JobId,
) -> Result<JobRecord, ServiceError> {
    let started = Instant::now();
    let resolved = request.resolve_config(&shared.base);
    // `config_fingerprint` deliberately excludes the thread knob (it
    // cannot change results), but a Flow bakes its thread count into
    // the factorized solver — so flows resolved at different thread
    // counts must not share a cache slot. Mix the normalized count
    // into the flow key; the result-store key is untouched.
    let fingerprint = config_fingerprint(&resolved)
        ^ (resolved.thermal.threads.max(1) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let flow = shared.flows.get_or_compute(fingerprint, || {
        let flow = Flow::new(resolved)?;
        flow.prime_baseline()?;
        shared.flows_built.fetch_add(1, Ordering::Relaxed);
        Ok::<_, ServiceError>(flow)
    })?;
    let key = flow.content_key(request)?;
    let (response, source) = match shared.store.get(key)? {
        Some((response, source)) => (response, source),
        None => {
            let response = Arc::new(flow.optimize(request)?);
            shared.store.put(key, Arc::clone(&response))?;
            shared.cold_solves.fetch_add(1, Ordering::Relaxed);
            (response, ResultSource::ColdSolve)
        }
    };
    Ok(JobRecord {
        id,
        request: request.clone(),
        key,
        response,
        source,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = unpoison(shared.queue.lock());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = unpoison(shared.queue_cv.wait(queue));
            }
        };
        let Some((id, request)) = job else { return };
        unpoison(shared.jobs.lock()).insert(id.value(), JobState::Running);
        let state = match execute(shared, &request, id) {
            Ok(record) => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                JobState::Done(record)
            }
            Err(e) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                JobState::Failed(e.to_string())
            }
        };
        unpoison(shared.jobs.lock()).insert(id.value(), state);
        shared.jobs_cv.notify_all();
    }
}

/// Runs a service for the lifetime of `client`: spawn workers, hand
/// the closure a handle, and on return shut down after the queue
/// drains. Every submitted job has a terminal state when this returns.
pub fn serve<R>(config: ServiceConfig, client: impl FnOnce(&ServiceHandle<'_>) -> R) -> R {
    let workers = config.workers.max(1);
    let solver_threads = if config.solver_threads == 0 {
        // Auto: split the machine across the worker pool so workers ×
        // solver threads never exceeds the hardware.
        let hw = std::thread::available_parallelism()
            .map(|hw| hw.get())
            .unwrap_or(1);
        (hw / workers).max(1)
    } else {
        config.solver_threads
    };
    let mut base = config.base;
    base.thermal.threads = solver_threads;
    let shared = Shared {
        base,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        jobs: Mutex::new(HashMap::new()),
        jobs_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        store: ResultStore::new(config.cache_capacity.max(1), config.disk_root),
        flows: postplace::KeyedCache::with_capacity(FLOW_CACHE_CAP),
        next_id: AtomicU64::new(1),
        submitted: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        cold_solves: AtomicU64::new(0),
        flows_built: AtomicU64::new(0),
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&shared));
        }
        let handle = ServiceHandle { shared: &shared };
        // The shutdown flag must flip even if the client panics —
        // otherwise the workers idle forever and the scope's implicit
        // join deadlocks instead of propagating the panic.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| client(&handle)));
        shared.shutdown.store(true, Ordering::Release);
        shared.queue_cv.notify_all();
        match out {
            Ok(out) => out,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}
