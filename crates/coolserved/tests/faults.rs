//! Fault-matrix acceptance tests: every scheduled fault in the
//! injection grid must leave the service returning either a
//! bit-identical response to the no-fault run or a typed
//! retryable/timeout error — never a panic, a torn document served, or
//! a duplicate solve for a deduplicated key.
//!
//! The grid runs on [`FaultPlan`], the deterministic fault-injecting
//! [`coolserved::StoreBackend`]: failures fire by schedule, retry
//! backoff costs virtual time only, and deadline hits come from
//! virtual-clock jumps — so every outcome below is a pure function of
//! the schedule, not of machine load.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use coolserved::wire::response_to_json;
use coolserved::{
    serve, DiskHealth, DiskOptions, ErrorClass, FaultOp, FaultPlan, JobRecord, ResultStore,
    RetryPolicy, ServiceConfig, ServiceError, ServiceStats,
};
use postplace::{CacheKey, FlowConfig, OptimizeRequest, OptimizeResponse, Strategy, WorkloadSpec};

fn base() -> FlowConfig {
    FlowConfig::with_workload(WorkloadSpec::clustered_hotspot()).fast()
}

fn request() -> OptimizeRequest {
    OptimizeRequest::builder()
        .workload(WorkloadSpec::clustered_hotspot())
        .mesh(12, 12)
        .strategy(Strategy::UniformSlack {
            area_overhead: 0.12,
        })
        .build()
        .unwrap()
}

/// A scratch directory unique to this test process and label.
fn scratch_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("coolserved-faults-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The no-fault answer, solved once and shared by every case: the
/// response and its canonical byte rendering.
fn baseline() -> &'static (Arc<OptimizeResponse>, String) {
    static BASELINE: OnceLock<(Arc<OptimizeResponse>, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let config = ServiceConfig::new(base()).workers(1);
        let record = serve(config, |service| {
            let id = service.submit(request());
            service.wait(id).unwrap()
        });
        let bytes = response_to_json(&record.response).render();
        (record.response, bytes)
    })
}

fn assert_baseline_bytes(record: &JobRecord) {
    assert_eq!(
        response_to_json(&record.response).render(),
        baseline().1,
        "response must be bit-identical to the no-fault run"
    );
}

/// Runs a one-worker service against `root` through `plan` and returns
/// the job's outcome plus the service counters.
fn run_service(
    root: &Path,
    plan: Arc<FaultPlan>,
    req: OptimizeRequest,
) -> (Result<JobRecord, ServiceError>, ServiceStats) {
    let config = ServiceConfig::new(base())
        .workers(1)
        .disk_root(root)
        .backend(plan);
    serve(config, |service| {
        let id = service.submit(req);
        (service.wait(id), service.stats())
    })
}

/// Seeds `root` with a cleanly persisted document for [`request`] and
/// returns its record (for the key and on-disk path).
fn seed_root(root: &Path) -> JobRecord {
    let config = ServiceConfig::new(base()).workers(1).disk_root(root);
    let record = serve(config, |service| {
        let id = service.submit(request());
        service.wait(id).unwrap()
    });
    assert_baseline_bytes(&record);
    record
}

fn document_path(root: &Path, key: CacheKey) -> PathBuf {
    root.join(coolserved::STORE_NAMESPACE)
        .join(format!("{}.json", key.to_hex()))
}

fn quarantine_path(root: &Path, key: CacheKey, n: u64) -> PathBuf {
    root.join(coolserved::STORE_NAMESPACE)
        .join(format!("{}.quarantine.{n}", key.to_hex()))
}

/// Entries under `<root>/optimize/` whose names contain `fragment`.
fn files_matching(root: &Path, fragment: &str) -> Vec<PathBuf> {
    let dir = root.join(coolserved::STORE_NAMESPACE);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(fragment))
        })
        .collect()
}

#[test]
fn fault_matrix_write_and_rename_faults_keep_answers_bit_identical() {
    struct Case {
        label: &'static str,
        plan: fn() -> FaultPlan,
        expect_health: DiskHealth,
        expect_disk_writes: u64,
    }
    let cases = [
        Case {
            label: "write-fails-once-then-retries",
            plan: || FaultPlan::new().with_fail(FaultOp::Write, 1),
            expect_health: DiskHealth::Healthy,
            expect_disk_writes: 1,
        },
        Case {
            label: "write-burst-exhausts-retries-and-degrades",
            plan: || FaultPlan::new().with_burst(FaultOp::Write, 1, 3),
            expect_health: DiskHealth::Degraded,
            expect_disk_writes: 0,
        },
        Case {
            label: "rename-fails-once-then-retries",
            plan: || FaultPlan::new().with_fail(FaultOp::Rename, 1),
            expect_health: DiskHealth::Healthy,
            expect_disk_writes: 1,
        },
        Case {
            label: "disk-unavailable-at-startup-degrades-to-memory",
            plan: || FaultPlan::new().with_burst(FaultOp::CreateDir, 1, 3),
            expect_health: DiskHealth::Degraded,
            expect_disk_writes: 0,
        },
    ];
    for case in &cases {
        let root = scratch_dir(case.label);
        let plan = Arc::new((case.plan)());
        let (outcome, stats) = run_service(&root, Arc::clone(&plan), request());
        let record = outcome.unwrap_or_else(|e| panic!("{}: job failed: {e}", case.label));
        assert_baseline_bytes(&record);
        assert!(
            !plan.fired().is_empty(),
            "{}: the schedule never fired",
            case.label
        );
        assert_eq!(
            stats.store.disk_health, case.expect_health,
            "{}: wrong disk health",
            case.label
        );
        assert_eq!(
            stats.store.disk_writes, case.expect_disk_writes,
            "{}: wrong write count",
            case.label
        );
        if case.expect_disk_writes > 0 {
            let doc = document_path(&root, record.key);
            assert!(doc.exists(), "{}: no document at {:?}", case.label, doc);
            assert!(
                stats.store.disk_retries >= 1,
                "{}: the retry path never ran",
                case.label
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn corrupt_documents_are_quarantined_and_recomputed() {
    let root = scratch_dir("quarantine");
    let seeded = seed_root(&root);

    // Second service: the (valid) document comes back garbled from the
    // disk. The store must quarantine it and recompute cleanly.
    let plan = Arc::new(FaultPlan::new().with_corrupt_read(1));
    let (outcome, stats) = run_service(&root, Arc::clone(&plan), request());
    let record = outcome.expect("a corrupt document must recompute, not fail");
    assert_baseline_bytes(&record);
    assert_eq!(stats.store.quarantined, 1);
    assert_eq!(stats.cold_solves, 1, "the key must recompute");
    assert_eq!(stats.store.disk_writes, 1, "and rewrite a clean document");
    assert_eq!(stats.store.disk_health, DiskHealth::Healthy);
    let archived = quarantine_path(&root, seeded.key, 1);
    assert!(
        archived.exists(),
        "quarantined bytes must be archived at {archived:?}"
    );
    // The rewritten document is readable again by a clean third run.
    let (outcome, stats) = run_service(&root, Arc::new(FaultPlan::new()), request());
    assert_baseline_bytes(&outcome.unwrap());
    assert_eq!(stats.cold_solves, 0);
    assert_eq!(stats.store.disk_hits, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn eio_bursts_within_the_retry_budget_still_answer_warm() {
    let root = scratch_dir("read-burst-warm");
    seed_root(&root);
    // Two read failures, then success: inside the 3-attempt budget.
    let plan = Arc::new(FaultPlan::new().with_burst(FaultOp::Read, 1, 2));
    let (outcome, stats) = run_service(&root, plan, request());
    assert_baseline_bytes(&outcome.unwrap());
    assert_eq!(stats.cold_solves, 0, "the answer must come from disk");
    assert_eq!(stats.store.disk_hits, 1);
    assert!(stats.store.disk_retries >= 2);
    assert_eq!(stats.store.disk_health, DiskHealth::Healthy);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn eio_bursts_past_the_retry_budget_degrade_and_recompute() {
    let root = scratch_dir("read-burst-degrade");
    seed_root(&root);
    let plan = Arc::new(FaultPlan::new().with_burst(FaultOp::Read, 1, 3));
    let (outcome, stats) = run_service(&root, plan, request());
    assert_baseline_bytes(&outcome.unwrap());
    assert_eq!(stats.cold_solves, 1, "degraded tier means a recompute");
    assert_eq!(stats.store.disk_health, DiskHealth::Degraded);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_crash_between_temp_write_and_rename_never_serves_torn_state() {
    let root = scratch_dir("crash-restart");
    // "Crash" during publish: every rename attempt fails, so the temp
    // file is stranded exactly as a killed process would leave it.
    let plan = Arc::new(FaultPlan::new().with_burst(FaultOp::Rename, 1, 3));
    let (outcome, stats) = run_service(&root, plan, request());
    let record = outcome.expect("a stranded publish must not fail the job");
    assert_baseline_bytes(&record);
    assert_eq!(stats.store.disk_writes, 0);
    assert_eq!(stats.store.disk_health, DiskHealth::Degraded);
    assert!(
        !files_matching(&root, ".tmp-").is_empty(),
        "the crash must leave a temp file behind"
    );
    assert!(!document_path(&root, record.key).exists());

    // Restart against the same root: the sweep clears the debris and
    // the interrupted key recomputes cleanly.
    let (outcome, stats) = run_service(&root, Arc::new(FaultPlan::new()), request());
    let record = outcome.expect("restart must recover");
    assert_baseline_bytes(&record);
    assert_eq!(stats.cold_solves, 1);
    assert_eq!(stats.store.disk_writes, 1);
    assert!(
        files_matching(&root, ".tmp-").is_empty(),
        "restart must sweep stranded temp files"
    );
    assert!(document_path(&root, record.key).exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_torn_write_is_never_served_after_restart() {
    let root = scratch_dir("torn-restart");
    // The write reports success but only 60 bytes land: a torn document
    // gets published. The writing run itself answers from memory.
    let plan = Arc::new(FaultPlan::new().with_torn_write(1, 60));
    let (outcome, _) = run_service(&root, plan, request());
    let record = outcome.expect("the writing run answers from memory");
    assert_baseline_bytes(&record);

    // Restart: the torn bytes must never decode into an answer — they
    // are quarantined and the key recomputes to the same bits.
    let (outcome, stats) = run_service(&root, Arc::new(FaultPlan::new()), request());
    let restarted = outcome.expect("a torn document must recompute, not fail");
    assert_baseline_bytes(&restarted);
    assert_eq!(stats.store.quarantined, 1);
    assert_eq!(stats.cold_solves, 1);
    assert!(quarantine_path(&root, record.key, 1).exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn blown_deadlines_fail_with_a_typed_retryable_timeout() {
    let root = scratch_dir("deadline-timeout");
    let seeded = seed_root(&root);
    // Tear the document by hand so the lookup falls through to a
    // recompute...
    std::fs::write(document_path(&root, seeded.key), "{\"schema\":").unwrap();
    // ...and make the disk read slow enough (on the virtual clock) to
    // blow a 100 ms budget before the recompute may start.
    let plan = Arc::new(FaultPlan::new().with_slow(FaultOp::Read, 1, 500));
    let mut req = request();
    req.deadline_ms = Some(100);
    let (outcome, stats) = run_service(&root, plan, req);
    let err = outcome.expect_err("the deadline must fire");
    assert_eq!(err.class(), ErrorClass::Timeout);
    assert!(err.is_retryable(), "a timeout is worth retrying");
    assert!(
        matches!(err, ServiceError::Job { .. }),
        "the class must cross the job table, got {err}"
    );
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.cold_solves, 0, "no solve may start past the deadline");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_cache_hit_is_returned_even_past_the_deadline() {
    let root = scratch_dir("deadline-hit");
    seed_root(&root);
    // The same slow disk, but the document is valid: the answer is in
    // hand, so the job succeeds despite the blown budget.
    let plan = Arc::new(FaultPlan::new().with_slow(FaultOp::Read, 1, 500));
    let mut req = request();
    req.deadline_ms = Some(100);
    let (outcome, stats) = run_service(&root, plan, req);
    assert_baseline_bytes(&outcome.expect("a hit in hand beats a deadline"));
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.store.disk_hits, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_same_key_submissions_share_one_solve() {
    let root = scratch_dir("dedup");
    // Stall the (real) publish long enough that the other worker
    // demonstrably overlaps: it must miss the store, find the key in
    // flight, and wait instead of solving again.
    let plan = Arc::new(FaultPlan::new().with_stall(FaultOp::Write, 1, 500));
    let config = ServiceConfig::new(base())
        .workers(2)
        .disk_root(&root)
        .backend(plan.clone() as Arc<dyn coolserved::StoreBackend>);
    let (records, stats) = serve(config, |service| {
        let ids: Vec<_> = (0..3).map(|_| service.submit(request())).collect();
        let records: Vec<_> = ids
            .into_iter()
            .map(|id| service.wait(id).unwrap())
            .collect();
        (records, service.stats())
    });
    assert_eq!(records.len(), 3);
    for record in &records {
        assert_baseline_bytes(record);
    }
    assert_eq!(
        stats.cold_solves, 1,
        "a deduplicated key must be solved exactly once"
    );
    assert!(
        stats.dedup_hits >= 1,
        "at least one job must have shared the in-flight solve"
    );
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_full_queue_rejects_with_typed_retryable_backpressure() {
    let config = ServiceConfig::new(base()).workers(1).queue_limit(0);
    serve(config, |service| {
        let err = service
            .try_submit(request())
            .expect_err("a zero-length queue rejects everything");
        assert_eq!(err.class(), ErrorClass::Unavailable);
        assert!(err.is_retryable(), "backpressure is worth retrying");
        assert_eq!(service.stats().rejected, 1);
        assert_eq!(service.stats().submitted, 0);
    });
}

// ---- store-level: bounds, CAS, strict mode -------------------------

fn fabricated_key(n: u8) -> CacheKey {
    let mut hex = String::with_capacity(32);
    for _ in 0..30 {
        hex.push('0');
    }
    hex.push_str(&format!("{n:02x}"));
    CacheKey::from_hex(&hex).unwrap()
}

#[test]
fn the_disk_tier_evicts_oldest_first_past_the_document_bound() {
    let root = scratch_dir("evict-count");
    let plan = Arc::new(FaultPlan::new());
    let store = ResultStore::with_backend(
        8,
        Some(root.clone()),
        plan.clone() as Arc<dyn coolserved::StoreBackend>,
        DiskOptions {
            max_documents: Some(2),
            ..DiskOptions::default()
        },
    );
    let response = Arc::clone(&baseline().0);
    let keys = [fabricated_key(1), fabricated_key(2), fabricated_key(3)];
    for &key in &keys {
        store.put(key, Arc::clone(&response)).unwrap();
    }
    let stats = store.stats();
    assert_eq!(stats.disk_writes, 3);
    assert_eq!(stats.evicted, 1, "one document past the bound");
    assert!(
        !document_path(&root, keys[0]).exists(),
        "the oldest document must go first"
    );
    assert!(document_path(&root, keys[1]).exists());
    assert!(document_path(&root, keys[2]).exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn the_disk_tier_expires_documents_past_their_ttl() {
    let root = scratch_dir("evict-ttl");
    let plan = Arc::new(FaultPlan::new());
    let store = ResultStore::with_backend(
        8,
        Some(root.clone()),
        plan.clone() as Arc<dyn coolserved::StoreBackend>,
        DiskOptions {
            max_age_ms: Some(5_000),
            ..DiskOptions::default()
        },
    );
    let response = Arc::clone(&baseline().0);
    let (old_key, new_key) = (fabricated_key(4), fabricated_key(5));
    store.put(old_key, Arc::clone(&response)).unwrap();
    plan.advance_clock_ms(10_000);
    store.put(new_key, Arc::clone(&response)).unwrap();
    let stats = store.stats();
    assert_eq!(stats.evicted, 1);
    assert!(
        !document_path(&root, old_key).exists(),
        "the aged-out document must be gone"
    );
    assert!(document_path(&root, new_key).exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn same_key_writers_in_two_stores_race_safely() {
    let root = scratch_dir("cas");
    let key = fabricated_key(6);
    let response = Arc::clone(&baseline().0);
    let store_a = ResultStore::with_backend(
        8,
        Some(root.clone()),
        Arc::new(FaultPlan::new()),
        DiskOptions::default(),
    );
    // A second store over the same root — a second process, as far as
    // the disk protocol is concerned.
    let store_b = ResultStore::with_backend(
        8,
        Some(root.clone()),
        Arc::new(FaultPlan::new()),
        DiskOptions::default(),
    );
    store_a.put(key, Arc::clone(&response)).unwrap();
    store_b.put(key, Arc::clone(&response)).unwrap();
    assert_eq!(store_a.stats().disk_writes, 1);
    assert_eq!(
        store_b.stats().disk_writes,
        0,
        "the incumbent document wins the race"
    );
    assert_eq!(store_b.stats().write_races_lost, 1);
    // The loser still reads the winner's bytes back.
    let (read_back, _) = store_b.get(key).unwrap().unwrap();
    assert_eq!(
        response_to_json(&read_back).render(),
        response_to_json(&response).render()
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn strict_mode_surfaces_transient_errors_instead_of_degrading() {
    let root = scratch_dir("strict");
    let seed_plan = Arc::new(FaultPlan::new());
    let seeder =
        ResultStore::with_backend(8, Some(root.clone()), seed_plan, DiskOptions::default());
    let key = fabricated_key(7);
    let response = Arc::clone(&baseline().0);
    seeder.put(key, Arc::clone(&response)).unwrap();

    let plan = Arc::new(FaultPlan::new().with_fail(FaultOp::Read, 1));
    let strict = ResultStore::with_backend(
        8,
        Some(root.clone()),
        plan,
        DiskOptions {
            retry: RetryPolicy::none(),
            degrade_on_failure: false,
            ..DiskOptions::default()
        },
    );
    let err = strict
        .get(key)
        .expect_err("strict mode must surface the fault");
    assert_eq!(err.class(), ErrorClass::Transient);
    assert!(err.is_retryable());
    assert_eq!(
        strict.disk_health(),
        DiskHealth::Healthy,
        "strict mode must not silently degrade"
    );
    // The disk recovered: the very next call succeeds.
    let (read_back, _) = strict.get(key).unwrap().unwrap();
    assert_eq!(
        response_to_json(&read_back).render(),
        response_to_json(&response).render()
    );
    let _ = std::fs::remove_dir_all(&root);
}
