//! Acceptance tests for the optimization service: key stability and
//! collision-freedom across a scenario grid, warm-equals-cold
//! bit-identity under concurrent clients, and disk persistence across
//! service restarts.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use coolserved::json::Json;
use coolserved::wire::{request_from_json, request_to_json, response_to_json};
use coolserved::{serve, JobStatus, ResultSource, ServiceConfig};
use postplace::{
    CacheKey, Flow, FlowConfig, OptimizeOutcome, OptimizeRequest, OptimizeResponse, Strategy,
    WorkloadSpec,
};

fn base() -> FlowConfig {
    FlowConfig::with_workload(WorkloadSpec::clustered_hotspot()).fast()
}

/// A 64-request grid: 4 workloads × 2 meshes × 8 goals.
fn scenario_grid() -> Vec<OptimizeRequest> {
    let workloads = [
        WorkloadSpec::clustered_hotspot(),
        WorkloadSpec::checkerboard(),
        WorkloadSpec {
            active: WorkloadSpec::clustered_hotspot().active,
            toggle_probability: 0.75,
        },
        WorkloadSpec {
            active: WorkloadSpec::checkerboard().active,
            toggle_probability: 0.125,
        },
    ];
    let meshes = [(12, 12), (16, 16)];
    let goals: [&dyn Fn(postplace::OptimizeRequestBuilder) -> postplace::OptimizeRequestBuilder;
        8] = [
        &|b| b.strategy(Strategy::None),
        &|b| {
            b.strategy(Strategy::UniformSlack {
                area_overhead: 0.08,
            })
        },
        &|b| {
            b.strategy(Strategy::UniformSlack {
                area_overhead: 0.16,
            })
        },
        &|b| b.strategy(Strategy::EmptyRowInsertion { rows: 4 }),
        &|b| {
            b.strategy(Strategy::HotspotWrapper {
                area_overhead: 0.16,
            })
        },
        &|b| b.transform("eri:4"),
        &|b| b.budget(0.16),
        &|b| b.rows_for_target(5.0, 8),
    ];
    let mut requests = Vec::new();
    for workload in &workloads {
        for &(nx, ny) in &meshes {
            for goal in &goals {
                let builder = OptimizeRequest::builder()
                    .workload(workload.clone())
                    .mesh(nx, ny);
                requests.push(goal(builder).build().unwrap());
            }
        }
    }
    requests
}

/// A scratch directory unique to this test process, cleaned up by the
/// caller.
fn scratch_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("coolserved-test-{label}-{}", std::process::id()))
}

#[test]
fn cache_keys_are_stable_and_collision_free_across_the_grid() {
    let base = base();
    let requests = scenario_grid();
    assert_eq!(requests.len(), 64);

    // One flow per resolved config, exactly as the service builds them.
    let mut flows: HashMap<u64, Flow> = HashMap::new();
    let mut keys: HashMap<CacheKey, usize> = HashMap::new();
    for (i, request) in requests.iter().enumerate() {
        let resolved = request.resolve_config(&base);
        let fp = postplace::config_fingerprint(&resolved);
        let flow = flows
            .entry(fp)
            .or_insert_with(|| Flow::new(resolved).unwrap());

        let key = flow.content_key(request).unwrap();
        // Deterministic: recomputing yields the same key, and the key
        // survives a trip through the wire codec (the request a second
        // process would decode hashes identically).
        assert_eq!(flow.content_key(request).unwrap(), key);
        let rendered = request_to_json(request).render();
        let decoded = request_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(&decoded, request, "request must survive the wire");
        assert_eq!(
            flow.content_key(&decoded).unwrap(),
            key,
            "a wire round-trip must not move the cache key"
        );
        // Collision-free: 64 distinct scenarios, 64 distinct keys.
        if let Some(prev) = keys.insert(key, i) {
            panic!("requests {prev} and {i} collide on {key}");
        }
    }
    assert_eq!(keys.len(), 64);
}

fn assert_same_response(a: &OptimizeResponse, b: &OptimizeResponse) {
    assert_eq!(a.key, b.key);
    // Bit-identity of the full payload, checked through the canonical
    // rendering (which is itself bit-exact for every finite f64).
    assert_eq!(
        response_to_json(a).render(),
        response_to_json(b).render(),
        "cache must return the cold solve bit-for-bit"
    );
}

#[test]
fn concurrent_clients_get_bit_identical_warm_answers() {
    let overheads = [0.08, 0.12, 0.16, 0.20];
    let requests: Vec<OptimizeRequest> = overheads
        .iter()
        .map(|&area_overhead| {
            OptimizeRequest::builder()
                .workload(WorkloadSpec::clustered_hotspot())
                .mesh(16, 16)
                .strategy(Strategy::UniformSlack { area_overhead })
                .build()
                .unwrap()
        })
        .collect();

    let config = ServiceConfig::new(base()).workers(3).cache_capacity(64);
    let (records, stats) = serve(config, |service| {
        // Four client threads submit the same four requests each, so
        // every request is solved at most a few times cold and the
        // rest must come from cache.
        let records: Vec<_> = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let ids: Vec<_> =
                            requests.iter().map(|r| service.submit(r.clone())).collect();
                        ids.into_iter()
                            .map(|id| service.wait(id).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            clients
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect()
        });
        (records, service.stats())
    });

    assert_eq!(records.len(), 16);
    // Group by key: every record of a key must carry the identical
    // response, whatever its source.
    let mut by_key: HashMap<CacheKey, Vec<&Arc<OptimizeResponse>>> = HashMap::new();
    for record in &records {
        by_key.entry(record.key).or_default().push(&record.response);
    }
    assert_eq!(by_key.len(), 4, "four distinct requests, four keys");
    for responses in by_key.values() {
        for other in &responses[1..] {
            assert_same_response(responses[0], other);
        }
    }
    // The cache must actually have fired: 16 jobs, exactly one cold
    // solve per distinct key — single-flight dedup makes concurrent
    // same-key races share one solve instead of double-computing.
    assert_eq!(stats.submitted, 16);
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.cold_solves, 4,
        "single-flight must hold cold solves to one per key"
    );
    assert!(stats.store.memory.hits > 0, "memory tier never hit");
    let sources: HashSet<ResultSource> = records.iter().map(|r| r.source).collect();
    assert!(sources.contains(&ResultSource::MemoryCache));
}

#[test]
fn solver_thread_overrides_reuse_the_result_cache() {
    let plain = OptimizeRequest::builder()
        .workload(WorkloadSpec::clustered_hotspot())
        .mesh(16, 16)
        .strategy(Strategy::UniformSlack {
            area_overhead: 0.12,
        })
        .build()
        .unwrap();
    let mut threaded = plain.clone();
    threaded.solver_threads = Some(2);

    let config = ServiceConfig::new(base()).workers(1).solver_threads(1);
    let (a, b, stats) = serve(config, |service| {
        let first = service.submit(plain.clone());
        let a = service.wait(first).unwrap();
        let second = service.submit(threaded.clone());
        let b = service.wait(second).unwrap();
        (a, b, service.stats())
    });
    // Thread count is a latency knob: the key and the answer are the
    // same, so the override is served warm from the result store...
    assert_eq!(a.key, b.key, "thread count must not move the cache key");
    assert_same_response(&a.response, &b.response);
    assert_eq!(stats.cold_solves, 1);
    assert_eq!(b.source, ResultSource::MemoryCache);
    // ...but a flow bakes its thread count into the factorization, so
    // the two requests must not share one.
    assert_eq!(
        stats.flows_built, 2,
        "distinct thread counts need distinct flows"
    );
}

#[test]
fn results_persist_across_service_restarts() {
    let root = scratch_dir("persist");
    let _ = std::fs::remove_dir_all(&root);

    let request = OptimizeRequest::builder()
        .workload(WorkloadSpec::clustered_hotspot())
        .mesh(16, 16)
        .strategy(Strategy::EmptyRowInsertion { rows: 4 })
        .tag("persisted")
        .build()
        .unwrap();

    // First service: cold solve, written to disk.
    let config = ServiceConfig::new(base()).workers(1).disk_root(&root);
    let (first, first_stats) = serve(config.clone(), |service| {
        let id = service.submit(request.clone());
        assert!(matches!(
            service.status(id).unwrap(),
            JobStatus::Queued | JobStatus::Running | JobStatus::Done
        ));
        (service.wait(id).unwrap(), service.stats())
    });
    assert_eq!(first.source, ResultSource::ColdSolve);
    assert_eq!(first_stats.store.disk_writes, 1);
    let on_disk = root
        .join(coolserved::STORE_NAMESPACE)
        .join(format!("{}.json", first.key.to_hex()));
    assert!(on_disk.exists(), "no document at {}", on_disk.display());

    // Second service, fresh memory: answered from disk, zero solves.
    let (second, second_stats) = serve(config, |service| {
        let id = service.submit(request.clone());
        (service.wait(id).unwrap(), service.stats())
    });
    assert_eq!(second.source, ResultSource::DiskCache);
    assert_eq!(second_stats.cold_solves, 0);
    assert_eq!(second_stats.store.disk_hits, 1);
    assert_same_response(&first.response, &second.response);

    // A warm answer is also shaped right: ERI strategy yields a report.
    match &second.response.outcome {
        OptimizeOutcome::Report(report) => {
            assert_eq!(report.strategy, Strategy::EmptyRowInsertion { rows: 4 });
        }
        other => panic!("eri strategy must yield a report, got {other:?}"),
    }

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn unknown_jobs_and_failures_surface_typed_errors() {
    let config = ServiceConfig::new(base()).workers(1);
    serve(config, |service| {
        let bogus = postplace::JobId::new(9_999);
        assert!(matches!(
            service.status(bogus),
            Err(coolserved::ServiceError::UnknownJob { id }) if id == bogus
        ));

        // The builder rejects unparseable transform ids up front...
        let err = OptimizeRequest::builder()
            .workload(WorkloadSpec::clustered_hotspot())
            .mesh(16, 16)
            .transform("warp-drive:9")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("warp-drive"), "{err}");

        // ...so a bad id smuggled past it (a hand-built request, e.g.
        // deserialized from a foreign client) fails the job, not the
        // service.
        let bad = OptimizeRequest {
            workload: WorkloadSpec::clustered_hotspot(),
            mesh: (16, 16),
            goal: postplace::OptimizeGoal::Transform {
                id: "warp-drive:9".to_string(),
            },
            tag: None,
            solver_threads: None,
            deadline_ms: None,
            solver: None,
        };
        let id = service.submit(bad);
        let err = service.wait(id).unwrap_err();
        assert!(
            matches!(&err, coolserved::ServiceError::Job { .. }),
            "expected a job error, got {err}"
        );
        // The structured kind crosses the job table: a flow failure is
        // permanent, not retryable.
        assert_eq!(err.class(), coolserved::ErrorClass::Flow);
        assert!(!err.is_retryable());
        assert_eq!(service.status(id).unwrap(), JobStatus::Failed);

        // The service keeps serving afterwards.
        let good = OptimizeRequest::builder()
            .workload(WorkloadSpec::clustered_hotspot())
            .mesh(16, 16)
            .strategy(Strategy::None)
            .build()
            .unwrap();
        let id = service.submit(good);
        service.wait(id).unwrap();
    });
}
