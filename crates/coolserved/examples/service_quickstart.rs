//! Quickstart for the optimization service: spin up a worker pool with
//! a persistent result cache, submit a mixed batch of typed requests,
//! and show warm answers coming back from cache bit-identical to their
//! cold solves.
//!
//! ```sh
//! cargo run --release --example service_quickstart
//! ```

use std::process::ExitCode;

use coolserved::{serve, JobRecord, ResultSource, ServiceConfig};
use postplace::{FlowConfig, OptimizeRequest, Strategy, WorkloadSpec};

fn requests() -> Vec<OptimizeRequest> {
    let workload = WorkloadSpec::clustered_hotspot();
    vec![
        OptimizeRequest::builder()
            .workload(workload.clone())
            .mesh(16, 16)
            .strategy(Strategy::UniformSlack {
                area_overhead: 0.16,
            })
            .tag("default +16%")
            .build()
            .expect("complete request"),
        OptimizeRequest::builder()
            .workload(workload.clone())
            .mesh(16, 16)
            .strategy(Strategy::EmptyRowInsertion { rows: 6 })
            .tag("eri 6 rows")
            .build()
            .expect("complete request"),
        OptimizeRequest::builder()
            .workload(workload)
            .mesh(16, 16)
            .budget(0.16)
            .tag("best within +16%")
            .build()
            .expect("complete request"),
    ]
}

fn print_record(record: &JobRecord) {
    let reduction = record
        .response
        .report()
        .map(|r| format!("{:.2}% peak-rise reduction", r.reduction_pct()))
        .unwrap_or_else(|| "frontier".to_string());
    println!(
        "  job {} [{}] {} -> {} in {:.0} ms ({})",
        record.id,
        record.request.label(),
        record.key,
        reduction,
        record.wall_ms,
        record.source
    );
}

fn main() -> ExitCode {
    // One service over the scaled-down benchmark; the disk tier lives
    // under the target directory so a second run of this example is
    // answered without solving anything.
    let cache_root = std::env::temp_dir().join("coolserved-quickstart");
    let config =
        ServiceConfig::new(FlowConfig::with_workload(WorkloadSpec::clustered_hotspot()).fast())
            .workers(2)
            .cache_capacity(64)
            .disk_root(&cache_root);
    println!("result cache: {}", cache_root.display());

    let ok = serve(config, |service| {
        // Submit the whole batch up front; the ids come back
        // immediately while the workers chew through the queue.
        let cold_ids: Vec<_> = requests().into_iter().map(|r| service.submit(r)).collect();
        println!("\nfirst pass ({} jobs):", cold_ids.len());
        let mut cold = Vec::new();
        for id in cold_ids {
            match service.wait(id) {
                Ok(record) => {
                    print_record(&record);
                    cold.push(record);
                }
                Err(e) => {
                    eprintln!("  job {id} failed: {e}");
                    return false;
                }
            }
        }

        // Resubmit: every answer must now come from a cache tier, and
        // the payload must match the cold solve bit for bit.
        println!("\nsecond pass (same requests):");
        let warm_ids: Vec<_> = cold
            .iter()
            .map(|r| service.submit(r.request.clone()))
            .collect();
        for (id, cold_record) in warm_ids.into_iter().zip(&cold) {
            match service.wait(id) {
                Ok(record) => {
                    print_record(&record);
                    if record.source == ResultSource::ColdSolve {
                        eprintln!("  expected a cache hit, got a cold solve");
                        return false;
                    }
                    let warm = coolserved::wire::response_to_json(&record.response).render();
                    let cold = coolserved::wire::response_to_json(&cold_record.response).render();
                    if warm != cold {
                        eprintln!("  warm answer drifted from the cold solve");
                        return false;
                    }
                }
                Err(e) => {
                    eprintln!("  job {id} failed: {e}");
                    return false;
                }
            }
        }

        let stats = service.stats();
        println!(
            "\nservice: {} jobs, {} cold solves, {} memory hits, {} disk writes, {} flows built",
            stats.submitted,
            stats.cold_solves,
            stats.store.memory.hits,
            stats.store.disk_writes,
            stats.flows_built
        );
        true
    });

    // Leave no state behind: the example doubles as a CI check and must
    // be cold again on the next run.
    let _ = std::fs::remove_dir_all(&cache_root);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
