//! Cross-crate integration: drives the full stack crate-by-crate (not
//! through `Flow`) and checks the invariants that hold across module
//! boundaries.

use coolplace::arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
use coolplace::logicsim::{Simulator, Workload};
use coolplace::placement::{total_hpwl, validate, Placer, PlacerConfig};
use coolplace::powerest::{estimate_power, power_map, PowerConfig};
use coolplace::thermalsim::{ThermalConfig, ThermalSimulator};
use coolplace::timan::{analyze, TimingConfig};

#[test]
fn manual_pipeline_reproduces_flow_steps() {
    // 1. "Synthesis": generate the benchmark netlist.
    let netlist = build_benchmark(&BenchmarkConfig::small()).unwrap();
    assert_eq!(netlist.unit_count(), 9);

    // 2. "VCS": simulate a workload for switching activity.
    let workload = Workload::with_active_units(&netlist, &[UnitRole::ArrayMult.unit_id()], 0.5);
    let mut sim = Simulator::new(&netlist);
    sim.run_workload(&workload, 8, 1);
    sim.reset_activity();
    sim.run_workload(&workload, 128, 2);
    let activity = sim.activity();
    assert!(activity.mean_activity() > 0.0);

    // 3. "IC Compiler": floorplan + place + fill.
    let placed = Placer::new(PlacerConfig::with_utilization(0.8))
        .place(&netlist)
        .unwrap();
    assert!(validate(&netlist, &placed.floorplan, &placed.placement).is_empty());

    // 4. "Power Compiler": per-cell power with wire loads.
    let power = estimate_power(
        &netlist,
        &activity,
        Some((&placed.floorplan, &placed.placement)),
        None,
        &PowerConfig::default(),
    );
    assert!(power.total_w() > 0.0);

    // 5. Power map → "SPICE" thermal solve.
    let pmap = power_map(
        &netlist,
        &placed.floorplan,
        &placed.placement,
        &power,
        16,
        16,
    );
    assert!((pmap.sum() - power.total_w()).abs() < power.total_w() * 1e-9);
    let thermal = ThermalSimulator::new(ThermalConfig::with_resolution(16, 16));
    let tmap = thermal.solve(placed.floorplan.core(), &pmap).unwrap();
    assert!(tmap.peak_rise() > 0.0);

    // 6. STA with thermal derating.
    let cold = analyze(
        &netlist,
        &placed.floorplan,
        &placed.placement,
        None,
        &TimingConfig::default(),
    )
    .unwrap();
    let hot = analyze(
        &netlist,
        &placed.floorplan,
        &placed.placement,
        Some(&tmap),
        &TimingConfig::default(),
    )
    .unwrap();
    assert!(hot.critical_path_ps >= cold.critical_path_ps);

    // 7. Wirelength is sane.
    assert!(total_hpwl(&netlist, &placed.floorplan, &placed.placement) > 0.0);
}

#[test]
fn power_map_peak_follows_the_workload() {
    // Activate different units and check the power map peak moves into
    // the right region each time.
    let netlist = build_benchmark(&BenchmarkConfig::small()).unwrap();
    let placed = Placer::new(PlacerConfig::default())
        .place(&netlist)
        .unwrap();
    for role in [UnitRole::BoothMult, UnitRole::Divider, UnitRole::Alu] {
        let workload = Workload::with_active_units(&netlist, &[role.unit_id()], 0.5);
        let mut sim = Simulator::new(&netlist);
        sim.run_workload(&workload, 8, 3);
        sim.reset_activity();
        sim.run_workload(&workload, 128, 4);
        let power = estimate_power(
            &netlist,
            &sim.activity(),
            Some((&placed.floorplan, &placed.placement)),
            None,
            &PowerConfig::default(),
        );
        let pmap = power_map(
            &netlist,
            &placed.floorplan,
            &placed.placement,
            &power,
            20,
            20,
        );
        let ((px, py), _) = pmap.max_bin().unwrap();
        let peak_point = pmap.bin_rect(px, py).center();
        let region = placed.regions[role.unit_id().index()];
        assert!(
            region
                .expand(2.0 * placed.floorplan.row_height())
                .contains(peak_point),
            "{role}: power peak {peak_point} outside its region {region}"
        );
    }
}

#[test]
fn thermal_scales_linearly_with_power() {
    let netlist = build_benchmark(&BenchmarkConfig::small()).unwrap();
    let placed = Placer::new(PlacerConfig::default())
        .place(&netlist)
        .unwrap();
    let workload = Workload::uniform(&netlist, 0.4);
    let mut sim = Simulator::new(&netlist);
    sim.run_workload(&workload, 100, 5);
    let power = estimate_power(
        &netlist,
        &sim.activity(),
        Some((&placed.floorplan, &placed.placement)),
        None,
        &PowerConfig::default(),
    );
    let pmap = power_map(
        &netlist,
        &placed.floorplan,
        &placed.placement,
        &power,
        12,
        12,
    );
    let mut doubled = pmap.clone();
    for v in doubled.values_mut() {
        *v *= 2.0;
    }
    let thermal = ThermalSimulator::new(ThermalConfig::with_resolution(12, 12));
    let t1 = thermal.solve(placed.floorplan.core(), &pmap).unwrap();
    let t2 = thermal.solve(placed.floorplan.core(), &doubled).unwrap();
    assert!((t2.peak_rise() - 2.0 * t1.peak_rise()).abs() < 1e-6 * t2.peak_rise().max(1.0));
}
