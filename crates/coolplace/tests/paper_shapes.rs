//! The paper's qualitative results, asserted on the fast configuration so
//! they run in CI time. The full-scale regenerations live in the bench
//! harness (`cargo bench`).

use coolplace::postplace::{Flow, FlowConfig, Strategy};

fn reductions_at(flow: &Flow, overhead: f64) -> (f64, f64, f64) {
    let rows0 = flow.base_placement().floorplan.num_rows();
    let rows = ((overhead * rows0 as f64).round() as usize).max(1);
    let def = flow
        .run(Strategy::UniformSlack {
            area_overhead: overhead,
        })
        .unwrap();
    let eri = flow.run(Strategy::EmptyRowInsertion { rows }).unwrap();
    let hw = flow
        .run(Strategy::HotspotWrapper {
            area_overhead: overhead,
        })
        .unwrap();
    (def.reduction_pct(), eri.reduction_pct(), hw.reduction_pct())
}

#[test]
fn fig6_shape_smart_beats_blind_and_grows_with_overhead() {
    let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
    let (d16, e16, h16) = reductions_at(&flow, 0.16);
    let (d32, e32, h32) = reductions_at(&flow, 0.32);
    // All schemes help, and help more with more area.
    for r in [d16, e16, h16, d32, e32, h32] {
        assert!(r > 0.0, "every scheme should reduce temperature");
    }
    assert!(d32 > d16 && e32 > e16 && h32 > h16);
    // ERI does not lose to Default (small tolerance for the reduced
    // configuration's noise).
    assert!(
        e16 > d16 - 0.3 && e32 > d32 - 0.3,
        "ERI {e16:.2}/{e32:.2} vs Default {d16:.2}/{d32:.2}"
    );
}

#[test]
fn table1_shape_eri_beats_default_on_concentrated_hotspots() {
    let flow = Flow::new(FlowConfig::concentrated_large().fast()).unwrap();
    let (d, e, _) = reductions_at(&flow, 0.161);
    assert!(
        e > d - 0.3,
        "concentrated: ERI {e:.2}% should track/beat Default {d:.2}%"
    );
}

#[test]
fn timing_overhead_stays_small() {
    // Paper: "maximum timing overhead ... around 2%".
    let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
    let rows = (0.32 * flow.base_placement().floorplan.num_rows() as f64).round() as usize;
    for strategy in [
        Strategy::EmptyRowInsertion { rows },
        Strategy::HotspotWrapper {
            area_overhead: 0.32,
        },
    ] {
        let r = flow.run(strategy).unwrap();
        assert!(
            r.timing_overhead_pct() < 6.0,
            "{strategy}: timing overhead {:.2}% too large",
            r.timing_overhead_pct()
        );
    }
}

#[test]
fn area_overheads_match_their_specification() {
    let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
    let rows0 = flow.base_placement().floorplan.num_rows();
    let def = flow
        .run(Strategy::UniformSlack { area_overhead: 0.2 })
        .unwrap();
    assert!((def.area_overhead_pct - 20.0).abs() < 2.0);
    let eri = flow
        .run(Strategy::EmptyRowInsertion { rows: rows0 / 5 })
        .unwrap();
    let expected = (rows0 / 5) as f64 / rows0 as f64 * 100.0;
    assert!((eri.area_overhead_pct - expected).abs() < 0.5);
}
