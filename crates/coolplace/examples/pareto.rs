//! The paper's headline comparison, automated: sweep the full transform
//! registry (the three paper techniques, the new targeted-row and
//! hot-bin-spread techniques, and composite pipelines) across a budget
//! grid and print the area-overhead-vs-peak-reduction Pareto frontier.
//!
//! Hundreds of candidates are screened through the Green's-function
//! delta surrogate in microseconds each; only the surrogate-optimal
//! points pay an exact re-place + re-solve.
//!
//! ```sh
//! cargo run --release --example pareto [-- --fast]
//! ```
//!
//! `--fast` uses the scaled-down benchmark and a coarse mesh (what CI
//! runs); the default is the paper-scale configuration.

use coolplace::postplace::{Flow, FlowConfig, OptimizeRequest, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::args().any(|a| a == "--fast");
    let mut config = FlowConfig::with_workload(WorkloadSpec::clustered_hotspot());
    if fast {
        config = config.fast();
    }
    let flow = Flow::new(config)?;

    let budgets = [0.04, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30, 0.35];
    let request = OptimizeRequest::builder()
        .for_flow(&flow)
        .frontier(budgets)
        .build()?;
    let response = flow.optimize(&request)?;
    println!("request {} -> cache key {}", request.label(), response.key);
    let frontier = response.frontier().expect("frontier goals yield frontiers");

    println!(
        "screened {} candidates ({} skipped), exact-verified {} ({:.0}% of screened)",
        frontier.screened,
        frontier.skipped,
        frontier.exact_runs,
        frontier.exact_share() * 100.0
    );
    println!();
    println!(
        "{:<34} {:>9} {:>10} {:>10}",
        "transform", "area +%", "est. red%", "exact red%"
    );
    for p in &frontier.points {
        println!(
            "{:<34} {:>9.2} {:>10.2} {:>10.2}",
            p.transform_id,
            p.report.area_overhead_pct,
            p.estimated_reduction_pct,
            p.report.reduction_pct()
        );
    }
    Ok(())
}
