//! The paper's test set 1: four scattered small hotspots (the four
//! corner units active). Runs all three whitespace strategies at a
//! matched overhead and prints the comparison, plus ASCII thermal maps.
//!
//! ```sh
//! cargo run --release --example scattered_hotspots [overhead_pct]
//! ```

use coolplace::postplace::{detect_hotspots, Flow, FlowConfig, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let overhead: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse::<f64>())
        .transpose()?
        .unwrap_or(16.0)
        / 100.0;

    let flow = Flow::new(FlowConfig::scattered_small())?;
    let (_, before) = flow.baseline_maps()?;
    println!("== baseline thermal map (hottest = @) ==");
    print!("{}", before.to_ascii());
    let hotspots = detect_hotspots(&before, &flow.config().hotspot);
    println!(
        "peak rise {:.2} K, {} hotspot component(s) detected",
        before.peak_rise(),
        hotspots.len()
    );

    let rows = (overhead * flow.base_placement().floorplan.num_rows() as f64).round() as usize;
    println!(
        "\n{:<28} {:>10} {:>12} {:>10}",
        "strategy", "overhead", "reduction", "timing"
    );
    for strategy in [
        Strategy::UniformSlack {
            area_overhead: overhead,
        },
        Strategy::EmptyRowInsertion { rows },
        Strategy::HotspotWrapper {
            area_overhead: overhead,
        },
    ] {
        let r = flow.run(strategy)?;
        println!(
            "{:<28} {:>9.1}% {:>11.2}% {:>+9.2}%",
            strategy.to_string(),
            r.area_overhead_pct,
            r.reduction_pct(),
            r.timing_overhead_pct()
        );
    }
    Ok(())
}
