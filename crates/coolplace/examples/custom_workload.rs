//! Driving the flow with a custom workload and tuned parameters: two
//! multiplier units active at different rates, leakage–temperature
//! feedback enabled, and a custom wrapper configuration.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use coolplace::arithgen::UnitRole;
use coolplace::postplace::{Flow, FlowConfig, Strategy, WorkloadSpec, WrapperConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A workload the paper never ran: Booth multiplier hammering away
    // with the MAC ticking along — one strong and one weak hotspot.
    let mut config = FlowConfig::with_workload(WorkloadSpec {
        active: vec![UnitRole::BoothMult, UnitRole::Mac],
        toggle_probability: 0.45,
    });
    // Turn on the leakage-temperature feedback loop (the paper's
    // "positive feedback between leakage power and temperature").
    config.leakage_feedback_iters = 2;
    // A wider whitespace ring around wrapped hotspots.
    config.wrapper = WrapperConfig {
        ring_rows: 4.5,
        ..config.wrapper
    };

    let flow = Flow::new(config)?;
    let (_, before) = flow.baseline_maps()?;
    println!(
        "baseline with feedback: peak {:.2} °C ({:.2} K rise), {:.2} mW",
        before.peak_bin().1,
        before.peak_rise(),
        flow.power().total_w() * 1e3
    );

    for overhead in [0.10, 0.20, 0.30] {
        let rows = (overhead * flow.base_placement().floorplan.num_rows() as f64).round() as usize;
        let eri = flow.run(Strategy::EmptyRowInsertion { rows })?;
        let hw = flow.run(Strategy::HotspotWrapper {
            area_overhead: overhead,
        })?;
        println!(
            "+{:>4.1}% area: ERI {:>5.2}% | HW {:>5.2}% (timing {:+.2}% / {:+.2}%)",
            overhead * 100.0,
            eri.reduction_pct(),
            hw.reduction_pct(),
            eri.timing_overhead_pct(),
            hw.timing_overhead_pct()
        );
    }
    Ok(())
}
