//! Quickstart: run the whole post-placement temperature-reduction flow on
//! a scaled-down benchmark and print the before/after report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use coolplace::postplace::{Flow, FlowConfig, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's flow: generate the synthetic benchmark, simulate the
    // workload to annotate switching activity, estimate power, place the
    // design and solve the RC thermal model. `fast()` shrinks the
    // benchmark and mesh so this example runs in a couple of seconds.
    let flow = Flow::new(FlowConfig::scattered_small().fast())?;

    let netlist = flow.netlist();
    println!(
        "benchmark: {} cells in {} units, {:.2} mW under the workload",
        netlist.cell_count(),
        netlist.unit_count(),
        flow.power().total_w() * 1e3
    );

    let (_, thermal) = flow.baseline_maps()?;
    println!(
        "baseline: peak {:.2} °C ({:.2} K above ambient), gradient {:.2} K",
        thermal.peak_bin().1,
        thermal.peak_rise(),
        thermal.gradient()
    );

    // Spend ~16 % extra area as empty rows interleaved with the hotspots.
    let rows = (0.16 * flow.base_placement().floorplan.num_rows() as f64).round() as usize;
    let report = flow.run(Strategy::EmptyRowInsertion { rows })?;
    println!(
        "\nempty row insertion ({rows} rows, +{:.1}% area):",
        report.area_overhead_pct
    );
    println!(
        "  peak temperature reduction: {:.2}% of the rise above ambient",
        report.reduction_pct()
    );
    println!(
        "  timing overhead:            {:+.2}%",
        report.timing_overhead_pct()
    );

    // Compare against blindly relaxing the utilization factor.
    let default = flow.run(Strategy::UniformSlack {
        area_overhead: report.area_overhead_pct / 100.0,
    })?;
    println!(
        "  (uniform whitespace at the same overhead: {:.2}%)",
        default.reduction_pct()
    );
    Ok(())
}
