//! The paper's future work, realized: instead of sweeping row counts by
//! hand, ask the optimizer for the *minimum* number of empty rows that
//! reaches a target peak-temperature reduction, and for the best
//! technique under an area budget.
//!
//! ```sh
//! cargo run --release --example optimize_rows [target_reduction_pct]
//! ```

use coolplace::postplace::{Flow, FlowConfig, OptimizeOutcome, OptimizeRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse::<f64>())
        .transpose()?
        .unwrap_or(10.0);

    let flow = Flow::new(FlowConfig::scattered_small())?;
    let rows0 = flow.base_placement().floorplan.num_rows();

    println!("target: {target:.1}% peak-temperature reduction");
    let request = OptimizeRequest::builder()
        .for_flow(&flow)
        .rows_for_target(target, rows0 / 2)
        .build()?;
    let response = flow.optimize(&request)?;
    let OptimizeOutcome::Rows(opt) = &response.outcome else {
        unreachable!("rows_for_target goals yield row optima");
    };
    println!(
        "minimum rows: {} (+{:.1}% area) → {:.2}% reduction, found in {} evaluations",
        opt.rows,
        opt.report.area_overhead_pct,
        opt.report.reduction_pct(),
        opt.evaluations
    );

    for budget in [0.10, 0.20] {
        let request = OptimizeRequest::builder()
            .for_flow(&flow)
            .budget(budget)
            .build()?;
        let response = flow.optimize(&request)?;
        let best = response.report().expect("budget goals yield reports");
        println!(
            "best strategy within +{:.0}% area: {} → {:.2}% reduction",
            budget * 100.0,
            best.strategy,
            best.reduction_pct()
        );
    }
    Ok(())
}
