//! The paper's test set 2: a single large concentrated hotspot (the Booth
//! multiplier active). Reproduces the Table I comparison — Default versus
//! empty row insertion at matched area overheads.
//!
//! ```sh
//! cargo run --release --example concentrated_hotspot
//! ```

use coolplace::postplace::{classify_hotspots, detect_hotspots, Flow, FlowConfig, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = Flow::new(FlowConfig::concentrated_large())?;
    let (_, before) = flow.baseline_maps()?;
    let hotspots = detect_hotspots(&before, &flow.config().hotspot);
    println!(
        "baseline: peak rise {:.2} K; pattern classified as {:?}",
        before.peak_rise(),
        classify_hotspots(&hotspots, before.die())
    );
    print!("{}", before.to_ascii());

    let fp = &flow.base_placement().floorplan;
    println!(
        "\n{:<10} {:>8} {:>10} {:>12}  (paper Table I)",
        "scheme", "rows", "overhead", "reduction"
    );
    for (overhead, paper_default, paper_eri) in [(0.161, 11.3, 13.1), (0.322, 20.2, 28.6)] {
        let rows = ((overhead * fp.num_rows() as f64).round() as usize).max(1);
        let def = flow.run(Strategy::UniformSlack {
            area_overhead: overhead,
        })?;
        let eri = flow.run(Strategy::EmptyRowInsertion { rows })?;
        println!(
            "{:<10} {:>8} {:>9.1}% {:>11.2}%  (paper {paper_default}%)",
            "Default",
            "-",
            def.area_overhead_pct,
            def.reduction_pct()
        );
        println!(
            "{:<10} {:>8} {:>9.1}% {:>11.2}%  (paper {paper_eri}%)",
            "ERI",
            rows,
            eri.area_overhead_pct,
            eri.reduction_pct()
        );
    }
    Ok(())
}
