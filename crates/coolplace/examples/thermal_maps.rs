//! Dumps the power and thermal profiles (the paper's Fig. 5) as
//! gnuplot-compatible matrix files plus terminal ASCII art.
//!
//! ```sh
//! cargo run --release --example thermal_maps [output_dir]
//! ```
//!
//! With an output directory, writes `power.mat` and `thermal.mat`; plot
//! them with `gnuplot -e "plot 'thermal.mat' matrix with image"`.

use std::fs;
use std::path::PathBuf;

use coolplace::postplace::{Flow, FlowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: Option<PathBuf> = std::env::args().nth(1).map(PathBuf::from);
    let flow = Flow::new(FlowConfig::scattered_small())?;
    let (power, thermal) = flow.baseline_maps()?;

    println!(
        "die {} | {:.3} mW total | peak {:.2} °C | gradient {:.3} K",
        thermal.die(),
        power.sum() * 1e3,
        thermal.peak_bin().1,
        thermal.gradient()
    );
    println!("\n== thermal profile ==");
    print!("{}", thermal.to_ascii());

    if let Some(dir) = out_dir {
        fs::create_dir_all(&dir)?;
        let mut power_mat = String::new();
        for iy in 0..power.ny() {
            let row: Vec<String> = (0..power.nx())
                .map(|ix| format!("{:.6e}", power.get(ix, iy)))
                .collect();
            power_mat.push_str(&row.join(" "));
            power_mat.push('\n');
        }
        fs::write(dir.join("power.mat"), power_mat)?;
        fs::write(dir.join("thermal.mat"), thermal.to_matrix_string())?;
        println!(
            "\nwrote {}/power.mat and {}/thermal.mat",
            dir.display(),
            dir.display()
        );
    } else {
        println!("\n(pass an output directory to write gnuplot matrices)");
    }
    Ok(())
}
