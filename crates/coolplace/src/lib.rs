//! # coolplace — post-placement temperature reduction techniques
//!
//! A full-stack Rust reproduction of *"Post-placement temperature reduction
//! techniques"* (Liu, Nannarelli, Calimera, Macii, Poncino — DATE 2010).
//!
//! The paper's contribution — **empty row insertion (ERI)** and the
//! **hotspot wrapper (HW)**, two smart whitespace-allocation schemes that
//! cut peak die temperature at fixed area overhead — lives in the
//! [`postplace`] crate. Everything it needs is rebuilt here as well:
//!
//! * [`stdcell`] — synthetic 65 nm-class standard-cell library (incl.
//!   zero-power filler cells);
//! * [`netlist`] — gate-level netlist database and validation;
//! * [`arithgen`] — the nine arithmetic units composing the paper's
//!   ~12 000-cell synthetic benchmark;
//! * [`logicsim`] — cycle-based simulation and switching activity;
//! * [`powerest`] — activity-based dynamic + leakage power, power maps;
//! * [`placement`] — row-based floorplan, placer, legalizer, fillers;
//! * [`spicenet`] — the SPICE-like linear DC solver;
//! * [`thermalsim`] — the 40×40×9 RC thermal-grid model of the paper;
//! * [`timan`] — static timing with temperature derating.
//!
//! The umbrella crate re-exports the whole stack so applications can depend
//! on a single crate; see `examples/quickstart.rs` for the end-to-end flow.
//!
//! # Examples
//!
//! ```no_run
//! use coolplace::postplace::{Flow, FlowConfig, Strategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let flow = Flow::new(FlowConfig::scattered_small())?;
//! let report = flow.run(Strategy::EmptyRowInsertion { rows: 20 })?;
//! println!("peak temperature reduction: {:.1}%", report.reduction_pct());
//! # Ok(())
//! # }
//! ```

pub use arithgen;
pub use geom;
pub use logicsim;
pub use netlist;
pub use placement;
pub use postplace;
pub use powerest;
pub use spicenet;
pub use stdcell;
pub use thermalsim;
pub use timan;
