/// Errors surfaced by the end-to-end flow.
#[derive(Debug)]
pub enum FlowError {
    /// Benchmark generation / netlist validation failed.
    Netlist(netlist::NetlistError),
    /// Placement failed (e.g. utilization target infeasible).
    Place(placement::PlaceError),
    /// Thermal model construction or solve failed.
    Thermal(thermalsim::ThermalError),
    /// Static timing analysis failed.
    Timing(timan::TimingError),
    /// A strategy was given inconsistent parameters.
    BadStrategy {
        /// Human-readable explanation.
        detail: String,
    },
    /// A typed [`crate::OptimizeRequest`] was malformed or dispatched
    /// against a flow it does not match.
    BadRequest {
        /// Human-readable explanation.
        detail: String,
    },
    /// An engine invariant was violated — a bug in this crate, not in
    /// the caller's input. Surfaced as an error instead of a panic so a
    /// long-running sweep degrades to a failed scenario, not a crash.
    Internal {
        /// Which invariant broke.
        detail: String,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist: {e}"),
            FlowError::Place(e) => write!(f, "placement: {e}"),
            FlowError::Thermal(e) => write!(f, "thermal: {e}"),
            FlowError::Timing(e) => write!(f, "timing: {e}"),
            FlowError::BadStrategy { detail } => write!(f, "bad strategy: {detail}"),
            FlowError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            FlowError::Internal { detail } => write!(f, "internal invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Netlist(e) => Some(e),
            FlowError::Place(e) => Some(e),
            FlowError::Thermal(e) => Some(e),
            FlowError::Timing(e) => Some(e),
            FlowError::BadStrategy { .. }
            | FlowError::BadRequest { .. }
            | FlowError::Internal { .. } => None,
        }
    }
}

impl From<netlist::NetlistError> for FlowError {
    fn from(e: netlist::NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

impl From<placement::PlaceError> for FlowError {
    fn from(e: placement::PlaceError) -> Self {
        FlowError::Place(e)
    }
}

impl From<thermalsim::ThermalError> for FlowError {
    fn from(e: thermalsim::ThermalError) -> Self {
        FlowError::Thermal(e)
    }
}

impl From<timan::TimingError> for FlowError {
    fn from(e: timan::TimingError) -> Self {
        FlowError::Timing(e)
    }
}
