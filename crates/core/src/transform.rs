//! The open strategy-transform engine.
//!
//! The paper compares three fixed area-for-temperature techniques; this
//! module turns that closed list into an open, composable space. A
//! [`PlacementTransform`] is anything that can
//!
//! * **apply** itself on top of a [`TransformState`] (a floorplan +
//!   placement, with lazily-computed thermal analysis), producing the
//!   next state;
//! * predict its fractional **area overhead** without being applied
//!   ([`PlacementTransform::planned_overhead`]), so optimization loops
//!   can discard over-budget candidates before paying an exact run;
//! * produce the **screening surrogate** used by
//!   [`crate::CandidateEvaluator`]s: a map→map power redistribution on
//!   the baseline mesh ([`PlacementTransform::surrogate_power`]), which
//!   composes through pipelines;
//! * name itself with a **stable id** that round-trips through
//!   [`TransformRegistry::parse`] — the serialization facade the bench
//!   JSON schema records.
//!
//! The paper's three techniques are ported onto the trait
//! ([`UniformSlackTransform`], [`EmptyRowInsertionTransform`],
//! [`HotspotWrapperTransform`]); the [`Strategy`](crate::Strategy) enum
//! remains as a thin compatibility facade over them
//! ([`crate::Strategy::to_transform`]). On top of the ported set:
//!
//! * [`CompositeTransform`] — an ordered pipeline of stages with an
//!   explicit per-stage budget split, generalizing HW's implicit
//!   "uniform-then-wrap" into arbitrary stacks (ERI→wrap, …);
//! * [`WrapHotspotsTransform`] / [`SpreadFillersTransform`] — the
//!   zero-overhead stages those stacks are built from;
//! * [`TargetedRowInsertionTransform`] — temperature-profile-driven row
//!   insertion: rows land on the hottest distinct row gaps of the whole
//!   map instead of interleaving uniformly through detected hotspots;
//! * [`HotBinSpreadTransform`] — uniform slack whose whitespace is then
//!   pulled laterally into the hot bins of each row (filler spreading on
//!   top of [`placement::fill_whitespace`]).
//!
//! [`TransformRegistry::standard`] bundles every built-in technique as a
//! budget-parameterized factory — the search space
//! [`crate::pareto_frontier`] screens.

use geom::{Grid2d, Rect};
use placement::{
    fill_whitespace, respread_row, weighted_row_gaps, Floorplan, Placement, PlacerConfig,
};
use powerest::PowerReport;
use thermalsim::ThermalMap;

use crate::{
    detect_hotspots, empty_row_insertion, eri_insertion_positions, eri_surrogate_map,
    hotspot_wrapper, split_hotspots_by_regions, targeted_insertion_positions,
    uniform_surrogate_map, wrap_regions, wrap_surrogate_map, Flow, FlowError, Hotspot, PowerDelta,
    Strategy,
};

/// The environment a transform applies in: the owning [`Flow`], the
/// cached-vs-reference solve mode (so `Flow::run_reference` keeps
/// bypassing every cache through arbitrary transform pipelines), and
/// the run's baseline power report (leakage-adjusted when the flow's
/// feedback loop is on — what cell-power-ranking stages must see).
#[derive(Debug)]
pub struct TransformContext<'a> {
    flow: &'a Flow,
    cached: bool,
    power: PowerReport,
}

impl<'a> TransformContext<'a> {
    /// A context over `flow` using the cached (factorized-model) solve
    /// path and the memoized baseline's power report.
    ///
    /// # Errors
    ///
    /// Propagates baseline-solve failures.
    pub fn new(flow: &'a Flow) -> Result<Self, FlowError> {
        let power = flow.baseline_power_report()?.clone();
        Ok(TransformContext {
            flow,
            cached: true,
            power,
        })
    }

    pub(crate) fn with_mode(flow: &'a Flow, cached: bool, power: PowerReport) -> Self {
        TransformContext {
            flow,
            cached,
            power,
        }
    }

    /// The flow the transforms run against.
    pub fn flow(&self) -> &'a Flow {
        self.flow
    }

    /// The run's baseline power report — leakage-adjusted when
    /// `leakage_feedback_iters > 0`, exactly what the enum-era HW arm
    /// ranked hot/cold cells by.
    pub fn power_report(&self) -> &PowerReport {
        &self.power
    }

    /// Solves the thermal field of an intermediate placement, honoring
    /// the context's cached/reference mode.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn analyze(
        &self,
        floorplan: &Floorplan,
        placement: &Placement,
    ) -> Result<ThermalMap, FlowError> {
        let (_, _, tmap) = self
            .flow
            .analyze_placement_mode(floorplan, placement, self.cached)?;
        Ok(tmap)
    }
}

/// A placement with its (lazily computed) thermal analysis — what one
/// transform stage hands to the next.
#[derive(Debug, Clone)]
pub struct TransformState {
    /// The current floorplan.
    pub floorplan: Floorplan,
    /// The current placement.
    pub placement: Placement,
    /// Per-unit regions of the current geometry (approximate after
    /// row-insertion stages; used by the wrap stage to split merged
    /// thermal blobs per hotspot source).
    pub regions: Vec<Rect>,
    thermal: Option<(ThermalMap, Vec<Hotspot>)>,
}

impl TransformState {
    /// A state with no thermal analysis yet (computed on first use).
    pub fn new(floorplan: Floorplan, placement: Placement, regions: Vec<Rect>) -> Self {
        TransformState {
            floorplan,
            placement,
            regions,
            thermal: None,
        }
    }

    /// A state whose thermal analysis is already known (the flow's
    /// memoized baseline) — no solve will be spent on it.
    pub fn with_thermal(
        floorplan: Floorplan,
        placement: Placement,
        regions: Vec<Rect>,
        tmap: ThermalMap,
        hotspots: Vec<Hotspot>,
    ) -> Self {
        TransformState {
            floorplan,
            placement,
            regions,
            thermal: Some((tmap, hotspots)),
        }
    }

    /// Computes (and memoizes) the state's thermal map and hotspots if
    /// they are not known yet.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn ensure_thermal(&mut self, ctx: &TransformContext) -> Result<(), FlowError> {
        if self.thermal.is_none() {
            let tmap = ctx.analyze(&self.floorplan, &self.placement)?;
            let hotspots = detect_hotspots(&tmap, &ctx.flow().config().hotspot);
            self.thermal = Some((tmap, hotspots));
        }
        Ok(())
    }

    /// The state's thermal map, if computed (see
    /// [`TransformState::ensure_thermal`]).
    pub fn tmap(&self) -> Option<&ThermalMap> {
        self.thermal.as_ref().map(|(t, _)| t)
    }

    /// The state's detected hotspots, if computed.
    pub fn hotspots(&self) -> Option<&[Hotspot]> {
        self.thermal.as_ref().map(|(_, h)| h.as_slice())
    }

    /// The memoized thermal analysis, as an error (not a panic) when a
    /// stage asks before [`TransformState::ensure_thermal`] ran — a bug
    /// in the transform, surfaced as [`FlowError::Internal`] so a batch
    /// degrades to one failed request instead of crashing the process.
    pub fn analysis(&self) -> Result<(&ThermalMap, &[Hotspot]), FlowError> {
        self.thermal
            .as_ref()
            .map(|(t, h)| (t, h.as_slice()))
            .ok_or_else(|| FlowError::Internal {
                detail: "transform stage read the thermal analysis before ensure_thermal"
                    .to_string(),
            })
    }
}

/// An open placement transform: the unit of the strategy engine.
///
/// Implementations must be cheap to construct (all heavy work happens in
/// [`PlacementTransform::apply`]) and deterministic — the optimization
/// loops rely on a re-run reproducing the reported numbers bit-exactly.
pub trait PlacementTransform: std::fmt::Debug + Send + Sync {
    /// Stable machine-readable id, round-tripping through
    /// [`TransformRegistry::parse`] (e.g. `eri:12`, `uniform:0.16`,
    /// `composite(eri:12+wrap)`).
    fn id(&self) -> String;

    /// The technique family (`"eri"`, `"uniform"`, `"composite"`, …) —
    /// what frontier reports group by.
    fn kind(&self) -> &'static str;

    /// The legacy [`Strategy`] this transform is the port of, if any —
    /// the compatibility facade [`crate::FlowReport`] keeps carrying.
    fn as_strategy(&self) -> Option<Strategy> {
        None
    }

    /// Predicted fractional area overhead vs the **base** placement
    /// (row-quantized where the technique is; composites compound their
    /// stages). This is what budget screening trusts to discard
    /// knowably-over-budget candidates before any exact run.
    ///
    /// # Errors
    ///
    /// Propagates flow/baseline failures.
    fn planned_overhead(&self, flow: &Flow) -> Result<f64, FlowError>;

    /// Applies the transform on top of `state`, returning the next
    /// state's geometry. `state` is mutable only so its lazily-computed
    /// thermal analysis can be memoized.
    ///
    /// # Errors
    ///
    /// Propagates placement, thermal and parameter errors.
    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError>;

    /// The screening surrogate as a map→map power redistribution **on
    /// the baseline mesh**: `power` is the current surrogate map (the
    /// baseline map, or an upstream stage's output inside a composite);
    /// the result is the map after this transform. Geometry inputs
    /// (rows, hotspots, wrap regions) always come from the flow's
    /// memoized baseline — surrogates drive candidate *screening* only,
    /// reported numbers come from exact runs.
    ///
    /// # Errors
    ///
    /// Propagates baseline failures and parameter errors.
    fn surrogate_power(&self, flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError>;

    /// The sparse [`PowerDelta`] between the flow's baseline power map
    /// and this transform's surrogate — what a
    /// [`crate::CandidateEvaluator`] prices.
    ///
    /// # Errors
    ///
    /// Propagates baseline failures and parameter errors.
    fn power_delta(&self, flow: &Flow) -> Result<PowerDelta, FlowError> {
        let base = flow.baseline_power_map()?;
        Ok(PowerDelta::between(
            base,
            &self.surrogate_power(flow, base)?,
            1e-15,
        ))
    }
}

/// Identity transform (the port of [`Strategy::None`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoneTransform;

impl PlacementTransform for NoneTransform {
    fn id(&self) -> String {
        "none".to_string()
    }

    fn kind(&self) -> &'static str {
        "none"
    }

    fn as_strategy(&self) -> Option<Strategy> {
        Some(Strategy::None)
    }

    fn planned_overhead(&self, _flow: &Flow) -> Result<f64, FlowError> {
        Ok(0.0)
    }

    fn apply(
        &self,
        _ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        Ok(state.clone())
    }

    fn surrogate_power(&self, _flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        Ok(power.clone())
    }

    fn power_delta(&self, _flow: &Flow) -> Result<PowerDelta, FlowError> {
        Ok(PowerDelta::default())
    }
}

/// Formats a fractional overhead the way transform ids spell it:
/// Rust's shortest-round-trip `Display` for `f64`, so
/// `parse(t.id())` reconstructs the transform *bit-exactly* — the
/// foundation of the frontier's "every point matches a direct run"
/// guarantee even for budgets like `1.0 / 3.0`.
fn fmt_overhead(area_overhead: f64) -> String {
    format!("{area_overhead}")
}

/// The paper's **Default** ported to the engine: re-place at a relaxed
/// utilization so `area_overhead` of extra core area spreads uniformly.
///
/// Mid-pipeline (the state is already grown) the relaxation compounds on
/// top of the state's existing overhead; note that re-placing discards
/// the incoming stage's cell arrangement, so uniform slack belongs at
/// the *head* of a composite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformSlackTransform {
    /// Extra core area as a fraction of the incoming state's area.
    pub area_overhead: f64,
}

impl PlacementTransform for UniformSlackTransform {
    fn id(&self) -> String {
        format!("uniform:{}", fmt_overhead(self.area_overhead))
    }

    fn kind(&self) -> &'static str {
        "uniform"
    }

    fn as_strategy(&self) -> Option<Strategy> {
        Some(Strategy::UniformSlack {
            area_overhead: self.area_overhead,
        })
    }

    fn planned_overhead(&self, _flow: &Flow) -> Result<f64, FlowError> {
        Ok(self.area_overhead)
    }

    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        let flow = ctx.flow();
        // Compound the state's existing growth so the relaxation is
        // relative to the incoming area; from the base state the factor
        // is exactly 1 and this reduces to the paper's formula.
        let base_area = flow.base_placement().floorplan.core().area();
        let factor = state.floorplan.core().area() / base_area;
        let combined = (1.0 + self.area_overhead) * factor - 1.0;
        let result = crate::uniform_slack(
            flow.netlist(),
            &PlacerConfig::with_utilization(flow.config().base_utilization),
            combined,
        )?;
        Ok(TransformState::new(
            result.floorplan,
            result.placement,
            result.regions,
        ))
    }

    fn surrogate_power(&self, _flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        Ok(uniform_surrogate_map(power, self.area_overhead))
    }
}

/// **ERI** ported to the engine: insert empty rows interleaved with the
/// state's hotspot rows (see [`empty_row_insertion`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyRowInsertionTransform {
    /// Number of empty rows to insert.
    pub rows: usize,
}

/// Shifts per-unit region rectangles through a row insertion: every y
/// above an inserted row moves up by one pitch per insertion below it.
/// Approximate (region edges need not be row-aligned), but the regions
/// are only used to split thermal blobs per hotspot source.
fn remap_regions_for_rows(
    regions: &[Rect],
    floorplan: &Floorplan,
    positions: &[usize],
) -> Vec<Rect> {
    let h = floorplan.row_height();
    let lly = floorplan.core().lly;
    let n = floorplan.num_rows();
    let map_y = |y: f64, top_edge: bool| {
        let rel = (y - lly) / h - if top_edge { 1e-9 } else { 0.0 };
        let row = (rel.floor().max(0.0) as usize).min(n.saturating_sub(1));
        let shift = positions.iter().filter(|&&p| p <= row).count();
        y + shift as f64 * h
    };
    regions
        .iter()
        .map(|g| Rect::new(g.llx, map_y(g.lly, false), g.urx, map_y(g.ury, true)))
        .collect()
}

impl PlacementTransform for EmptyRowInsertionTransform {
    fn id(&self) -> String {
        format!("eri:{}", self.rows)
    }

    fn kind(&self) -> &'static str {
        "eri"
    }

    fn as_strategy(&self) -> Option<Strategy> {
        Some(Strategy::EmptyRowInsertion { rows: self.rows })
    }

    fn planned_overhead(&self, flow: &Flow) -> Result<f64, FlowError> {
        let rows0 = flow.base_placement().floorplan.num_rows();
        Ok(self.rows as f64 / rows0.max(1) as f64)
    }

    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        state.ensure_thermal(ctx)?;
        let (tmap, hotspots) = state.analysis()?;
        let (fp, pl, report) = empty_row_insertion(
            ctx.flow().netlist(),
            &state.floorplan,
            &state.placement,
            tmap,
            hotspots,
            self.rows,
        )?;
        let regions = remap_regions_for_rows(
            &state.regions,
            &state.floorplan,
            &report.insertion_positions,
        );
        Ok(TransformState::new(fp, pl, regions))
    }

    fn surrogate_power(&self, flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        let (tmap, hotspots) = flow.baseline_thermal()?;
        let fp = &flow.base_placement().floorplan;
        let positions = eri_insertion_positions(fp, tmap, hotspots, self.rows)?;
        Ok(eri_surrogate_map(power, fp, &positions))
    }
}

/// *New technique*: temperature-profile-driven **targeted** row
/// insertion. Where ERI interleaves rows through detected hotspot bands
/// (wrapping around early), this ranks every row gap by the peak
/// temperature of its adjacent rows over the whole map and fills the
/// hottest *distinct* gaps first — no hotspot detection in the loop, so
/// it also works on diffuse profiles ERI rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetedRowInsertionTransform {
    /// Number of empty rows to insert.
    pub rows: usize,
}

impl PlacementTransform for TargetedRowInsertionTransform {
    fn id(&self) -> String {
        format!("targeted-eri:{}", self.rows)
    }

    fn kind(&self) -> &'static str {
        "targeted-eri"
    }

    fn planned_overhead(&self, flow: &Flow) -> Result<f64, FlowError> {
        let rows0 = flow.base_placement().floorplan.num_rows();
        Ok(self.rows as f64 / rows0.max(1) as f64)
    }

    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        state.ensure_thermal(ctx)?;
        let (tmap, _) = state.analysis()?;
        let positions = targeted_insertion_positions(&state.floorplan, tmap, self.rows)?;
        let (fp, mapping) = state.floorplan.with_rows_inserted(&positions);
        let mut placement = state.placement.remap_rows(&fp, &mapping);
        fill_whitespace(ctx.flow().netlist(), &fp, &mut placement)?;
        let regions = remap_regions_for_rows(&state.regions, &state.floorplan, &positions);
        Ok(TransformState::new(fp, placement, regions))
    }

    fn surrogate_power(&self, flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        let (tmap, _) = flow.baseline_thermal()?;
        let fp = &flow.base_placement().floorplan;
        let positions = targeted_insertion_positions(fp, tmap, self.rows)?;
        Ok(eri_surrogate_map(power, fp, &positions))
    }
}

/// The wrap *stage*: detect the hotspot cores of the incoming state,
/// ring them, evict cold cells and re-spread the hot ones — the second
/// half of the paper's HW, usable after any area-spending stage. Spends
/// no area itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrapHotspotsTransform;

impl WrapHotspotsTransform {
    /// The wrap regions the stage would target on the flow's baseline —
    /// the geometry its screening surrogate pools power over.
    fn baseline_regions(flow: &Flow) -> Result<Vec<Rect>, FlowError> {
        let (tmap, _) = flow.baseline_thermal()?;
        let hotspot_cfg = flow.wrapper_hotspot_config();
        let blobs = detect_hotspots(tmap, &hotspot_cfg);
        let spots = split_hotspots_by_regions(
            tmap,
            &blobs,
            &flow.base_placement().regions,
            hotspot_cfg.min_bins,
        );
        Ok(wrap_regions(
            &spots,
            &flow.base_placement().floorplan,
            &flow.config().wrapper,
        ))
    }
}

impl PlacementTransform for WrapHotspotsTransform {
    fn id(&self) -> String {
        "wrap".to_string()
    }

    fn kind(&self) -> &'static str {
        "wrap"
    }

    fn planned_overhead(&self, _flow: &Flow) -> Result<f64, FlowError> {
        Ok(0.0)
    }

    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        let flow = ctx.flow();
        state.ensure_thermal(ctx)?;
        let (tmap, _) = state.analysis()?;
        // Resolution-aware thresholds, as in the enum-era HW arm: a
        // fixed min_bins lets sliver hotspots through on fine meshes.
        let hotspot_cfg = flow.wrapper_hotspot_config();
        let blobs = detect_hotspots(tmap, &hotspot_cfg);
        let spots = split_hotspots_by_regions(tmap, &blobs, &state.regions, hotspot_cfg.min_bins);
        let regions = wrap_regions(&spots, &state.floorplan, &flow.config().wrapper);
        let mut placement = state.placement.clone();
        hotspot_wrapper(
            flow.netlist(),
            &state.floorplan,
            &mut placement,
            &regions,
            ctx.power_report(),
            &flow.config().wrapper,
        )?;
        Ok(TransformState::new(
            state.floorplan.clone(),
            placement,
            state.regions.clone(),
        ))
    }

    fn surrogate_power(&self, flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        Ok(wrap_surrogate_map(power, &Self::baseline_regions(flow)?))
    }
}

/// **HW** ported to the engine: the paper's hotspot wrapper — uniform
/// slack at the given overhead, then wrap the hotspots the relaxed
/// placement exhibits. Equivalent to
/// `composite(uniform:…+wrap)` but keeps its own id and [`Strategy`]
/// facade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotWrapperTransform {
    /// Extra core area as a fraction of the base area, realized by
    /// utilization relaxation before wrapping.
    pub area_overhead: f64,
}

impl PlacementTransform for HotspotWrapperTransform {
    fn id(&self) -> String {
        format!("hw:{}", fmt_overhead(self.area_overhead))
    }

    fn kind(&self) -> &'static str {
        "hw"
    }

    fn as_strategy(&self) -> Option<Strategy> {
        Some(Strategy::HotspotWrapper {
            area_overhead: self.area_overhead,
        })
    }

    fn planned_overhead(&self, _flow: &Flow) -> Result<f64, FlowError> {
        Ok(self.area_overhead)
    }

    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        let mut relaxed = UniformSlackTransform {
            area_overhead: self.area_overhead,
        }
        .apply(ctx, state)?;
        WrapHotspotsTransform.apply(ctx, &mut relaxed)
    }

    fn surrogate_power(&self, flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        let diluted = uniform_surrogate_map(power, self.area_overhead);
        Ok(wrap_surrogate_map(
            &diluted,
            &WrapHotspotsTransform::baseline_regions(flow)?,
        ))
    }
}

/// The spread *stage*: pull each row's whitespace laterally into its hot
/// bins. Cells keep their row and order; the gaps between them are
/// re-allocated in proportion to the local temperature, so fillers
/// concentrate exactly where the profile peaks (whitespace shaping, not
/// blind dilution). Spends no area itself — stack it on an area-spending
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpreadFillersTransform;

impl PlacementTransform for SpreadFillersTransform {
    fn id(&self) -> String {
        "spread".to_string()
    }

    fn kind(&self) -> &'static str {
        "spread"
    }

    fn planned_overhead(&self, _flow: &Flow) -> Result<f64, FlowError> {
        Ok(0.0)
    }

    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        let flow = ctx.flow();
        let netlist = flow.netlist();
        state.ensure_thermal(ctx)?;
        let (tmap, _) = state.analysis()?;
        let grid = tmap.grid();
        let (floor, peak) = (grid.min_bin(), grid.max_bin());
        let (tmin, tmax) = match (floor, peak) {
            (Some((_, lo)), Some((_, hi))) => (lo, hi),
            _ => (0.0, 0.0),
        };
        let span = (tmax - tmin).max(1e-9);
        let fp = state.floorplan.clone();
        let mut placement = state.placement.clone();
        for row in 0..fp.num_rows() as u32 {
            let cells = placement.row_cells(row);
            if cells.is_empty() {
                continue;
            }
            // Per-cell heat: the thermal bin under the cell's current
            // center, normalized to [~0.1, 1.1] so cold rows still get
            // a floor share and the allocation never degenerates.
            let heat: Vec<f64> = cells
                .iter()
                .map(|&(_, id, _)| {
                    placement
                        .cell_center(netlist, &fp, id)
                        .and_then(|c| grid.bin_of(c.x, c.y))
                        .map(|(ix, iy)| (*grid.get(ix, iy) - tmin) / span)
                        .unwrap_or(0.0)
                        + 0.1
                })
                .collect();
            // Gap weights: each of the n+1 gaps is as hot as its hotter
            // neighbour, so whitespace opens around the hot cells.
            let (first, last) = match (heat.first(), heat.last()) {
                (Some(&first), Some(&last)) => (first, last),
                _ => continue, // empty rows were skipped above
            };
            let mut gaps = Vec::with_capacity(heat.len() + 1);
            gaps.push(first);
            for pair in heat.windows(2) {
                gaps.push(pair[0].max(pair[1]));
            }
            gaps.push(last);
            let used: u32 = cells.iter().map(|&(_, _, w)| w).sum();
            let free = fp.row(row as usize).num_sites.saturating_sub(used);
            let alloc = weighted_row_gaps(free, &gaps);
            respread_row(netlist, &fp, &mut placement, row, &alloc);
        }
        fill_whitespace(netlist, &fp, &mut placement)?;
        Ok(TransformState::new(fp, placement, state.regions.clone()))
    }

    fn surrogate_power(&self, flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        let (tmap, _) = flow.baseline_thermal()?;
        Ok(spread_surrogate_map(power, tmap))
    }
}

/// The spread stage's screening surrogate: within each mesh row, bins
/// stretch laterally in proportion to their temperature (power mass
/// conserved per row), mimicking whitespace flowing toward the hot bins.
fn spread_surrogate_map(power: &Grid2d<f64>, tmap: &ThermalMap) -> Grid2d<f64> {
    let grid = tmap.grid();
    let nx = power.nx();
    let ny = power.ny();
    if nx == 0 || ny == 0 || grid.nx() != nx || grid.ny() != ny {
        return power.clone();
    }
    let (tmin, tmax) = match (grid.min_bin(), grid.max_bin()) {
        (Some((_, lo)), Some((_, hi))) => (lo, hi),
        _ => return power.clone(),
    };
    let span = (tmax - tmin).max(1e-9);
    let width = power.extent().width();
    let mut out = Grid2d::new(nx, ny, power.extent(), 0.0);
    for iy in 0..ny {
        // Stretched widths ∝ heat, renormalized to the die width.
        let weights: Vec<f64> = (0..nx)
            .map(|ix| (*grid.get(ix, iy) - tmin) / span + 0.1)
            .collect();
        let total: f64 = weights.iter().sum();
        let bin_w = width / nx as f64;
        let mut cursor = 0.0f64;
        for (ix, weight) in weights.iter().enumerate() {
            let w = weight / total * width;
            let (lo, hi) = (cursor, cursor + w);
            cursor = hi;
            let p = *power.get(ix, iy);
            if p <= 0.0 {
                continue;
            }
            // Deposit the stretched interval onto destination bins.
            let j0 = ((lo / bin_w).floor().max(0.0) as usize).min(nx - 1);
            let j1 = ((hi / bin_w).ceil() as usize).clamp(j0 + 1, nx);
            for jx in j0..j1 {
                let (d0, d1) = (jx as f64 * bin_w, (jx + 1) as f64 * bin_w);
                let overlap = (hi.min(d1) - lo.max(d0)).max(0.0);
                if overlap > 0.0 {
                    *out.get_mut(jx, iy) += p * overlap / w.max(1e-12);
                }
            }
        }
    }
    out
}

/// *New technique*: **hot-bin filler spreading** — uniform slack at the
/// given overhead, then each row's whitespace pulled into its hot bins
/// (see [`SpreadFillersTransform`]). Same area as the Default at the
/// same budget, but the fillers land where the temperature profile
/// peaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotBinSpreadTransform {
    /// Extra core area as a fraction of the base area.
    pub area_overhead: f64,
}

impl PlacementTransform for HotBinSpreadTransform {
    fn id(&self) -> String {
        format!("hot-spread:{}", fmt_overhead(self.area_overhead))
    }

    fn kind(&self) -> &'static str {
        "hot-spread"
    }

    fn planned_overhead(&self, _flow: &Flow) -> Result<f64, FlowError> {
        Ok(self.area_overhead)
    }

    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        let mut relaxed = UniformSlackTransform {
            area_overhead: self.area_overhead,
        }
        .apply(ctx, state)?;
        SpreadFillersTransform.apply(ctx, &mut relaxed)
    }

    fn surrogate_power(&self, flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        let diluted = uniform_surrogate_map(power, self.area_overhead);
        SpreadFillersTransform.surrogate_power(flow, &diluted)
    }
}

/// An ordered pipeline of transforms with an explicit per-stage budget
/// split — the generalization of HW's implicit "uniform-then-wrap" into
/// arbitrary stacks (`eri→wrap`, `targeted→spread`, `uniform→eri`, …).
///
/// Each stage applies on the previous stage's output state; surrogates
/// compose the same way (stage N's surrogate transforms stage N−1's
/// surrogate map). Re-placing stages ([`UniformSlackTransform`]) belong
/// at the head of a pipeline — they rebuild the placement from scratch.
#[derive(Debug)]
pub struct CompositeTransform {
    stages: Vec<Box<dyn PlacementTransform>>,
}

impl CompositeTransform {
    /// Wraps an ordered stage list.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::BadStrategy`] for an empty pipeline.
    pub fn new(stages: Vec<Box<dyn PlacementTransform>>) -> Result<Self, FlowError> {
        if stages.is_empty() {
            return Err(FlowError::BadStrategy {
                detail: "composite transform needs at least one stage".to_string(),
            });
        }
        Ok(CompositeTransform { stages })
    }

    /// The pipeline's stages, in application order.
    pub fn stages(&self) -> &[Box<dyn PlacementTransform>] {
        &self.stages
    }
}

impl PlacementTransform for CompositeTransform {
    fn id(&self) -> String {
        let parts: Vec<String> = self.stages.iter().map(|s| s.id()).collect();
        format!("composite({})", parts.join("+"))
    }

    fn kind(&self) -> &'static str {
        "composite"
    }

    fn planned_overhead(&self, flow: &Flow) -> Result<f64, FlowError> {
        let mut growth = 1.0;
        for stage in &self.stages {
            growth *= 1.0 + stage.planned_overhead(flow)?;
        }
        Ok(growth - 1.0)
    }

    fn apply(
        &self,
        ctx: &TransformContext,
        state: &mut TransformState,
    ) -> Result<TransformState, FlowError> {
        let mut current: Option<TransformState> = None;
        for stage in &self.stages {
            let next = match current.as_mut() {
                None => stage.apply(ctx, state)?,
                Some(s) => stage.apply(ctx, s)?,
            };
            current = Some(next);
        }
        current.ok_or_else(|| FlowError::Internal {
            detail: "composite transform applied with an empty stage list".to_string(),
        })
    }

    fn surrogate_power(&self, flow: &Flow, power: &Grid2d<f64>) -> Result<Grid2d<f64>, FlowError> {
        let mut map = power.clone();
        for stage in &self.stages {
            map = stage.surrogate_power(flow, &map)?;
        }
        Ok(map)
    }
}

/// A budget-parameterized transform family: given a flow and a
/// fractional area budget, builds the concrete transform the family
/// realizes at that budget (row counts quantized *down*, so the planned
/// overhead never knowably exceeds the budget except through the
/// one-row minimum).
pub struct TransformFactory {
    kind: String,
    build: FactoryFn,
}

/// The boxed builder a [`TransformFactory`] wraps: flow + fractional
/// budget in, concrete transform out.
type FactoryFn =
    Box<dyn Fn(&Flow, f64) -> Result<Box<dyn PlacementTransform>, FlowError> + Send + Sync>;

impl std::fmt::Debug for TransformFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformFactory")
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl TransformFactory {
    /// Wraps a builder closure under a family name.
    pub fn new(
        kind: impl Into<String>,
        build: impl Fn(&Flow, f64) -> Result<Box<dyn PlacementTransform>, FlowError>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        TransformFactory {
            kind: kind.into(),
            build: Box::new(build),
        }
    }

    /// The family name (`"eri"`, `"uniform+eri"`, …).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Builds the family's transform at `budget` (a fraction of the base
    /// area, e.g. `0.16`).
    ///
    /// # Errors
    ///
    /// Propagates builder failures (e.g. a degenerate budget).
    pub fn at_budget(
        &self,
        flow: &Flow,
        budget: f64,
    ) -> Result<Box<dyn PlacementTransform>, FlowError> {
        (self.build)(flow, budget)
    }
}

/// The empty-row count a fractional budget buys, quantized down (always
/// at least one row — the technique's minimum grain).
pub fn rows_for_budget(flow: &Flow, budget: f64) -> usize {
    let rows0 = flow.base_placement().floorplan.num_rows();
    (((budget.max(0.0) * rows0 as f64).floor()) as usize).max(1)
}

/// An open set of [`TransformFactory`]s — the search space the Pareto
/// optimizer screens. Start from [`TransformRegistry::standard`] and
/// [`TransformRegistry::register`] your own families.
#[derive(Debug, Default)]
pub struct TransformRegistry {
    factories: Vec<TransformFactory>,
}

impl TransformRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TransformRegistry::default()
    }

    /// Every built-in technique: the three ported paper techniques, the
    /// two new ones, and three composite pipelines (with a 50/50 budget
    /// split where both stages spend area).
    pub fn standard() -> Self {
        let mut registry = TransformRegistry::new();
        registry.register(TransformFactory::new("uniform", |_, b| {
            Ok(Box::new(UniformSlackTransform { area_overhead: b }))
        }));
        registry.register(TransformFactory::new("eri", |flow, b| {
            Ok(Box::new(EmptyRowInsertionTransform {
                rows: rows_for_budget(flow, b),
            }))
        }));
        registry.register(TransformFactory::new("hw", |_, b| {
            Ok(Box::new(HotspotWrapperTransform { area_overhead: b }))
        }));
        registry.register(TransformFactory::new("targeted-eri", |flow, b| {
            Ok(Box::new(TargetedRowInsertionTransform {
                rows: rows_for_budget(flow, b),
            }))
        }));
        registry.register(TransformFactory::new("hot-spread", |_, b| {
            Ok(Box::new(HotBinSpreadTransform { area_overhead: b }))
        }));
        registry.register(TransformFactory::new("eri+wrap", |flow, b| {
            Ok(Box::new(CompositeTransform::new(vec![
                Box::new(EmptyRowInsertionTransform {
                    rows: rows_for_budget(flow, b),
                }),
                Box::new(WrapHotspotsTransform),
            ])?))
        }));
        registry.register(TransformFactory::new("targeted-eri+spread", |flow, b| {
            Ok(Box::new(CompositeTransform::new(vec![
                Box::new(TargetedRowInsertionTransform {
                    rows: rows_for_budget(flow, b),
                }),
                Box::new(SpreadFillersTransform),
            ])?))
        }));
        registry.register(TransformFactory::new("uniform+eri", |flow, b| {
            Ok(Box::new(CompositeTransform::new(vec![
                Box::new(UniformSlackTransform {
                    area_overhead: b / 2.0,
                }),
                Box::new(EmptyRowInsertionTransform {
                    rows: rows_for_budget(flow, b / 2.0),
                }),
            ])?))
        }));
        registry
    }

    /// Adds a family to the registry.
    pub fn register(&mut self, factory: TransformFactory) {
        self.factories.push(factory);
    }

    /// The registered families, in registration order.
    pub fn factories(&self) -> &[TransformFactory] {
        &self.factories
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    /// Parses a stable transform id (see [`PlacementTransform::id`])
    /// back into the transform it names: the deserialization half of the
    /// engine's serde facade. Round-trip guarantee:
    /// `parse(t.id())?.id() == t.id()` for every built-in transform,
    /// composites included.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::BadStrategy`] for an unknown or malformed
    /// id.
    pub fn parse(id: &str) -> Result<Box<dyn PlacementTransform>, FlowError> {
        let bad = |detail: String| FlowError::BadStrategy { detail };
        let parse_f64 = |s: &str, what: &str| -> Result<f64, FlowError> {
            s.parse::<f64>()
                .map_err(|_| bad(format!("transform id `{what}`: bad number `{s}`")))
        };
        let parse_usize = |s: &str, what: &str| -> Result<usize, FlowError> {
            s.parse::<usize>()
                .map_err(|_| bad(format!("transform id `{what}`: bad count `{s}`")))
        };
        let id = id.trim();
        if let Some(inner) = id
            .strip_prefix("composite(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            // Split at top-level '+' only: stage ids may themselves be
            // composites carrying '+' inside their parentheses.
            let mut stages: Vec<Box<dyn PlacementTransform>> = Vec::new();
            let mut depth = 0usize;
            let mut start = 0usize;
            for (i, c) in inner.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => depth = depth.saturating_sub(1),
                    '+' if depth == 0 => {
                        stages.push(Self::parse(&inner[start..i])?);
                        start = i + 1;
                    }
                    _ => {}
                }
            }
            stages.push(Self::parse(&inner[start..])?);
            return Ok(Box::new(CompositeTransform::new(stages)?));
        }
        match id {
            "none" => return Ok(Box::new(NoneTransform)),
            "wrap" => return Ok(Box::new(WrapHotspotsTransform)),
            "spread" => return Ok(Box::new(SpreadFillersTransform)),
            _ => {}
        }
        let (head, param) = id
            .split_once(':')
            .ok_or_else(|| bad(format!("unknown transform id `{id}`")))?;
        match head {
            "uniform" => Ok(Box::new(UniformSlackTransform {
                area_overhead: parse_f64(param, id)?,
            })),
            "hw" => Ok(Box::new(HotspotWrapperTransform {
                area_overhead: parse_f64(param, id)?,
            })),
            "hot-spread" => Ok(Box::new(HotBinSpreadTransform {
                area_overhead: parse_f64(param, id)?,
            })),
            "eri" => Ok(Box::new(EmptyRowInsertionTransform {
                rows: parse_usize(param, id)?,
            })),
            "targeted-eri" => Ok(Box::new(TargetedRowInsertionTransform {
                rows: parse_usize(param, id)?,
            })),
            _ => Err(bad(format!("unknown transform id `{id}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_the_parser() {
        let ids = [
            "none",
            "wrap",
            "spread",
            "uniform:0.16",
            "hw:0.08",
            "hot-spread:0.25",
            "eri:12",
            "targeted-eri:7",
            "composite(eri:12+wrap)",
            "composite(uniform:0.08+eri:4)",
            "composite(targeted-eri:6+spread)",
            "composite(composite(eri:2+wrap)+spread)",
        ];
        for id in ids {
            let parsed = TransformRegistry::parse(id).unwrap();
            assert_eq!(parsed.id(), id, "round-trip failed");
        }
    }

    #[test]
    fn malformed_ids_are_rejected() {
        for id in [
            "",
            "frobnicate",
            "uniform",
            "eri:x",
            "uniform:?",
            "composite()",
        ] {
            assert!(TransformRegistry::parse(id).is_err(), "`{id}` should fail");
        }
    }

    #[test]
    fn strategy_facade_maps_both_ways() {
        let eri = EmptyRowInsertionTransform { rows: 9 };
        assert_eq!(
            eri.as_strategy(),
            Some(Strategy::EmptyRowInsertion { rows: 9 })
        );
        assert_eq!(
            Strategy::EmptyRowInsertion { rows: 9 }.to_transform().id(),
            "eri:9"
        );
        assert!(TargetedRowInsertionTransform { rows: 3 }
            .as_strategy()
            .is_none());
        assert!(WrapHotspotsTransform.as_strategy().is_none());
    }

    #[test]
    fn composite_rejects_empty_pipelines() {
        assert!(CompositeTransform::new(Vec::new()).is_err());
    }

    #[test]
    fn spread_surrogate_conserves_row_power_and_flattens_peaks() {
        let die = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut power = Grid2d::new(8, 8, die, 0.0);
        *power.get_mut(4, 2) = 8e-3;
        *power.get_mut(5, 2) = 2e-3;
        let mut heat = Grid2d::new(8, 8, die, 30.0);
        *heat.get_mut(4, 2) = 42.0;
        *heat.get_mut(5, 2) = 36.0;
        let tmap = ThermalMap::new(heat, 25.0);
        let out = spread_surrogate_map(&power, &tmap);
        let row_in: f64 = (0..8).map(|ix| *power.get(ix, 2)).sum();
        let row_out: f64 = (0..8).map(|ix| *out.get(ix, 2)).sum();
        assert!((row_in - row_out).abs() < 1e-12, "row power conserved");
        let peak_in = (0..8).map(|ix| *power.get(ix, 2)).fold(0.0, f64::max);
        let peak_out = (0..8).map(|ix| *out.get(ix, 2)).fold(0.0, f64::max);
        assert!(
            peak_out < peak_in,
            "hot bins must stretch: {peak_out} vs {peak_in}"
        );
    }
}
