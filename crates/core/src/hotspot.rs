//! Thermal-map hotspot detection and classification.
//!
//! Working post-placement, the flow knows both the functional information
//! (switching activity → power) and the physical information (cell
//! positions), "so as to exactly localize the thermal hotspots": we
//! threshold the thermal map and extract connected components.

use geom::Rect;
use serde::{Deserialize, Serialize};
use thermalsim::ThermalMap;

/// Hotspot-detection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotConfig {
    /// Threshold position between mean and peak rise: a bin is hot when
    /// `T > mean + threshold_fraction · (peak − mean)`. 0 marks every
    /// above-average bin, 1 only the peak.
    pub threshold_fraction: f64,
    /// Components with fewer bins are ignored (noise).
    pub min_bins: usize,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            threshold_fraction: 0.5,
            min_bins: 2,
        }
    }
}

impl HotspotConfig {
    /// Lateral cell count (`nx · ny`) the bin-count thresholds are tuned
    /// at — a 20×20 mesh, the coarse end of the paper's configurations.
    pub const REFERENCE_MESH_CELLS: usize = 400;

    /// Makes the bin-count threshold resolution-aware: `min_bins` names a
    /// *die-area* floor at the reference mesh, so on finer meshes (more
    /// cells per unit area) it scales up by cells-per-reference-cell.
    /// Without this, a fixed `min_bins` lets single-bin detection noise
    /// through on fine meshes — slivers whose wrap regions are too thin
    /// to absorb their hot cells (the ≥ 28×28 wrapper failure). Coarser
    /// meshes keep the configured value unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use postplace::HotspotConfig;
    ///
    /// let config = HotspotConfig::default(); // min_bins = 2 at 20×20
    /// assert_eq!(config.scaled_for_mesh(16, 16).min_bins, 2);
    /// assert_eq!(config.scaled_for_mesh(28, 28).min_bins, 4);
    /// assert_eq!(config.scaled_for_mesh(40, 40).min_bins, 8);
    /// ```
    pub fn scaled_for_mesh(&self, nx: usize, ny: usize) -> HotspotConfig {
        let scale = (nx * ny) as f64 / Self::REFERENCE_MESH_CELLS as f64;
        HotspotConfig {
            min_bins: ((self.min_bins as f64 * scale).ceil() as usize).max(self.min_bins),
            ..*self
        }
    }
}

/// One detected hotspot: a connected set of hot thermal bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// The bins belonging to the component.
    pub bins: Vec<(usize, usize)>,
    /// Bounding box in die coordinates.
    pub bbox: Rect,
    /// Peak absolute temperature inside the component, °C.
    pub peak_c: f64,
    /// Component area in µm².
    pub area_um2: f64,
}

/// Hotspot-pattern classification, deciding which technique fits
/// (the paper: ERI "is particularly useful" for wide/large hotspots, the
/// wrapper "for small concentrated hotspots").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotspotClass {
    /// Several small hotspots spread over the die (the paper's test 1).
    ScatteredSmall,
    /// One large concentrated hotspot (the paper's test 2).
    ConcentratedLarge,
    /// No significant thermal structure.
    Uniform,
}

/// Detects hotspots by thresholding and 4-connected component labelling.
/// Components are returned hottest first.
pub fn detect_hotspots(map: &ThermalMap, config: &HotspotConfig) -> Vec<Hotspot> {
    let grid = map.grid();
    let (nx, ny) = (grid.nx(), grid.ny());
    let peak = map.peak_bin().1;
    let mean = grid.mean();
    if peak - mean < 1e-9 {
        return Vec::new(); // numerically flat map
    }
    let threshold = mean + config.threshold_fraction * (peak - mean);
    let hot = |ix: usize, iy: usize| *grid.get(ix, iy) > threshold;
    let mut visited = vec![false; nx * ny];
    let mut hotspots = Vec::new();
    for sy in 0..ny {
        for sx in 0..nx {
            if visited[sy * nx + sx] || !hot(sx, sy) {
                continue;
            }
            // Flood fill.
            let mut bins = Vec::new();
            let mut stack = vec![(sx, sy)];
            visited[sy * nx + sx] = true;
            while let Some((x, y)) = stack.pop() {
                bins.push((x, y));
                let mut push = |x: usize, y: usize, stack: &mut Vec<(usize, usize)>| {
                    if !visited[y * nx + x] && hot(x, y) {
                        visited[y * nx + x] = true;
                        stack.push((x, y));
                    }
                };
                if x > 0 {
                    push(x - 1, y, &mut stack);
                }
                if x + 1 < nx {
                    push(x + 1, y, &mut stack);
                }
                if y > 0 {
                    push(x, y - 1, &mut stack);
                }
                if y + 1 < ny {
                    push(x, y + 1, &mut stack);
                }
            }
            if bins.len() < config.min_bins {
                continue;
            }
            let mut bbox = grid.bin_rect(bins[0].0, bins[0].1);
            let mut peak_c = f64::MIN;
            for &(x, y) in &bins {
                bbox = bbox.union(&grid.bin_rect(x, y));
                peak_c = peak_c.max(*grid.get(x, y));
            }
            let bin_area = grid.bin_width() * grid.bin_height();
            hotspots.push(Hotspot {
                area_um2: bins.len() as f64 * bin_area,
                bins,
                bbox,
                peak_c,
            });
        }
    }
    hotspots.sort_by(|a, b| b.peak_c.total_cmp(&a.peak_c));
    hotspots
}

/// Splits hotspots along placement-region boundaries.
///
/// Workload-driven hotspots frequently merge into one connected thermal
/// blob spanning several units (heat diffuses across region borders).
/// The paper's wrapper is applied per hotspot *source* — "cells belonging
/// to other units \[are\] placed outside the specified region" — so each
/// blob is intersected with the unit regions and split into one hotspot
/// per overlapped region. Pieces smaller than `min_bins` are dropped.
pub fn split_hotspots_by_regions(
    map: &ThermalMap,
    hotspots: &[Hotspot],
    regions: &[Rect],
    min_bins: usize,
) -> Vec<Hotspot> {
    let grid = map.grid();
    let bin_area = grid.bin_width() * grid.bin_height();
    let mut out = Vec::new();
    for h in hotspots {
        for region in regions {
            let bins: Vec<(usize, usize)> = h
                .bins
                .iter()
                .copied()
                .filter(|&(x, y)| region.contains(grid.bin_rect(x, y).center()))
                .collect();
            if bins.len() < min_bins {
                continue;
            }
            let mut bbox = grid.bin_rect(bins[0].0, bins[0].1);
            let mut peak_c = f64::MIN;
            for &(x, y) in &bins {
                bbox = bbox.union(&grid.bin_rect(x, y));
                peak_c = peak_c.max(*grid.get(x, y));
            }
            out.push(Hotspot {
                area_um2: bins.len() as f64 * bin_area,
                bins,
                bbox,
                peak_c,
            });
        }
    }
    out.sort_by(|a, b| b.peak_c.total_cmp(&a.peak_c));
    out
}

/// Classifies a hotspot pattern.
///
/// A single component covering a large share of the total hot area (or a
/// sizeable die fraction) is *concentrated*; several comparable components
/// are *scattered*; nothing significant is *uniform*.
pub fn classify_hotspots(hotspots: &[Hotspot], die: Rect) -> HotspotClass {
    if hotspots.is_empty() {
        return HotspotClass::Uniform;
    }
    let total: f64 = hotspots.iter().map(|h| h.area_um2).sum();
    let largest = hotspots.iter().map(|h| h.area_um2).fold(f64::MIN, f64::max);
    let die_fraction = largest / die.area();
    if largest / total > 0.7 || die_fraction > 0.15 {
        HotspotClass::ConcentratedLarge
    } else {
        HotspotClass::ScatteredSmall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Grid2d;

    fn map_from(fill: f64, spots: &[(usize, usize, f64)]) -> ThermalMap {
        let mut g = Grid2d::new(16, 16, Rect::new(0.0, 0.0, 160.0, 160.0), fill);
        for &(x, y, t) in spots {
            *g.get_mut(x, y) = t;
        }
        ThermalMap::new(g, 25.0)
    }

    #[test]
    fn flat_map_has_no_hotspots() {
        let map = map_from(30.0, &[]);
        assert!(detect_hotspots(&map, &HotspotConfig::default()).is_empty());
        assert_eq!(classify_hotspots(&[], map.die()), HotspotClass::Uniform);
    }

    #[test]
    fn single_blob_is_one_component() {
        let map = map_from(
            30.0,
            &[(4, 4, 40.0), (5, 4, 41.0), (4, 5, 40.5), (5, 5, 42.0)],
        );
        let spots = detect_hotspots(&map, &HotspotConfig::default());
        assert_eq!(spots.len(), 1);
        assert_eq!(spots[0].bins.len(), 4);
        assert_eq!(spots[0].peak_c, 42.0);
        // Bbox covers bins (4..6, 4..6) → 20 µm × 20 µm.
        assert!((spots[0].bbox.width() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn distant_blobs_are_separate_components() {
        let map = map_from(
            30.0,
            &[(2, 2, 40.0), (3, 2, 40.0), (12, 12, 39.0), (12, 13, 39.5)],
        );
        let spots = detect_hotspots(&map, &HotspotConfig::default());
        assert_eq!(spots.len(), 2);
        // Sorted hottest first.
        assert!(spots[0].peak_c >= spots[1].peak_c);
    }

    #[test]
    fn diagonal_adjacency_does_not_connect() {
        let map = map_from(30.0, &[(4, 4, 40.0), (5, 5, 40.0)]);
        let cfg = HotspotConfig {
            min_bins: 1,
            ..Default::default()
        };
        assert_eq!(detect_hotspots(&map, &cfg).len(), 2);
    }

    #[test]
    fn threshold_fraction_controls_sensitivity() {
        let map = map_from(30.0, &[(4, 4, 40.0), (8, 8, 34.0), (8, 9, 34.0)]);
        let strict = HotspotConfig {
            threshold_fraction: 0.9,
            min_bins: 1,
        };
        let lax = HotspotConfig {
            threshold_fraction: 0.3,
            min_bins: 1,
        };
        assert!(detect_hotspots(&map, &strict).len() < detect_hotspots(&map, &lax).len());
    }

    #[test]
    fn classification_separates_paper_test_sets() {
        let die = Rect::new(0.0, 0.0, 160.0, 160.0);
        // Four small scattered blobs.
        let scattered: Vec<Hotspot> = (0..4)
            .map(|i| Hotspot {
                bins: vec![(i, i)],
                bbox: Rect::new(0.0, 0.0, 10.0, 10.0),
                peak_c: 40.0,
                area_um2: 400.0,
            })
            .collect();
        assert_eq!(
            classify_hotspots(&scattered, die),
            HotspotClass::ScatteredSmall
        );
        // One big blob.
        let big = vec![Hotspot {
            bins: vec![(0, 0)],
            bbox: Rect::new(0.0, 0.0, 80.0, 80.0),
            peak_c: 45.0,
            area_um2: 6400.0,
        }];
        assert_eq!(
            classify_hotspots(&big, die),
            HotspotClass::ConcentratedLarge
        );
    }
}
