//! The typed request/response surface of the optimization engine.
//!
//! An [`OptimizeRequest`] names *what to evaluate* — workload, mesh,
//! and a goal (one transform, the budget search, a Pareto frontier, or
//! the minimal-row search) — and [`Flow::optimize`] dispatches it into
//! the existing machinery, returning an [`OptimizeResponse`] whose
//! [`OptimizeOutcome`] carries the same report types the loose-argument
//! entry points used to return. The loose entry points
//! ([`crate::run_sweep`], [`crate::best_strategy_within_budget`],
//! [`crate::pareto_frontier`]) survive as deprecated shims over this
//! path and stay bit-identical to it.
//!
//! [`CacheKey`] is the stable (process-independent) content hash the
//! `coolserved` result cache persists to disk: request fingerprints key
//! the job queue, and [`Flow::content_key`] folds in the geometry,
//! stack and baseline power map for the result tier.
//!
//! # Examples
//!
//! ```no_run
//! use postplace::{Flow, FlowConfig, OptimizeRequest, WorkloadSpec};
//!
//! # fn main() -> Result<(), postplace::FlowError> {
//! let config = FlowConfig::scattered_small().fast();
//! let request = OptimizeRequest::builder()
//!     .workload(config.workload.clone())
//!     .mesh(16, 16)
//!     .transform("eri:8")
//!     .build()?;
//! let flow = Flow::new(config)?;
//! let response = flow.optimize(&request)?;
//! let report = response.report().expect("a transform goal yields a report");
//! println!("{} -> {:.2}%", report.transform_id, report.reduction_pct());
//! # Ok(())
//! # }
//! ```

use crate::{
    BudgetOptimum, Flow, FlowConfig, FlowError, FlowReport, OptimizeConfig, ParetoFrontier,
    RowOptimum, Strategy, TransformRegistry, WorkloadSpec,
};
use arithgen::UnitRole;
use serde::{Deserialize, Serialize};

/// A 128-bit stable content hasher: two FNV-1a lanes over the same byte
/// stream, seeded differently. Not cryptographic — it keys caches, it
/// does not authenticate them — but identical across processes and
/// releases, which `std`'s `DefaultHasher` does not promise.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

impl StableHasher {
    const OFFSET_LO: u64 = 0xcbf2_9ce4_8422_2325;
    /// Second lane: the FNV offset perturbed by the golden-ratio
    /// constant, so the lanes decorrelate from the first byte on.
    const OFFSET_HI: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        StableHasher {
            lo: Self::OFFSET_LO,
            hi: Self::OFFSET_HI,
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(Self::PRIME);
            self.hi = (self.hi ^ u64::from(b ^ 0xa5)).wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` bit-exactly.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string, length-prefixed so field boundaries cannot alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

/// A stable 128-bit content-hash key, printable as (and parsable from)
/// 32 hex digits. Derived either from a request alone
/// ([`CacheKey::of_request`] — what the service's job queue dedups on)
/// or from the resolved physics ([`Flow::content_key`] — geometry,
/// stack, power map, transform, budget — what the persistent result
/// cache is keyed by).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey(u128);

impl CacheKey {
    /// Wraps a raw digest.
    pub fn from_raw(raw: u128) -> Self {
        CacheKey(raw)
    }

    /// The raw digest.
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// The fingerprint of a request under a base configuration: a
    /// stable hash of every knob that can change the answer (the
    /// request's workload, mesh and goal, plus the base config's
    /// benchmark, simulation, placement, thermal, power, timing,
    /// hotspot and wrapper parameters). The request's display tag is
    /// deliberately excluded.
    pub fn of_request(request: &OptimizeRequest, base: &FlowConfig) -> Self {
        let mut h = StableHasher::new();
        h.write_u64(config_fingerprint(base));
        hash_workload(&mut h, &request.workload);
        h.write_usize(request.mesh.0);
        h.write_usize(request.mesh.1);
        hash_goal(&mut h, &request.goal);
        if let Some(solver) = request.solver {
            // Folded only when explicitly set so pre-existing keys (and
            // every request that inherits the base solver) are
            // unchanged. The marker keeps the conditional tail
            // prefix-free against the goal hash above.
            h.write_u64(0x536f_6c76_6572_4b64); // "SolverKd"
            h.write_u64(match solver {
                thermalsim::SolverKind::Auto => 0,
                thermalsim::SolverKind::Stencil => 1,
                thermalsim::SolverKind::Csr => 2,
                thermalsim::SolverKind::Spectral => 3,
            });
        }
        CacheKey(h.finish())
    }

    /// Hex form (32 digits) — also the on-disk cache file stem.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the hex form back.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Identifier of a job submitted to the optimization service — a
/// newtype so job handles cannot be confused with cache keys or bare
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(u64);

impl JobId {
    /// Wraps a raw job number.
    pub fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw job number.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{:06}", self.0)
    }
}

/// What an [`OptimizeRequest`] asks the engine to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizeGoal {
    /// Run one legacy-facade strategy ([`Strategy`] stays the serde
    /// facade of the paper's techniques).
    Strategy(Strategy),
    /// Run one open-set transform by its stable id (parsed through
    /// [`TransformRegistry::parse`]).
    Transform {
        /// The transform id, e.g. `"composite(eri:8+wrap)"`.
        id: String,
    },
    /// Pick the best technique within an area budget
    /// (the typed form of [`crate::best_strategy_within_budget`]).
    BestWithinBudget {
        /// Extra core area as a fraction of the base area.
        budget: f64,
    },
    /// Sweep the registry × budget grid into an exact-verified Pareto
    /// frontier (the typed form of [`crate::pareto_frontier`]).
    Frontier {
        /// Area budgets, fractions of the base area.
        budgets: Vec<f64>,
    },
    /// Find the minimal empty-row count reaching a reduction target
    /// (the typed form of [`crate::minimize_rows_for_target`]).
    RowsForTarget {
        /// Required peak-reduction, percent.
        target_reduction_pct: f64,
        /// Largest acceptable row count.
        max_rows: usize,
    },
}

/// A typed optimization request: workload + mesh + goal, with an
/// optional display tag. Build one with [`OptimizeRequest::builder`];
/// evaluate it with [`Flow::optimize`] (single flow) or
/// [`crate::run_requests`] (batched, parallel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeRequest {
    /// The workload to simulate.
    pub workload: WorkloadSpec,
    /// Lateral thermal mesh `(nx, ny)`.
    pub mesh: (usize, usize),
    /// What to compute.
    pub goal: OptimizeGoal,
    /// Display label for logs and reports; never part of the cache key.
    pub tag: Option<String>,
    /// Solver worker threads for this request's thermal solves
    /// (`None` = inherit the base config / service default). Solves are
    /// bit-identical at any thread count, so this knob — like `tag` —
    /// is never part of the cache key; requests differing only in
    /// `solver_threads` dedup onto the same cached result.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub solver_threads: Option<usize>,
    /// Wall-clock budget for this job, milliseconds (`None` = no
    /// deadline). A service worker checks the budget at tier boundaries
    /// (flow build, cache lookup, before a cold solve) and fails the
    /// job with a typed timeout instead of running past it. Like
    /// `solver_threads` this is a latency/QoS knob: a *completed*
    /// answer is identical with or without it, so it is never part of
    /// the cache key.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
    /// Linear-solver backend for this request's thermal solves (`None`
    /// = inherit the base config / service default, normally
    /// [`thermalsim::SolverKind::Auto`]). Unlike `solver_threads`, the
    /// backend **can** change result bits (spectral vs multigrid vs
    /// CSR agree only to solver tolerance), so an explicitly set
    /// solver *is* folded into the cache key. It is folded only when
    /// set, so keys of requests that leave it `None` — including every
    /// request minted before this field existed — are unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub solver: Option<thermalsim::SolverKind>,
}

impl OptimizeRequest {
    /// A fresh builder.
    pub fn builder() -> OptimizeRequestBuilder {
        OptimizeRequestBuilder::default()
    }

    /// The request's display label: the tag if set, otherwise a compact
    /// rendering of the goal.
    pub fn label(&self) -> String {
        if let Some(tag) = &self.tag {
            return tag.clone();
        }
        match &self.goal {
            OptimizeGoal::Strategy(s) => s.to_string(),
            OptimizeGoal::Transform { id } => id.clone(),
            OptimizeGoal::BestWithinBudget { budget } => {
                format!("best(+{:.1}%)", budget * 100.0)
            }
            OptimizeGoal::Frontier { budgets } => format!("frontier({} budgets)", budgets.len()),
            OptimizeGoal::RowsForTarget {
                target_reduction_pct,
                ..
            } => format!("rows(≥{target_reduction_pct:.1}%)"),
        }
    }

    /// The full flow configuration this request resolves to on top of
    /// `base`: the base config with the request's workload and mesh
    /// applied, every other knob kept.
    pub fn resolve_config(&self, base: &FlowConfig) -> FlowConfig {
        let mut config = base.clone();
        config.workload = self.workload.clone();
        config.thermal.grid = thermalsim::GridSpec {
            nx: self.mesh.0,
            ny: self.mesh.1,
        };
        if let Some(threads) = self.solver_threads {
            config.thermal.threads = threads;
        }
        if let Some(solver) = self.solver {
            config.thermal.solver = solver;
        }
        config
    }
}

/// Builder for [`OptimizeRequest`]. `workload`, `mesh` and exactly one
/// goal are required; setting a second goal replaces the first.
#[derive(Debug, Clone, Default)]
pub struct OptimizeRequestBuilder {
    workload: Option<WorkloadSpec>,
    mesh: Option<(usize, usize)>,
    goal: Option<OptimizeGoal>,
    tag: Option<String>,
    solver_threads: Option<usize>,
    deadline_ms: Option<u64>,
    solver: Option<thermalsim::SolverKind>,
}

impl OptimizeRequestBuilder {
    /// Sets the workload (required).
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// Sets the lateral thermal mesh (required).
    pub fn mesh(mut self, nx: usize, ny: usize) -> Self {
        self.mesh = Some((nx, ny));
        self
    }

    /// Sets the workload and mesh from an existing flow's configuration
    /// — the common case when dispatching more goals against a flow that
    /// is already built.
    pub fn for_flow(self, flow: &Flow) -> Self {
        let config = flow.config();
        self.workload(config.workload.clone())
            .mesh(config.thermal.grid.nx, config.thermal.grid.ny)
    }

    /// Goal: run one legacy-facade strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.goal = Some(OptimizeGoal::Strategy(strategy));
        self
    }

    /// Goal: run one transform by stable id.
    pub fn transform(mut self, id: impl Into<String>) -> Self {
        self.goal = Some(OptimizeGoal::Transform { id: id.into() });
        self
    }

    /// Goal: best technique within an area budget (fraction).
    pub fn budget(mut self, budget: f64) -> Self {
        self.goal = Some(OptimizeGoal::BestWithinBudget { budget });
        self
    }

    /// Goal: exact-verified Pareto frontier over `budgets`.
    pub fn frontier(mut self, budgets: impl IntoIterator<Item = f64>) -> Self {
        self.goal = Some(OptimizeGoal::Frontier {
            budgets: budgets.into_iter().collect(),
        });
        self
    }

    /// Goal: minimal row count reaching `target_reduction_pct`.
    pub fn rows_for_target(mut self, target_reduction_pct: f64, max_rows: usize) -> Self {
        self.goal = Some(OptimizeGoal::RowsForTarget {
            target_reduction_pct,
            max_rows,
        });
        self
    }

    /// Optional display tag (logs and labels only, never the cache key).
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    /// Optional solver thread count for this request's thermal solves
    /// (a latency knob — never the cache key; results are bit-identical
    /// at any thread count).
    pub fn solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = Some(threads);
        self
    }

    /// Optional wall-clock budget in milliseconds (a QoS knob — never
    /// the cache key; a completed answer is identical with or without
    /// it, a blown budget surfaces as a typed timeout).
    pub fn deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Optional linear-solver backend override (part of the cache key
    /// when set — see [`OptimizeRequest::solver`]).
    pub fn solver(mut self, solver: thermalsim::SolverKind) -> Self {
        self.solver = Some(solver);
        self
    }

    /// Validates and builds the request.
    ///
    /// # Errors
    ///
    /// [`FlowError::BadRequest`] when workload, mesh or goal is missing,
    /// the mesh is degenerate, or a transform-goal id does not parse.
    pub fn build(self) -> Result<OptimizeRequest, FlowError> {
        let workload = self.workload.ok_or_else(|| FlowError::BadRequest {
            detail: "request needs a workload".to_string(),
        })?;
        let mesh = self.mesh.ok_or_else(|| FlowError::BadRequest {
            detail: "request needs a mesh".to_string(),
        })?;
        if mesh.0 < 2 || mesh.1 < 2 {
            return Err(FlowError::BadRequest {
                detail: format!("mesh {}x{} is degenerate (needs ≥ 2x2)", mesh.0, mesh.1),
            });
        }
        let goal = self.goal.ok_or_else(|| FlowError::BadRequest {
            detail: "request needs a goal (strategy / transform / budget / frontier / rows)"
                .to_string(),
        })?;
        if let OptimizeGoal::Transform { id } = &goal {
            TransformRegistry::parse(id).map_err(|e| FlowError::BadRequest {
                detail: format!("transform id `{id}` does not parse: {e}"),
            })?;
        }
        Ok(OptimizeRequest {
            workload,
            mesh,
            goal,
            tag: self.tag,
            solver_threads: self.solver_threads,
            deadline_ms: self.deadline_ms,
            solver: self.solver,
        })
    }
}

/// What an [`OptimizeResponse`] carries, matching the request's goal.
#[derive(Debug, Clone)]
pub enum OptimizeOutcome {
    /// From a strategy or transform goal.
    Report(FlowReport),
    /// From a budget goal.
    Budget(BudgetOptimum),
    /// From a frontier goal.
    Frontier(ParetoFrontier),
    /// From a rows-for-target goal.
    Rows(RowOptimum),
}

/// The deterministic result of one [`Flow::optimize`] dispatch.
///
/// Deliberately carries **no** wall-clock or cache-hit metadata: a
/// response answered from a warm cache must be bit-identical to the
/// cold solve it stands in for, so per-call metadata lives on the
/// service's job envelope instead.
#[must_use = "an OptimizeResponse is the entire output of a request"]
#[derive(Debug, Clone)]
pub struct OptimizeResponse {
    /// The request fingerprint this response answers
    /// ([`CacheKey::of_request`] under the flow's config).
    pub key: CacheKey,
    /// The goal-shaped result.
    pub outcome: OptimizeOutcome,
}

impl OptimizeResponse {
    /// The single report of the outcome, if the goal produced one
    /// (transform/strategy goals directly; budget and rows goals via
    /// their winning report).
    pub fn report(&self) -> Option<&FlowReport> {
        match &self.outcome {
            OptimizeOutcome::Report(r) => Some(r),
            OptimizeOutcome::Budget(b) => Some(&b.report),
            OptimizeOutcome::Rows(r) => Some(&r.report),
            OptimizeOutcome::Frontier(_) => None,
        }
    }

    /// The frontier of the outcome, for frontier goals.
    pub fn frontier(&self) -> Option<&ParetoFrontier> {
        match &self.outcome {
            OptimizeOutcome::Frontier(f) => Some(f),
            _ => None,
        }
    }
}

fn hash_workload(h: &mut StableHasher, spec: &WorkloadSpec) {
    h.write_usize(spec.active.len());
    for role in &spec.active {
        let idx = UnitRole::ALL
            .iter()
            .position(|r| r == role)
            .unwrap_or(UnitRole::ALL.len());
        h.write_usize(idx);
    }
    h.write_f64(spec.toggle_probability);
}

fn hash_goal(h: &mut StableHasher, goal: &OptimizeGoal) {
    match goal {
        OptimizeGoal::Strategy(s) => {
            h.write_u64(1);
            hash_strategy(h, *s);
        }
        OptimizeGoal::Transform { id } => {
            h.write_u64(2);
            h.write_str(id);
        }
        OptimizeGoal::BestWithinBudget { budget } => {
            h.write_u64(3);
            h.write_f64(*budget);
        }
        OptimizeGoal::Frontier { budgets } => {
            h.write_u64(4);
            h.write_usize(budgets.len());
            for &b in budgets {
                h.write_f64(b);
            }
        }
        OptimizeGoal::RowsForTarget {
            target_reduction_pct,
            max_rows,
        } => {
            h.write_u64(5);
            h.write_f64(*target_reduction_pct);
            h.write_usize(*max_rows);
        }
    }
}

fn hash_strategy(h: &mut StableHasher, strategy: Strategy) {
    match strategy {
        Strategy::None => h.write_u64(0),
        Strategy::UniformSlack { area_overhead } => {
            h.write_u64(1);
            h.write_f64(area_overhead);
        }
        Strategy::EmptyRowInsertion { rows } => {
            h.write_u64(2);
            h.write_usize(rows);
        }
        Strategy::HotspotWrapper { area_overhead } => {
            h.write_u64(3);
            h.write_f64(area_overhead);
        }
    }
}

/// A stable content hash of every [`FlowConfig`] knob that can change
/// an answer — the salt folded into request fingerprints and content
/// keys so configurations never share cache entries they should not.
pub fn config_fingerprint(config: &FlowConfig) -> u64 {
    let mut h = StableHasher::new();
    let b = &config.benchmark;
    h.write_str(&b.name);
    for w in [
        b.rca_width,
        b.cla_width,
        b.csel_width,
        b.array_mult_width,
        b.wallace_mult_width,
        b.booth_mult_width,
        b.mac_width,
        b.alu_width,
        b.divider_width,
    ] {
        h.write_usize(w);
    }
    hash_workload(&mut h, &config.workload);
    h.write_usize(config.warmup_cycles);
    h.write_usize(config.cycles);
    h.write_u64(config.seed);
    h.write_f64(config.base_utilization);
    h.write_u64(config.thermal.stable_fingerprint());
    h.write_f64(config.power.clock_hz);
    h.write_f64(config.power.wire_cap_ff_per_um);
    h.write_f64(config.power.leakage_doubling_c);
    h.write_f64(config.power.reference_temp_c);
    h.write_f64(config.timing.clock_period_ps);
    h.write_f64(config.timing.wire_res_ohm_per_um);
    h.write_f64(config.timing.wire_cap_ff_per_um);
    h.write_f64(config.timing.cell_derate_per_c);
    h.write_f64(config.timing.wire_derate_per_c);
    h.write_f64(config.timing.reference_temp_c);
    h.write_f64(config.hotspot.threshold_fraction);
    h.write_usize(config.hotspot.min_bins);
    h.write_f64(config.wrapper.ring_rows);
    h.write_f64(config.wrapper.hot_cell_factor);
    h.write_f64(config.wrapper.threshold_fraction);
    h.write_f64(config.wrapper.min_hot_share);
    h.write_usize(config.leakage_feedback_iters);
    let digest = h.finish();
    (digest >> 64) as u64 ^ digest as u64
}

impl Flow {
    /// Validates that `request` targets this flow's workload and mesh —
    /// a flow is built *for* one (workload, mesh); dispatching a
    /// mismatched request would silently answer a different question.
    fn check_request(&self, request: &OptimizeRequest) -> Result<(), FlowError> {
        let config = self.config();
        if request.workload != config.workload {
            return Err(FlowError::BadRequest {
                detail: format!(
                    "request workload does not match this flow (`{}`)",
                    request.label()
                ),
            });
        }
        let mesh = (config.thermal.grid.nx, config.thermal.grid.ny);
        if request.mesh != mesh {
            return Err(FlowError::BadRequest {
                detail: format!(
                    "request mesh {}x{} does not match this flow's {}x{}",
                    request.mesh.0, request.mesh.1, mesh.0, mesh.1
                ),
            });
        }
        Ok(())
    }

    /// Dispatches a typed request against this flow with the standard
    /// registry and default [`OptimizeConfig`] — the blessed entry point
    /// the deprecated loose-argument functions are shims over.
    ///
    /// # Errors
    ///
    /// [`FlowError::BadRequest`] when the request does not match this
    /// flow's workload/mesh; otherwise whatever the dispatched engine
    /// surface returns.
    pub fn optimize(&self, request: &OptimizeRequest) -> Result<OptimizeResponse, FlowError> {
        self.optimize_with(
            request,
            &TransformRegistry::standard(),
            &OptimizeConfig::default(),
        )
    }

    /// [`Flow::optimize`] with an explicit transform registry and
    /// optimizer knobs (custom registries, tuned trust margins).
    ///
    /// # Errors
    ///
    /// As [`Flow::optimize`].
    pub fn optimize_with(
        &self,
        request: &OptimizeRequest,
        registry: &TransformRegistry,
        config: &OptimizeConfig,
    ) -> Result<OptimizeResponse, FlowError> {
        self.check_request(request)?;
        let outcome = match &request.goal {
            OptimizeGoal::Strategy(strategy) => OptimizeOutcome::Report(self.run(*strategy)?),
            OptimizeGoal::Transform { id } => {
                let transform = TransformRegistry::parse(id)?;
                OptimizeOutcome::Report(self.run_transform(transform.as_ref())?)
            }
            OptimizeGoal::BestWithinBudget { budget } => OptimizeOutcome::Budget(
                crate::optimize::best_strategy_within_budget_with(self, *budget, config)?,
            ),
            OptimizeGoal::Frontier { budgets } => OptimizeOutcome::Frontier(
                crate::optimize::compute_pareto_frontier(self, budgets, registry, config)?,
            ),
            OptimizeGoal::RowsForTarget {
                target_reduction_pct,
                max_rows,
            } => OptimizeOutcome::Rows(crate::optimize::minimize_rows_for_target(
                self,
                *target_reduction_pct,
                *max_rows,
            )?),
        };
        Ok(OptimizeResponse {
            key: CacheKey::of_request(request, self.config()),
            outcome,
        })
    }

    /// The *content* cache key of a request against this flow: the
    /// request fingerprint is replaced by the resolved physics — die
    /// outline, thermal-stack fingerprint and the bit-exact baseline
    /// power map — folded with the goal. Two requests that resolve to
    /// identical physics and identical goals share this key, which is
    /// what lets a persistent result cache answer across sessions.
    ///
    /// # Errors
    ///
    /// Propagates baseline analysis failures (the power map is part of
    /// the key).
    pub fn content_key(&self, request: &OptimizeRequest) -> Result<CacheKey, FlowError> {
        self.check_request(request)?;
        let mut h = StableHasher::new();
        let die = self.base_placement().floorplan.core();
        h.write_f64(die.llx);
        h.write_f64(die.lly);
        h.write_f64(die.urx);
        h.write_f64(die.ury);
        h.write_u64(self.config().thermal.stable_fingerprint());
        h.write_u64(config_fingerprint(self.config()));
        let pmap = self.baseline_power_map()?;
        h.write_usize(pmap.nx());
        h.write_usize(pmap.ny());
        for iy in 0..pmap.ny() {
            for ix in 0..pmap.nx() {
                h.write_f64(*pmap.get(ix, iy));
            }
        }
        hash_goal(&mut h, &request.goal);
        Ok(CacheKey::from_raw(h.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> OptimizeRequest {
        OptimizeRequest::builder()
            .workload(WorkloadSpec::checkerboard())
            .mesh(16, 16)
            .transform("eri:8")
            .tag("t")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_workload_mesh_and_goal() {
        assert!(OptimizeRequest::builder().build().is_err());
        assert!(OptimizeRequest::builder()
            .workload(WorkloadSpec::checkerboard())
            .mesh(16, 16)
            .build()
            .is_err());
        assert!(OptimizeRequest::builder()
            .workload(WorkloadSpec::checkerboard())
            .transform("eri:8")
            .build()
            .is_err());
        assert!(request().tag.is_some());
    }

    #[test]
    fn builder_rejects_bad_transform_ids_and_degenerate_meshes() {
        let bad_id = OptimizeRequest::builder()
            .workload(WorkloadSpec::checkerboard())
            .mesh(16, 16)
            .transform("bogus:1")
            .build();
        assert!(matches!(bad_id, Err(FlowError::BadRequest { .. })));
        let bad_mesh = OptimizeRequest::builder()
            .workload(WorkloadSpec::checkerboard())
            .mesh(1, 16)
            .transform("eri:8")
            .build();
        assert!(matches!(bad_mesh, Err(FlowError::BadRequest { .. })));
    }

    #[test]
    fn fingerprints_are_stable_across_processes() {
        // Golden value: any change to the hashing scheme (or an
        // accidental switch to a randomized hasher) breaks persisted
        // on-disk caches, so the exact digest is pinned here.
        let key = CacheKey::of_request(&request(), &FlowConfig::scattered_small().fast());
        assert_eq!(key, CacheKey::from_hex(&key.to_hex()).unwrap());
        assert_eq!(key.to_hex(), "fb37023af674e40463cf696abad4af60");
    }

    #[test]
    fn tag_does_not_perturb_the_key() {
        let base = FlowConfig::scattered_small().fast();
        let mut tagged = request();
        tagged.tag = Some("renamed".to_string());
        assert_eq!(
            CacheKey::of_request(&request(), &base),
            CacheKey::of_request(&tagged, &base)
        );
    }

    #[test]
    fn solver_threads_do_not_perturb_the_key() {
        // Solves are bit-identical at any thread count, so a request
        // differing only in thread count must dedup onto the same
        // cached result.
        let base = FlowConfig::scattered_small().fast();
        let mut threaded = request();
        threaded.solver_threads = Some(4);
        assert_eq!(
            CacheKey::of_request(&request(), &base),
            CacheKey::of_request(&threaded, &base)
        );
        assert_eq!(
            threaded.resolve_config(&base).thermal.threads,
            4,
            "resolve_config applies the knob"
        );
        assert_eq!(
            request().resolve_config(&base).thermal.threads,
            base.thermal.threads
        );
    }

    #[test]
    fn deadline_does_not_perturb_the_key() {
        // A deadline changes *whether* an answer arrives in time, never
        // what the answer is — so a deadlined request must share the
        // cached result of its unbounded twin.
        let base = FlowConfig::scattered_small().fast();
        let mut bounded = request();
        bounded.deadline_ms = Some(250);
        assert_eq!(
            CacheKey::of_request(&request(), &base),
            CacheKey::of_request(&bounded, &base)
        );
    }

    #[test]
    fn solver_perturbs_the_key_only_when_set() {
        // Backend selection can change result bits, so an explicit
        // solver must key a distinct cache slot — but an unset one
        // must leave the key exactly as it was before the field
        // existed (the golden digest above pins that).
        let base = FlowConfig::scattered_small().fast();
        let reference = CacheKey::of_request(&request(), &base);
        let mut forced = request();
        forced.solver = Some(thermalsim::SolverKind::Spectral);
        assert_ne!(CacheKey::of_request(&forced, &base), reference);
        assert_eq!(
            forced.resolve_config(&base).thermal.solver,
            thermalsim::SolverKind::Spectral,
            "resolve_config applies the override"
        );
        let mut oracle = request();
        oracle.solver = Some(thermalsim::SolverKind::Stencil);
        assert_ne!(
            CacheKey::of_request(&oracle, &base),
            CacheKey::of_request(&forced, &base),
            "distinct backends key distinct slots"
        );
        assert_eq!(
            request().resolve_config(&base).thermal.solver,
            base.thermal.solver,
            "unset solver inherits the base config"
        );
        let built = OptimizeRequest::builder()
            .workload(WorkloadSpec::checkerboard())
            .mesh(16, 16)
            .transform("eri:8")
            .solver(thermalsim::SolverKind::Spectral)
            .build()
            .unwrap();
        assert_eq!(built.solver, Some(thermalsim::SolverKind::Spectral));
    }

    #[test]
    fn every_knob_perturbs_the_key() {
        let base = FlowConfig::scattered_small().fast();
        let reference = CacheKey::of_request(&request(), &base);
        let mut other = request();
        other.mesh = (16, 18);
        assert_ne!(CacheKey::of_request(&other, &base), reference);
        let mut other = request();
        other.goal = OptimizeGoal::Transform {
            id: "eri:9".to_string(),
        };
        assert_ne!(CacheKey::of_request(&other, &base), reference);
        let mut other = request();
        other.workload = WorkloadSpec::clustered_hotspot();
        assert_ne!(CacheKey::of_request(&other, &base), reference);
        let mut salted = base.clone();
        salted.seed ^= 1;
        assert_ne!(CacheKey::of_request(&request(), &salted), reference);
        let mut salted = base;
        salted.thermal.tolerance *= 0.5;
        assert_ne!(CacheKey::of_request(&request(), &salted), reference);
    }

    #[test]
    fn goal_variants_cannot_alias() {
        let base = FlowConfig::scattered_small().fast();
        let strategy = OptimizeRequest::builder()
            .workload(WorkloadSpec::checkerboard())
            .mesh(16, 16)
            .strategy(Strategy::EmptyRowInsertion { rows: 8 })
            .build()
            .unwrap();
        let transform = request(); // transform "eri:8" — same physics
        assert_ne!(
            CacheKey::of_request(&strategy, &base),
            CacheKey::of_request(&transform, &base),
            "request fingerprints key the *request*, not the physics"
        );
    }

    #[test]
    fn job_ids_display_compactly() {
        assert_eq!(JobId::new(42).to_string(), "job-000042");
        assert_eq!(JobId::new(42).value(), 42);
    }
}
