//! Unified candidate evaluation: exact re-solves vs delta superposition.
//!
//! The optimization loops on top of the flow (row bisection, budget
//! search, sweeps over strategy spaces) compare many *candidate*
//! transformations that differ from the memoized baseline only in how
//! power is redistributed over the die. A [`PowerDelta`] captures that
//! difference as a sparse set of per-bin watt changes; a
//! [`CandidateEvaluator`] turns it into a peak-temperature estimate.
//!
//! Two implementations share the trait:
//!
//! * [`ExactCandidateEvaluator`] — applies the delta to the baseline
//!   power map and runs a full preconditioned re-solve against the
//!   cached [`FactorizedThermalModel`] (PR 2's cost model, ~tens of
//!   milliseconds per candidate);
//! * [`DeltaCandidateEvaluator`] — superposes cached Green's-function
//!   influence columns through a [`DeltaThermalModel`] (microseconds per
//!   candidate once columns are warm), falling back to an exact re-solve
//!   for perturbations too dense for superposition to win.
//!
//! Candidate deltas come from the strategy-transform engine:
//! [`crate::PlacementTransform::power_delta`] diffs a transform's
//! composable map→map surrogate against the memoized baseline, so any
//! registered technique — composites included — can be priced here
//! without touching a placement.
//!
//! Screening decisions may come from the delta path, but reported
//! [`crate::FlowReport`] numbers never do: the optimization loops
//! re-verify every winning candidate with a full [`crate::Flow::run`]
//! (or [`crate::Flow::run_transform`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use geom::Grid2d;
use thermalsim::{DeltaThermalModel, FactorizedThermalModel, ThermalMap};

use crate::FlowError;

/// A candidate transformation expressed as a sparse power redistribution
/// (watts per thermal bin) against the baseline power map.
///
/// # Examples
///
/// ```
/// use postplace::PowerDelta;
///
/// // Move 2 mW from bin (3, 3) to bin (3, 6).
/// let delta = PowerDelta::new(vec![(3, 3, -2e-3), (3, 6, 2e-3)]);
/// assert_eq!(delta.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerDelta {
    /// Per-bin watt changes `(ix, iy, Δwatts)`; entries for the same bin
    /// accumulate.
    pub deltas: Vec<(usize, usize, f64)>,
}

impl PowerDelta {
    /// Wraps a list of per-bin changes.
    pub fn new(deltas: Vec<(usize, usize, f64)>) -> Self {
        PowerDelta { deltas }
    }

    /// The element-wise difference `candidate − base`, dropping changes
    /// below `eps` watts.
    ///
    /// # Panics
    ///
    /// Panics if the two maps have different resolutions.
    pub fn between(base: &Grid2d<f64>, candidate: &Grid2d<f64>, eps: f64) -> Self {
        assert_eq!(base.nx(), candidate.nx(), "power map resolution mismatch");
        assert_eq!(base.ny(), candidate.ny(), "power map resolution mismatch");
        let mut deltas = Vec::new();
        for iy in 0..base.ny() {
            for ix in 0..base.nx() {
                let dw = candidate.get(ix, iy) - base.get(ix, iy);
                if dw.abs() > eps {
                    deltas.push((ix, iy, dw));
                }
            }
        }
        PowerDelta { deltas }
    }

    /// Number of perturbed bins.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the candidate equals the baseline.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Returns `Some(scale)` when this delta is exactly a uniform scaling
    /// of `base` — every non-zero bin changed by the same factor and no
    /// zero bin gained power. Linearity then gives the perturbed field in
    /// closed form (no solve at all): `T′ − T_amb = (1 + scale)·(T −
    /// T_amb)`.
    fn uniform_scale_of(&self, base: &Grid2d<f64>) -> Option<f64> {
        if self.deltas.is_empty() {
            return Some(0.0);
        }
        let mut scale: Option<f64> = None;
        let mut seen = std::collections::HashSet::with_capacity(self.deltas.len());
        for &(ix, iy, dw) in &self.deltas {
            if ix >= base.nx() || iy >= base.ny() {
                return None;
            }
            // Duplicate entries accumulate per the contract; the simple
            // per-entry ratio test below would misread them, so leave
            // duplicated-bin deltas to the general superposition path.
            if !seen.insert((ix, iy)) {
                return None;
            }
            let p = *base.get(ix, iy);
            if p <= 0.0 {
                return None; // power appearing in an empty bin
            }
            let s = dw / p;
            if s < -1.0 - 1e-12 {
                // Beyond full removal — negative power. Leave it to the
                // general path, which rejects it as InvalidPower.
                return None;
            }
            match scale {
                None => scale = Some(s),
                Some(prev) if (prev - s).abs() > 1e-9 * (1.0 + prev.abs()) => return None,
                Some(_) => {}
            }
        }
        // Every powered bin must be scaled, or the field is not a pure
        // scaling of the baseline.
        let powered = base.values().iter().filter(|&&p| p > 0.0).count();
        if seen.len() == powered {
            scale
        } else {
            None
        }
    }
}

/// A candidate's estimated thermal outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEval {
    /// Estimated peak temperature, °C.
    pub peak_c: f64,
    /// Estimated peak rise above ambient, K.
    pub peak_rise: f64,
    /// Estimated peak-temperature reduction vs the baseline, percent of
    /// the baseline rise (the paper's metric).
    pub reduction_pct: f64,
    /// `true` when the number came from a full re-solve rather than
    /// superposition.
    pub exact: bool,
}

/// Anything that can price a candidate power redistribution.
///
/// Implementations are thread-safe (`Send + Sync`) so optimization loops
/// can screen candidates from worker threads.
///
/// # Examples
///
/// ```no_run
/// use postplace::{CandidateEvaluator, Flow, FlowConfig, PowerDelta, Strategy};
///
/// # fn main() -> Result<(), postplace::FlowError> {
/// let flow = Flow::new(FlowConfig::scattered_small().fast())?;
/// let evaluator = flow.delta_evaluator()?;
/// // Screen a strategy without rebuilding its placement.
/// let delta = flow.strategy_power_delta(Strategy::EmptyRowInsertion { rows: 8 })?;
/// let estimate = evaluator.evaluate(&delta)?;
/// println!("estimated reduction: {:.2}%", estimate.reduction_pct);
/// // The winner is then re-verified exactly:
/// let report = flow.run(Strategy::EmptyRowInsertion { rows: 8 })?;
/// # let _ = report;
/// # Ok(())
/// # }
/// ```
pub trait CandidateEvaluator: Send + Sync {
    /// The baseline field candidates are measured against.
    fn baseline(&self) -> &ThermalMap;

    /// Prices one candidate.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures and invalid deltas.
    fn evaluate(&self, delta: &PowerDelta) -> Result<CandidateEval, FlowError>;

    /// Candidates evaluated so far.
    fn evaluations(&self) -> usize;
}

fn eval_from_map(map: &ThermalMap, baseline: &ThermalMap, exact: bool) -> CandidateEval {
    let base_rise = baseline.peak_rise();
    let rise = map.peak_rise();
    CandidateEval {
        peak_c: map.peak_bin().1,
        peak_rise: rise,
        reduction_pct: if base_rise > 0.0 {
            (base_rise - rise) / base_rise * 100.0
        } else {
            0.0
        },
        exact,
    }
}

/// Tier-2 evaluation: every candidate pays one preconditioned re-solve
/// against the shared factorization.
#[derive(Debug)]
pub struct ExactCandidateEvaluator {
    model: Arc<FactorizedThermalModel>,
    baseline_power: Grid2d<f64>,
    baseline: ThermalMap,
    count: AtomicUsize,
}

impl ExactCandidateEvaluator {
    /// Builds the evaluator from a factorized model and its baseline
    /// power map (the baseline field is solved once here).
    ///
    /// # Errors
    ///
    /// Propagates baseline-solve failures.
    pub fn new(
        model: Arc<FactorizedThermalModel>,
        baseline_power: &Grid2d<f64>,
    ) -> Result<Self, FlowError> {
        let baseline = model.solve(baseline_power)?;
        Ok(Self::with_baseline(model, baseline_power, baseline))
    }

    /// Like [`ExactCandidateEvaluator::new`] with the baseline field
    /// already solved (e.g. the flow's memoized baseline analysis) — no
    /// extra solve is spent.
    pub fn with_baseline(
        model: Arc<FactorizedThermalModel>,
        baseline_power: &Grid2d<f64>,
        baseline: ThermalMap,
    ) -> Self {
        ExactCandidateEvaluator {
            model,
            baseline_power: baseline_power.clone(),
            baseline,
            count: AtomicUsize::new(0),
        }
    }
}

impl CandidateEvaluator for ExactCandidateEvaluator {
    fn baseline(&self) -> &ThermalMap {
        &self.baseline
    }

    fn evaluate(&self, delta: &PowerDelta) -> Result<CandidateEval, FlowError> {
        self.count.fetch_add(1, Ordering::Relaxed);
        if delta.is_empty() {
            return Ok(eval_from_map(&self.baseline, &self.baseline, true));
        }
        // Merge duplicate entries first, then validate the net totals —
        // the same semantics as `DeltaThermalModel::evaluate_delta`, so
        // the two trait implementations agree on every input.
        let mut power = self.baseline_power.clone();
        for &(ix, iy, dw) in &delta.deltas {
            if ix >= power.nx() || iy >= power.ny() || !dw.is_finite() {
                return Err(FlowError::Thermal(thermalsim::ThermalError::InvalidPower {
                    bin: (ix, iy),
                    watts: dw,
                }));
            }
            *power.get_mut(ix, iy) += dw;
        }
        for iy in 0..power.ny() {
            for ix in 0..power.nx() {
                let watts = power.get_mut(ix, iy);
                if *watts < -1e-9 {
                    return Err(FlowError::Thermal(thermalsim::ThermalError::InvalidPower {
                        bin: (ix, iy),
                        watts: *watts,
                    }));
                }
                if *watts < 0.0 {
                    *watts = 0.0; // rounding residue of a full move-out
                }
            }
        }
        let map = self.model.solve(&power)?;
        Ok(eval_from_map(&map, &self.baseline, true))
    }

    fn evaluations(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

/// Tier-3 evaluation: sparse candidates are priced by influence-column
/// superposition; uniform scalings are priced in closed form; everything
/// too dense falls back to one exact re-solve inside the wrapped
/// [`DeltaThermalModel`].
#[derive(Debug)]
pub struct DeltaCandidateEvaluator {
    model: DeltaThermalModel,
    count: AtomicUsize,
    analytic: AtomicUsize,
}

impl DeltaCandidateEvaluator {
    /// Wraps a delta model.
    pub fn new(model: DeltaThermalModel) -> Self {
        DeltaCandidateEvaluator {
            model,
            count: AtomicUsize::new(0),
            analytic: AtomicUsize::new(0),
        }
    }

    /// The wrapped delta model (cache statistics live there).
    pub fn model(&self) -> &DeltaThermalModel {
        &self.model
    }

    /// Candidates priced in closed form as uniform power scalings.
    pub fn analytic_evaluations(&self) -> usize {
        self.analytic.load(Ordering::Relaxed)
    }
}

impl CandidateEvaluator for DeltaCandidateEvaluator {
    fn baseline(&self) -> &ThermalMap {
        self.model.baseline()
    }

    fn evaluate(&self, delta: &PowerDelta) -> Result<CandidateEval, FlowError> {
        self.count.fetch_add(1, Ordering::Relaxed);
        let baseline = self.model.baseline();
        // A pure scaling of the baseline power needs no solve at all:
        // by linearity the whole rise field scales with it.
        if let Some(scale) = delta.uniform_scale_of(self.model.baseline_power()) {
            self.analytic.fetch_add(1, Ordering::Relaxed);
            let base_rise = baseline.peak_rise();
            let rise = (1.0 + scale) * base_rise;
            return Ok(CandidateEval {
                peak_c: baseline.ambient_c()
                    + (1.0 + scale) * (baseline.peak_bin().1 - baseline.ambient_c()),
                peak_rise: rise,
                reduction_pct: if base_rise > 0.0 { -scale * 100.0 } else { 0.0 },
                exact: false,
            });
        }
        let outcome = self.model.evaluate_delta(&delta.deltas)?;
        Ok(eval_from_map(&outcome.map, baseline, outcome.exact))
    }

    fn evaluations(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Rect;
    use thermalsim::ThermalConfig;

    fn setup() -> (Arc<FactorizedThermalModel>, Grid2d<f64>) {
        let die = Rect::new(0.0, 0.0, 300.0, 300.0);
        let model = Arc::new(
            FactorizedThermalModel::build(&ThermalConfig::with_resolution(10, 10), die).unwrap(),
        );
        let mut power = Grid2d::new(10, 10, die, 0.0);
        *power.get_mut(5, 5) = 3e-3;
        *power.get_mut(2, 7) = 1e-3;
        (model, power)
    }

    #[test]
    fn exact_and_delta_evaluators_agree() {
        let (model, power) = setup();
        let exact = ExactCandidateEvaluator::new(Arc::clone(&model), &power).unwrap();
        let delta = DeltaCandidateEvaluator::new(DeltaThermalModel::new(model, &power).unwrap());
        let candidate = PowerDelta::new(vec![(5, 5, -1e-3), (8, 2, 1e-3)]);
        let a = exact.evaluate(&candidate).unwrap();
        let b = delta.evaluate(&candidate).unwrap();
        assert!(a.exact && !b.exact);
        assert!(
            (a.peak_c - b.peak_c).abs() < 1e-6,
            "{} vs {}",
            a.peak_c,
            b.peak_c
        );
        assert!((a.reduction_pct - b.reduction_pct).abs() < 1e-6);
        assert_eq!(exact.evaluations(), 1);
        assert_eq!(delta.evaluations(), 1);
    }

    #[test]
    fn uniform_scaling_is_priced_in_closed_form() {
        let (model, power) = setup();
        let exact = ExactCandidateEvaluator::new(Arc::clone(&model), &power).unwrap();
        let delta = DeltaCandidateEvaluator::new(DeltaThermalModel::new(model, &power).unwrap());
        // Scale every powered bin down by 1/(1+0.25): the Default
        // strategy's dilution surrogate.
        let s = 1.0 / 1.25 - 1.0;
        let candidate = PowerDelta::new(vec![(5, 5, 3e-3 * s), (2, 7, 1e-3 * s)]);
        let a = exact.evaluate(&candidate).unwrap();
        let b = delta.evaluate(&candidate).unwrap();
        assert_eq!(delta.analytic_evaluations(), 1);
        assert_eq!(delta.model().superposed_evaluations(), 0, "no solve spent");
        assert!((a.peak_rise - b.peak_rise).abs() < 1e-6);
        assert!((b.reduction_pct - 20.0).abs() < 1e-6, "{}", b.reduction_pct);
    }

    #[test]
    fn evaluators_agree_on_duplicate_bin_deltas() {
        // Duplicate entries accumulate; a net-zero pair must price as the
        // baseline on BOTH paths (order-independent, no closed-form
        // misfire), and an accumulating pair must match across paths.
        let (model, power) = setup();
        let exact = ExactCandidateEvaluator::new(Arc::clone(&model), &power).unwrap();
        let delta = DeltaCandidateEvaluator::new(DeltaThermalModel::new(model, &power).unwrap());
        let net_zero = PowerDelta::new(vec![(5, 5, -2e-3), (5, 5, 2e-3)]);
        let a = exact.evaluate(&net_zero).unwrap();
        let b = delta.evaluate(&net_zero).unwrap();
        assert!((a.peak_rise - exact.baseline().peak_rise()).abs() < 1e-9);
        assert!((a.peak_rise - b.peak_rise).abs() < 1e-6);
        let split = PowerDelta::new(vec![(5, 5, -4e-4), (5, 5, -6e-4), (8, 2, 1e-3)]);
        let a = exact.evaluate(&split).unwrap();
        let b = delta.evaluate(&split).unwrap();
        assert!(
            (a.peak_c - b.peak_c).abs() < 1e-6,
            "{} vs {}",
            a.peak_c,
            b.peak_c
        );
        // Driving a bin's total power negative is an error on both paths.
        let negative = PowerDelta::new(vec![(5, 5, -1.0)]);
        assert!(exact.evaluate(&negative).is_err());
        assert!(delta.evaluate(&negative).is_err());
    }

    #[test]
    fn empty_delta_is_the_baseline() {
        let (model, power) = setup();
        let exact = ExactCandidateEvaluator::new(model, &power).unwrap();
        let eval = exact.evaluate(&PowerDelta::default()).unwrap();
        assert!((eval.reduction_pct).abs() < 1e-12);
        assert!((eval.peak_rise - exact.baseline().peak_rise()).abs() < 1e-12);
    }

    #[test]
    fn between_diffs_power_maps_sparsely() {
        let die = Rect::new(0.0, 0.0, 100.0, 100.0);
        let base = Grid2d::new(4, 4, die, 1e-3);
        let mut cand = base.clone();
        *cand.get_mut(1, 2) += 5e-4;
        *cand.get_mut(3, 0) -= 2e-4;
        let delta = PowerDelta::between(&base, &cand, 1e-12);
        assert_eq!(delta.len(), 2);
        let (_, _, dw) = delta
            .deltas
            .iter()
            .find(|&&(ix, iy, _)| (ix, iy) == (1, 2))
            .unwrap();
        assert!((dw - 5e-4).abs() < 1e-12);
    }
}
