//! Batched scenario sweeps: fan a grid of (workload × mesh × strategy)
//! evaluations across worker threads, reusing every cache the flow
//! offers.
//!
//! The engine is [`run_requests`]: it takes typed
//! [`OptimizeRequest`]s, builds one [`Flow`] per (workload, mesh) group
//! — the expensive netlist/simulation/placement prefix — and then
//! dispatches every request of a group against that shared flow, so the
//! memoized baseline and the per-geometry factorized thermal models are
//! amortized across the whole batch. Both phases run under
//! [`std::thread::scope`] with a simple atomic work queue; results come
//! back in deterministic submission order regardless of thread count.
//!
//! A [`SweepGrid`] still names (workload × mesh × strategy) axes and
//! expands them — via [`SweepGrid::requests`] into typed requests, or
//! via the deprecated [`run_sweep`] shim into the legacy
//! [`SweepReport`] shape.
//!
//! # Examples
//!
//! ```no_run
//! use postplace::{run_requests, FlowConfig, Strategy, SweepGrid};
//!
//! # fn main() -> Result<(), postplace::FlowError> {
//! let config = FlowConfig::scattered_small().fast();
//! let grid = SweepGrid::new(config.clone())
//!     .mesh(16, 16)
//!     .strategy(Strategy::UniformSlack { area_overhead: 0.16 })
//!     .row_counts([4, 8, 12]);
//! let batch = run_requests(&config, &grid.requests()?, 4)?;
//! for r in &batch.outcomes {
//!     let report = r.response.report().expect("strategy goals yield reports");
//!     println!("{}: {:.2}% in {:.1} ms", r.request.label(), report.reduction_pct(), r.wall_ms);
//! }
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use thermalsim::GridSpec;

use crate::{
    Flow, FlowConfig, FlowError, FlowReport, OptimizeRequest, OptimizeResponse, Strategy,
    WorkloadSpec,
};

/// One cell of the sweep grid: which workload, mesh resolution and
/// transformation to evaluate.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the expanded grid (stable across thread counts).
    pub index: usize,
    /// Label of the workload axis entry.
    pub workload: String,
    /// Lateral mesh resolution `(nx, ny)`.
    pub mesh: (usize, usize),
    /// The transformation under evaluation (the legacy facade;
    /// [`Strategy::None`] for open-set transform scenarios, whose
    /// [`Scenario::transform`] id is authoritative).
    pub strategy: Strategy,
    /// Stable transform id for scenarios from the grid's transform axis
    /// (parsed with [`crate::TransformRegistry::parse`] at evaluation
    /// time); `None` for strategy-axis scenarios.
    pub transform: Option<String>,
}

impl Scenario {
    /// The scenario's display label: the transform id when the scenario
    /// comes from the transform axis, the strategy's compact form
    /// otherwise.
    pub fn label(&self) -> String {
        match &self.transform {
            Some(id) => id.clone(),
            None => self.strategy.to_string(),
        }
    }
}

/// The axes of a scenario sweep. Scenarios are the cartesian product
/// `workloads × meshes × strategies`, expanded in that nesting order; an
/// empty workload or mesh axis falls back to the base config's own value
/// at expansion time.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Template configuration; each scenario overrides the workload and
    /// the lateral mesh resolution, keeping every other knob.
    pub base: FlowConfig,
    /// Labelled workloads (empty = sweep the base config's workload,
    /// labelled `"base"`).
    pub workloads: Vec<(String, WorkloadSpec)>,
    /// Lateral mesh resolutions (empty = the base config's mesh).
    pub meshes: Vec<(usize, usize)>,
    /// Strategies (including row-count variants) to evaluate per
    /// workload × mesh combination.
    pub strategies: Vec<Strategy>,
    /// Open-set transforms, by stable id (see
    /// [`crate::PlacementTransform::id`]), appended after the strategy
    /// axis in every workload × mesh combination.
    pub transforms: Vec<String>,
}

impl SweepGrid {
    /// A grid over `base` with empty axes; add strategies (required) and
    /// optionally workloads and meshes.
    pub fn new(base: FlowConfig) -> Self {
        SweepGrid {
            base,
            workloads: Vec::new(),
            meshes: Vec::new(),
            strategies: Vec::new(),
            transforms: Vec::new(),
        }
    }

    /// Adds a labelled workload to the workload axis.
    pub fn workload(mut self, label: impl Into<String>, spec: WorkloadSpec) -> Self {
        self.workloads.push((label.into(), spec));
        self
    }

    /// Adds a mesh resolution to the mesh axis.
    pub fn mesh(mut self, nx: usize, ny: usize) -> Self {
        self.meshes.push((nx, ny));
        self
    }

    /// Adds several mesh resolutions at once — the shape the large-mesh
    /// scenario band uses (`.meshes([(80, 80), (128, 128)])`), now that
    /// the structured multigrid solver makes those resolutions practical.
    pub fn meshes(mut self, meshes: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.meshes.extend(meshes);
        self
    }

    /// Adds one strategy to the strategy axis.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategies.push(strategy);
        self
    }

    /// Adds one [`Strategy::EmptyRowInsertion`] entry per row count.
    pub fn row_counts(mut self, rows: impl IntoIterator<Item = usize>) -> Self {
        self.strategies.extend(
            rows.into_iter()
                .map(|rows| Strategy::EmptyRowInsertion { rows }),
        );
        self
    }

    /// Adds an open-set transform to the grid by its stable id (e.g.
    /// `"composite(eri:8+wrap)"`); the id is validated here and parsed
    /// again per evaluation.
    ///
    /// # Panics
    ///
    /// Panics on an unparsable id — grids are built statically and a
    /// typo should fail at construction, not mid-sweep.
    pub fn transform(mut self, id: impl Into<String>) -> Self {
        let id = id.into();
        // lint: allow(no-panic, reason = "documented panic: grid construction is static config, a typo must fail fast at build, not mid-sweep")
        crate::TransformRegistry::parse(&id).expect("invalid transform id in sweep grid");
        self.transforms.push(id);
        self
    }

    fn effective_workloads(&self) -> Vec<(String, WorkloadSpec)> {
        if self.workloads.is_empty() {
            vec![("base".to_string(), self.base.workload.clone())]
        } else {
            self.workloads.clone()
        }
    }

    fn effective_meshes(&self) -> Vec<(usize, usize)> {
        if self.meshes.is_empty() {
            vec![(self.base.thermal.grid.nx, self.base.thermal.grid.ny)]
        } else {
            self.meshes.clone()
        }
    }

    /// The full flow configuration a scenario resolves to: the base
    /// config with the scenario's workload and mesh applied. This is the
    /// single source of truth both for [`run_sweep`] and for anything
    /// replaying scenarios outside the engine (e.g. the sequential
    /// yardstick of the bench pipeline).
    pub fn scenario_config(&self, scenario: &Scenario) -> FlowConfig {
        let spec = self
            .effective_workloads()
            .iter()
            .find(|(label, _)| *label == scenario.workload)
            .map(|(_, spec)| spec.clone())
            .unwrap_or_else(|| self.base.workload.clone());
        // A replay outside the engine is serial, so the base's solver
        // threading passes through untouched.
        group_config(&self.base, &spec, scenario.mesh, 1)
    }

    /// Number of scenarios the grid expands to.
    pub fn scenario_count(&self) -> usize {
        self.effective_workloads().len()
            * self.effective_meshes().len()
            * (self.strategies.len() + self.transforms.len())
    }

    /// Expands the axes into the full scenario list.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.scenario_count());
        for (label, _) in &self.effective_workloads() {
            for &mesh in &self.effective_meshes() {
                for &strategy in &self.strategies {
                    out.push(Scenario {
                        index: out.len(),
                        workload: label.clone(),
                        mesh,
                        strategy,
                        transform: None,
                    });
                }
                for id in &self.transforms {
                    out.push(Scenario {
                        index: out.len(),
                        workload: label.clone(),
                        mesh,
                        strategy: Strategy::None,
                        transform: Some(id.clone()),
                    });
                }
            }
        }
        out
    }

    /// Expands the grid into typed [`OptimizeRequest`]s (same order as
    /// [`SweepGrid::scenarios`]); each request is tagged with its
    /// workload label for display.
    ///
    /// # Errors
    ///
    /// [`FlowError::BadRequest`] when a scenario does not validate
    /// (cannot happen for grids built through the checked builders).
    pub fn requests(&self) -> Result<Vec<OptimizeRequest>, FlowError> {
        self.scenarios()
            .iter()
            .map(|scenario| self.scenario_request(scenario))
            .collect()
    }

    /// The typed request one scenario maps onto: strategy-axis
    /// scenarios become [`crate::OptimizeGoal::Strategy`] goals (the
    /// serde facade travels as-is — no float-through-string round
    /// trip), transform-axis scenarios become
    /// [`crate::OptimizeGoal::Transform`] goals.
    ///
    /// # Errors
    ///
    /// [`FlowError::BadRequest`] when the scenario does not validate.
    pub fn scenario_request(&self, scenario: &Scenario) -> Result<OptimizeRequest, FlowError> {
        let config = self.scenario_config(scenario);
        let builder = OptimizeRequest::builder()
            .workload(config.workload)
            .mesh(scenario.mesh.0, scenario.mesh.1)
            .tag(&scenario.workload);
        match &scenario.transform {
            Some(id) => builder.transform(id.clone()),
            None => builder.strategy(scenario.strategy),
        }
        .build()
    }
}

/// One evaluated scenario: the flow report plus its wall-clock cost.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that was evaluated.
    pub scenario: Scenario,
    /// The before/after report from [`Flow::run`].
    pub report: FlowReport,
    /// Wall-clock time of this evaluation, milliseconds.
    pub wall_ms: f64,
}

/// The outcome of a [`run_sweep`] call.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-scenario results, in scenario (grid) order.
    pub results: Vec<ScenarioResult>,
    /// Worker threads used.
    pub threads: usize,
    /// Distinct (workload, mesh) flows that were built.
    pub flows_built: usize,
    /// End-to-end wall-clock of the sweep (flow builds included), ms.
    pub wall_ms: f64,
}

/// One evaluated request of a [`run_requests`] batch.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The request that was dispatched.
    pub request: OptimizeRequest,
    /// Its deterministic response.
    pub response: OptimizeResponse,
    /// Wall-clock time of this dispatch, milliseconds.
    pub wall_ms: f64,
}

/// The outcome of a [`run_requests`] batch.
#[derive(Debug, Clone)]
pub struct RequestBatch {
    /// Per-request outcomes, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Worker threads used.
    pub threads: usize,
    /// Distinct (workload, mesh) flows that were built.
    pub flows_built: usize,
    /// End-to-end wall-clock of the batch (flow builds included), ms.
    pub wall_ms: f64,
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The flow configuration one request group resolves to, with the
/// batch-level oversubscription guard applied: when the engine already
/// fans out across requests (`engine_threads > 1`), each individual
/// solve degrades to a single solver thread — `workers × solver
/// threads` would otherwise oversubscribe the machine, and because
/// solves are bit-identical at any thread count the degradation cannot
/// change any result.
fn group_config(
    base: &FlowConfig,
    workload: &WorkloadSpec,
    mesh: (usize, usize),
    engine_threads: usize,
) -> FlowConfig {
    let mut config = base.clone();
    config.workload = workload.clone();
    config.thermal.grid = GridSpec {
        nx: mesh.0,
        ny: mesh.1,
    };
    if engine_threads > 1 {
        config.thermal.threads = 1;
    }
    config
}

/// Runs every scenario of `grid` across `threads` workers and returns
/// the results in grid order.
///
/// Deprecated shim over [`run_requests`]: the grid expands through
/// [`SweepGrid::requests`], the batch runs on the typed engine, and the
/// responses are repackaged into the legacy [`SweepReport`] shape —
/// bit-identical reports by construction.
///
/// # Errors
///
/// Returns the first flow-construction or evaluation error; remaining
/// workers stop at the next queue pull.
#[deprecated(
    since = "0.2.0",
    note = "expand the grid with SweepGrid::requests and call run_requests"
)]
pub fn run_sweep(grid: &SweepGrid, threads: usize) -> Result<SweepReport, FlowError> {
    let scenarios = grid.scenarios();
    let requests = grid.requests()?;
    let batch = run_requests(&grid.base, &requests, threads)?;
    let results = scenarios
        .into_iter()
        .zip(batch.outcomes)
        .map(|(scenario, outcome)| {
            let report = outcome
                .response
                .report()
                .cloned()
                .ok_or_else(|| FlowError::Internal {
                    detail: "a grid scenario produced a non-report outcome".to_string(),
                })?;
            Ok(ScenarioResult {
                scenario,
                report,
                wall_ms: outcome.wall_ms,
            })
        })
        .collect::<Result<_, FlowError>>()?;
    Ok(SweepReport {
        results,
        threads: batch.threads,
        flows_built: batch.flows_built,
        wall_ms: batch.wall_ms,
    })
}

/// Runs every request of `requests` (resolved against `base`) across
/// `threads` workers and returns the outcomes in submission order.
///
/// Flows (one per distinct workload × mesh) are built first, in
/// parallel; request dispatches then share them, so the factorized
/// thermal models and the memoized baselines are reused across the
/// whole batch. With `threads == 1` the batch still benefits from that
/// reuse — thread fan-out stacks on top on multi-core machines.
///
/// Parallelism composes on one axis at a time: when the batch runs on
/// more than one worker, each solve inside it is forced to a single
/// solver thread (`base.thermal.threads` is ignored), so batch workers
/// and solver threads never multiply into oversubscription. Run a batch
/// with `threads == 1` to let per-solve threading through instead.
/// Either way the numbers are bit-identical — only latency moves.
///
/// # Errors
///
/// Returns the first flow-construction or dispatch error; remaining
/// workers stop at the next queue pull.
pub fn run_requests(
    base: &FlowConfig,
    requests: &[OptimizeRequest],
    threads: usize,
) -> Result<RequestBatch, FlowError> {
    let started = Instant::now();
    if requests.is_empty() {
        return Ok(RequestBatch {
            outcomes: Vec::new(),
            threads: 0,
            flows_built: 0,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        });
    }

    // Group requests by (workload, mesh): one Flow per group.
    let mut group_of = Vec::with_capacity(requests.len());
    let mut groups: Vec<(WorkloadSpec, (usize, usize))> = Vec::new();
    for request in requests {
        let key = groups
            .iter()
            .position(|(spec, mesh)| *spec == request.workload && *mesh == request.mesh);
        let gi = match key {
            Some(gi) => gi,
            None => {
                groups.push((request.workload.clone(), request.mesh));
                groups.len() - 1
            }
        };
        group_of.push(gi);
    }

    let threads = threads.max(1).min(requests.len());
    let error: Mutex<Option<FlowError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    // All worker-shared mutexes guard plain data that is never left
    // half-written across a panic, so a poisoned lock is recovered
    // rather than cascading the panic into every sibling worker.
    fn unpoison<T>(e: std::sync::PoisonError<T>) -> T {
        e.into_inner()
    }
    let fail = |e: FlowError| {
        abort.store(true, Ordering::SeqCst);
        let mut slot = error.lock().unwrap_or_else(unpoison);
        slot.get_or_insert(e);
    };

    // Phase 1: build one flow per group, in parallel. Every flow is
    // pointed at one shared model cache — the base placement does not
    // depend on the workload, so groups sharing a mesh produce identical
    // die geometries and must factorize each of them only once — and its
    // baseline is primed here, while the work is still spread across
    // groups, so phase-2 workers never race to initialize it.
    let shared_cache = crate::ThermalModelCache::new();
    let flow_slots: Vec<Mutex<Option<Flow>>> = groups.iter().map(|_| Mutex::new(None)).collect();
    let next_group = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(groups.len()) {
            s.spawn(|| loop {
                let gi = next_group.fetch_add(1, Ordering::SeqCst);
                if gi >= groups.len() || abort.load(Ordering::SeqCst) {
                    break;
                }
                let (spec, mesh) = &groups[gi];
                let built =
                    Flow::new(group_config(base, spec, *mesh, threads)).and_then(|mut flow| {
                        flow.set_thermal_cache(shared_cache.clone());
                        flow.prime_baseline()?;
                        Ok(flow)
                    });
                match built {
                    Ok(flow) => {
                        *flow_slots[gi].lock().unwrap_or_else(unpoison) = Some(flow);
                    }
                    Err(e) => fail(e),
                }
            });
        }
    });
    if let Some(e) = error.lock().unwrap_or_else(unpoison).take() {
        return Err(e);
    }
    let flows: Vec<Flow> = flow_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(unpoison)
                .ok_or_else(|| FlowError::Internal {
                    detail: "a flow group was never built yet no error was recorded".to_string(),
                })
        })
        .collect::<Result<_, _>>()?;

    // Phase 2: dispatch requests against the shared flows.
    let outcomes: Mutex<Vec<Option<RequestOutcome>>> =
        Mutex::new((0..requests.len()).map(|_| None).collect());
    let next_request = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next_request.fetch_add(1, Ordering::SeqCst);
                if i >= requests.len() || abort.load(Ordering::SeqCst) {
                    break;
                }
                let request = &requests[i];
                let flow = &flows[group_of[i]];
                let eval_started = Instant::now();
                match flow.optimize(request) {
                    Ok(response) => {
                        let outcome = RequestOutcome {
                            request: request.clone(),
                            response,
                            wall_ms: eval_started.elapsed().as_secs_f64() * 1e3,
                        };
                        outcomes.lock().unwrap_or_else(unpoison)[i] = Some(outcome);
                    }
                    Err(e) => fail(e),
                }
            });
        }
    });
    if let Some(e) = error.lock().unwrap_or_else(unpoison).take() {
        return Err(e);
    }
    let outcomes = outcomes
        .into_inner()
        .unwrap_or_else(unpoison)
        .into_iter()
        .map(|r| {
            r.ok_or_else(|| FlowError::Internal {
                detail: "a request was never dispatched yet no error was recorded".to_string(),
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(RequestBatch {
        outcomes,
        threads,
        flows_built: groups.len(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid::new(FlowConfig::scattered_small().fast())
            .mesh(8, 8)
            .mesh(10, 10)
            .strategy(Strategy::UniformSlack {
                area_overhead: 0.16,
            })
            .row_counts([4, 8])
    }

    #[test]
    fn parallel_batches_degrade_solves_to_one_thread() {
        // workers × solver threads must not oversubscribe: a parallel
        // batch forces every per-solve thread count to 1, a serial batch
        // lets the base's solver threading through untouched.
        let mut base = FlowConfig::scattered_small().fast();
        base.thermal.threads = 4;
        let spec = base.workload.clone();
        let parallel = group_config(&base, &spec, (8, 8), 2);
        assert_eq!(parallel.thermal.threads, 1);
        let serial = group_config(&base, &spec, (8, 8), 1);
        assert_eq!(serial.thermal.threads, 4);
        assert_eq!(serial.thermal.grid, GridSpec { nx: 8, ny: 8 });
    }

    #[test]
    fn grid_expansion_is_the_cartesian_product() {
        let grid = small_grid().workload(
            "booth",
            WorkloadSpec {
                active: vec![arithgen::UnitRole::BoothMult],
                toggle_probability: 0.5,
            },
        );
        // 1 workload × 2 meshes × 3 strategies.
        assert_eq!(grid.scenario_count(), 6);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 6);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.workload, "booth");
        }
        // An empty workload axis falls back to the base workload.
        let implicit = small_grid();
        assert_eq!(implicit.scenario_count(), 6);
        assert_eq!(implicit.scenarios()[0].workload, "base");
    }

    #[test]
    #[allow(deprecated)]
    fn sweep_matches_direct_runs_and_is_thread_invariant() {
        let grid = small_grid();
        let one = run_sweep(&grid, 1).unwrap();
        let four = run_sweep(&grid, 4).unwrap();
        assert_eq!(one.results.len(), grid.scenario_count());
        assert_eq!(four.results.len(), grid.scenario_count());
        assert_eq!(one.flows_built, 2, "two meshes share one workload");
        for (a, b) in one.results.iter().zip(&four.results) {
            assert_eq!(a.scenario.index, b.scenario.index);
            assert!(
                (a.report.after.peak_c - b.report.after.peak_c).abs() < 1e-9,
                "thread count must not change results"
            );
        }
        // Spot-check scenario 0 against a direct Flow evaluation.
        let flow = Flow::new(group_config(
            &grid.base,
            &grid.base.workload,
            one.results[0].scenario.mesh,
            1,
        ))
        .unwrap();
        let direct = flow.run(one.results[0].scenario.strategy).unwrap();
        assert!(
            (direct.after.peak_c - one.results[0].report.after.peak_c).abs() < 1e-6,
            "sweep result must match a direct run"
        );
    }

    #[test]
    fn bundled_workload_profiles_cover_both_regimes() {
        // The sweep's bundled profiles must exercise the two strategy
        // regimes: a concentrated cluster (wrapper-friendly) and an
        // alternating spread (ERI-friendly).
        let clustered = WorkloadSpec::clustered_hotspot();
        assert_eq!(clustered.active.len(), 3, "the three multipliers");
        assert!(clustered.toggle_probability > 0.5, "driven hard");
        let checker = WorkloadSpec::checkerboard();
        assert_eq!(checker.active.len(), 5, "every other of the nine units");
        assert_eq!(checker.active[0], arithgen::UnitRole::ALL[0]);
        assert_eq!(checker.active[4], arithgen::UnitRole::ALL[8]);
        // Both slot into a sweep grid like any other workload.
        let grid = SweepGrid::new(FlowConfig::scattered_small().fast())
            .workload("clustered", clustered)
            .workload("checkerboard", checker)
            .row_counts([4]);
        assert_eq!(grid.scenario_count(), 2);
    }

    #[test]
    #[allow(deprecated)]
    fn transform_axis_scenarios_match_direct_transform_runs() {
        let id = "composite(targeted-eri:4+spread)";
        let grid = SweepGrid::new(FlowConfig::scattered_small().fast())
            .mesh(10, 10)
            .row_counts([4])
            .transform(id)
            .transform("hot-spread:0.16");
        assert_eq!(grid.scenario_count(), 3);
        let report = run_sweep(&grid, 2).unwrap();
        let composite = &report.results[1];
        assert_eq!(composite.scenario.label(), id);
        assert_eq!(composite.report.transform_id, id);
        assert_eq!(composite.scenario.strategy, Strategy::None, "facade value");
        // The sweep's transform evaluation must match a direct run.
        let flow = Flow::new(grid.scenario_config(&composite.scenario)).unwrap();
        let t = crate::TransformRegistry::parse(id).unwrap();
        let direct = flow.run_transform(t.as_ref()).unwrap();
        assert!((direct.after.peak_c - composite.report.after.peak_c).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid transform id")]
    fn bad_transform_ids_fail_at_grid_construction() {
        let _ = SweepGrid::new(FlowConfig::scattered_small().fast()).transform("bogus:1");
    }

    #[test]
    #[allow(deprecated)]
    fn empty_grid_returns_an_empty_report() {
        let grid = SweepGrid::new(FlowConfig::scattered_small().fast());
        let report = run_sweep(&grid, 2).unwrap();
        assert!(report.results.is_empty());
        assert_eq!(report.flows_built, 0);
        let batch = run_requests(&grid.base, &[], 2).unwrap();
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.flows_built, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_sweep_shim_is_bit_identical_to_the_typed_batch() {
        let grid = small_grid();
        let legacy = run_sweep(&grid, 2).unwrap();
        let batch = run_requests(&grid.base, &grid.requests().unwrap(), 2).unwrap();
        assert_eq!(legacy.results.len(), batch.outcomes.len());
        assert_eq!(legacy.flows_built, batch.flows_built);
        for (old, new) in legacy.results.iter().zip(&batch.outcomes) {
            let report = new.response.report().expect("strategy goals yield reports");
            // Bit-identical, not approximately equal: the shim routes
            // through the exact same typed dispatch.
            assert_eq!(
                old.report.after.peak_c.to_bits(),
                report.after.peak_c.to_bits()
            );
            assert_eq!(
                old.report.area_overhead_pct.to_bits(),
                report.area_overhead_pct.to_bits()
            );
            assert_eq!(old.report.transform_id, report.transform_id);
            assert_eq!(old.scenario.label(), {
                // Strategy-axis requests carry the strategy's compact
                // display through the goal; labels stay comparable.
                match &new.request.goal {
                    crate::OptimizeGoal::Strategy(s) => s.to_string(),
                    crate::OptimizeGoal::Transform { id } => id.clone(),
                    _ => unreachable!("grids only expand strategy/transform goals"),
                }
            });
        }
    }
}
