//! The paper's stated future work, implemented: "improve the efficiency
//! of the approaches by transforming them into suitable optimization
//! problems (e.g., the amount of empty rows or filler cells to be
//! inserted)."
//!
//! [`minimize_rows_for_target`] finds the smallest empty-row count whose
//! ERI transformation reaches a requested peak-temperature reduction, and
//! [`best_strategy_within_budget`] picks the winning technique under an
//! area budget — the decisions a designer would otherwise sweep by hand.
//!
//! Both loops follow the same two-phase shape: candidates are first
//! *screened* through a [`crate::DeltaCandidateEvaluator`] — each
//! candidate priced as a sparse power delta against the memoized
//! baseline, microseconds-to-milliseconds instead of a full re-place +
//! re-solve — and only the screened winner is *verified* with exact
//! [`Flow::run`] evaluations. Reported numbers therefore never come from
//! the approximation path, and the exactness guarantees (minimality of
//! the row count, target actually met) are enforced by real runs.

use crate::{
    CandidateEvaluator, Flow, FlowError, FlowReport, PlacementTransform, Strategy,
    TransformRegistry,
};

/// Tunable knobs of the screen-then-verify optimization loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeConfig {
    /// How far (in percentage points of reduction) the screening
    /// surrogate is trusted when ranking candidates: an
    /// exactly-evaluated leader must beat the next candidate's
    /// *estimate* by this margin before the loop stops spending exact
    /// evaluations on the rest. Raise it for workloads where the
    /// surrogate is known to be optimistic; lower it to spend fewer
    /// exact runs.
    pub screen_margin_pct: f64,
    /// Slack (in percentage points of area) tolerated between a
    /// candidate's realized overhead and the budget — row quantization
    /// and placer realization keep overheads from landing exactly on
    /// the target.
    pub budget_slack_pct: f64,
    /// Frontier resolution (percentage points of reduction): a
    /// surrogate-front candidate is exact-verified only when its
    /// estimate adds at least this much over the previously verified
    /// point. Near-duplicate candidates (different techniques realizing
    /// the same trade-off within noise) then share one exact run, which
    /// is what keeps exact verifications a small fraction of the
    /// screened set. `0.0` verifies the entire surrogate front.
    pub frontier_gain_pct: f64,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            screen_margin_pct: 1.5,
            budget_slack_pct: 0.5,
            frontier_gain_pct: 0.25,
        }
    }
}

/// Result of a row-count optimization.
#[must_use = "a RowOptimum carries the selected row count and its evidence"]
#[derive(Debug, Clone)]
pub struct RowOptimum {
    /// The smallest row count meeting the target (if any met it).
    pub rows: usize,
    /// The report at that row count (from an exact run).
    pub report: FlowReport,
    /// Number of exact `Flow::run` evaluations spent.
    pub evaluations: usize,
    /// Number of cheap surrogate screenings spent (delta path).
    pub screened: usize,
}

/// Finds the minimum number of inserted empty rows achieving at least
/// `target_reduction_pct` (reduction is monotone in the row count to well
/// within solver noise).
///
/// The row-count axis is first bisected on the delta-screening surrogate
/// to locate a candidate; the candidate is then verified — and, if the
/// surrogate was optimistic, grown; if pessimistic, walked down — with
/// exact [`Flow::run`] evaluations, so the returned optimum carries the
/// same exact-minimality guarantee as a full exact bisection at a
/// fraction of the evaluations.
///
/// `max_rows` bounds the search (e.g. the largest acceptable overhead).
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] when even `max_rows` rows miss the
/// target, and propagates evaluation errors.
pub fn minimize_rows_for_target(
    flow: &Flow,
    target_reduction_pct: f64,
    max_rows: usize,
) -> Result<RowOptimum, FlowError> {
    if max_rows == 0 {
        return Err(FlowError::BadStrategy {
            detail: "empty row insertion needs rows > 0".to_string(),
        });
    }
    // Phase 1: screen. Bisect the row axis on the surrogate estimate to
    // get a starting candidate without paying a single re-place.
    let evaluator = flow.delta_evaluator()?;
    let mut screened = 0usize;
    let mut estimate = |rows: usize| -> Result<f64, FlowError> {
        screened += 1;
        let delta = flow.strategy_power_delta(Strategy::EmptyRowInsertion { rows })?;
        Ok(evaluator.evaluate(&delta)?.reduction_pct)
    };
    let mut guess = max_rows;
    if max_rows > 1 && estimate(max_rows)? >= target_reduction_pct {
        let (mut lo, mut hi) = (1usize, max_rows);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if estimate(mid)? >= target_reduction_pct {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        guess = hi;
    }

    // Phase 2: verify exactly. Every number reported below comes from a
    // real `Flow::run`; the surrogate only chose where to start. Memoize
    // per row count — the grow phase and the closing bisection can land
    // on the same candidate, and a re-place + re-solve is never free.
    let mut evaluations = 0usize;
    let mut memo: std::collections::HashMap<usize, FlowReport> = std::collections::HashMap::new();
    let mut run = |rows: usize| -> Result<FlowReport, FlowError> {
        if let Some(report) = memo.get(&rows) {
            return Ok(report.clone());
        }
        evaluations += 1;
        let report = flow.run(Strategy::EmptyRowInsertion { rows })?;
        memo.insert(rows, report.clone());
        Ok(report)
    };
    let mut rows = guess;
    let mut report = run(rows)?;
    // Surrogate optimism: grow until the target is exactly met (doubling
    // the distance to the cap bounds this at O(log max_rows) runs).
    while report.reduction_pct() < target_reduction_pct {
        if rows >= max_rows {
            return Err(FlowError::BadStrategy {
                detail: format!(
                    "even {max_rows} rows reach only {:.2}% (< {target_reduction_pct:.2}%)",
                    report.reduction_pct()
                ),
            });
        }
        rows = (rows + (rows - rows / 2).max(1)).min(max_rows);
        report = run(rows)?;
    }
    // Surrogate pessimism: gallop down to the exact minimum — probe at
    // exponentially growing distances until the first miss (an accurate
    // surrogate pays one probe; a poor one O(log) instead of O(rows)),
    // then close the last gap by exact bisection. Monotonicity makes
    // the first miss a valid bisection floor.
    let mut floor = None; // largest row count known to miss the target
    let mut step = 1usize;
    while rows > 1 {
        let probe = rows.saturating_sub(step).max(1);
        let rep = run(probe)?;
        if rep.reduction_pct() >= target_reduction_pct {
            rows = probe;
            report = rep;
            step *= 2;
        } else {
            floor = Some(probe);
            break;
        }
    }
    if let Some(miss) = floor {
        let (mut lo, mut hi) = (miss + 1, rows);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let rep = run(mid)?;
            if rep.reduction_pct() >= target_reduction_pct {
                hi = mid;
                report = rep;
            } else {
                lo = mid + 1;
            }
        }
        rows = hi;
    }
    Ok(RowOptimum {
        rows,
        report,
        evaluations,
        screened,
    })
}

/// The outcome of a budget search, with its evaluation accounting.
#[must_use = "a BudgetOptimum carries the search result and its accounting"]
#[derive(Debug, Clone)]
pub struct BudgetOptimum {
    /// The winning report (always from an exact run).
    pub report: FlowReport,
    /// Cheap surrogate screenings spent.
    pub screened: usize,
    /// Exact `Flow::run` evaluations spent.
    pub evaluations: usize,
    /// Candidates discarded *before any evaluation* because their
    /// row-quantized planned overhead already exceeded the budget.
    pub skipped_over_budget: usize,
}

/// Evaluates the three techniques at an area budget and returns the
/// report with the largest peak-temperature reduction.
///
/// Deprecated shim: build an [`crate::OptimizeRequest`] with
/// [`crate::OptimizeRequestBuilder::budget`] and dispatch it through
/// [`Flow::optimize`] instead — bit-identical by construction (both
/// paths run [`best_strategy_within_budget_with`]).
///
/// # Errors
///
/// Propagates the first evaluation error.
#[deprecated(
    since = "0.2.0",
    note = "build an OptimizeRequest with .budget(..) and call Flow::optimize"
)]
pub fn best_strategy_within_budget(flow: &Flow, area_budget: f64) -> Result<FlowReport, FlowError> {
    best_strategy_within_budget_with(flow, area_budget, &OptimizeConfig::default())
        .map(|opt| opt.report)
}

/// Evaluates the three techniques at an area budget and returns the
/// report with the largest peak-temperature reduction, plus the search's
/// evaluation accounting.
///
/// Candidates whose row-quantized planned overhead is knowably over
/// budget are dropped before *any* evaluation — surrogate or exact (a
/// one-row ERI on a sub-row budget used to cost a full re-place +
/// re-solve before being discarded). The survivors are ranked by the
/// delta-screening surrogate; exact [`Flow::run`] evaluations are then
/// spent best-estimate-first and stop as soon as the confirmed leader
/// outruns every remaining estimate by the configured trust margin —
/// typically one or two exact runs instead of three. The returned report
/// always comes from an exact run.
///
/// # Errors
///
/// Propagates the first evaluation error, and returns
/// [`FlowError::BadStrategy`] when no candidate fits the budget.
pub fn best_strategy_within_budget_with(
    flow: &Flow,
    area_budget: f64,
    config: &OptimizeConfig,
) -> Result<BudgetOptimum, FlowError> {
    let rows = crate::rows_for_budget(flow, area_budget);
    let candidates = [
        Strategy::UniformSlack {
            area_overhead: area_budget,
        },
        Strategy::EmptyRowInsertion { rows },
        Strategy::HotspotWrapper {
            area_overhead: area_budget,
        },
    ];
    // Screen: drop knowably-over-budget candidates first (planned
    // overheads are exact for row-quantized techniques), then price the
    // survivors as power deltas on the baseline.
    let evaluator = flow.delta_evaluator()?;
    let budget_cap_pct = area_budget * 100.0 + config.budget_slack_pct;
    let mut skipped_over_budget = 0usize;
    let mut screened = 0usize;
    let mut ranked: Vec<(Box<dyn PlacementTransform>, f64)> = Vec::with_capacity(candidates.len());
    for strategy in candidates {
        let transform = strategy.to_transform();
        if transform.planned_overhead(flow)? * 100.0 > budget_cap_pct {
            skipped_over_budget += 1;
            continue;
        }
        // A candidate the workload cannot realize (e.g. ERI with no
        // detected hotspots) drops out of the ranking; the others still
        // compete — matching the tolerance of the exact-run stage below
        // and of `pareto_frontier`.
        let delta = match transform.power_delta(flow) {
            Ok(d) => d,
            Err(FlowError::BadStrategy { .. }) => continue,
            Err(e) => return Err(e),
        };
        screened += 1;
        let estimate = evaluator.evaluate(&delta)?.reduction_pct;
        ranked.push((transform, estimate));
    }
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    // Verify: exact runs, best estimate first, early-out on a clear win.
    let mut evaluations = 0usize;
    let mut best: Option<FlowReport> = None;
    for (transform, estimate) in &ranked {
        if let Some(b) = &best {
            if b.reduction_pct() >= estimate + config.screen_margin_pct {
                break;
            }
        }
        evaluations += 1;
        let report = match flow.run_transform(transform.as_ref()) {
            Ok(r) => r,
            // Inapplicable at this budget (e.g. a wrapper with too
            // little slack to absorb its hot cells): not a winner, not
            // fatal to the search.
            Err(FlowError::BadStrategy { .. }) => continue,
            Err(e) => return Err(e),
        };
        if report.area_overhead_pct > budget_cap_pct {
            continue; // over budget (placer realization drift)
        }
        best = match best {
            Some(b) if b.reduction_pct() >= report.reduction_pct() => Some(b),
            _ => Some(report),
        };
    }
    let report = best.ok_or_else(|| FlowError::BadStrategy {
        detail: "no strategy fits the area budget".to_string(),
    })?;
    Ok(BudgetOptimum {
        report,
        screened,
        evaluations,
        skipped_over_budget,
    })
}

/// One exact-verified point of an area-vs-temperature frontier.
#[must_use = "a ParetoPoint is an exact-verified trade-off the caller asked for"]
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Stable id of the transform (parse it back with
    /// [`TransformRegistry::parse`]).
    pub transform_id: String,
    /// The registry family the candidate came from (`"eri"`,
    /// `"targeted-eri+spread"`, …).
    pub kind: String,
    /// The budget the transform was instantiated at.
    pub budget: f64,
    /// The surrogate's reduction estimate at screening time, percent.
    pub estimated_reduction_pct: f64,
    /// The exact report ([`Flow::run_transform`] — bit-reproducible).
    pub report: FlowReport,
}

/// The outcome of [`pareto_frontier`]: the paper's headline comparison
/// — which technique wins at which area overhead — automated over the
/// whole transform registry.
#[must_use = "a ParetoFrontier is the product of many exact evaluations"]
#[derive(Debug, Clone)]
pub struct ParetoFrontier {
    /// Non-dominated points, sorted by realized area overhead; the
    /// reduction is strictly increasing along the frontier.
    pub points: Vec<ParetoPoint>,
    /// Distinct candidates instantiated from the registry × budget grid.
    pub candidates: usize,
    /// Candidates priced through the screening surrogate.
    pub screened: usize,
    /// Exact `Flow::run_transform` verifications spent.
    pub exact_runs: usize,
    /// Candidates skipped (over budget, or inapplicable to this
    /// workload — e.g. ERI with no detected hotspots).
    pub skipped: usize,
}

impl ParetoFrontier {
    /// Exact verifications as a fraction of screened candidates — the
    /// bench gate holds this at ≤ 25 %.
    pub fn exact_share(&self) -> f64 {
        if self.screened == 0 {
            0.0
        } else {
            self.exact_runs as f64 / self.screened as f64
        }
    }
}

/// Sweeps the full transform registry across a budget grid and returns
/// the area-overhead-vs-peak-reduction Pareto frontier.
///
/// Every `registry × budgets` candidate is priced through the
/// [`crate::DeltaCandidateEvaluator`] surrogate (microseconds each once
/// the influence columns are warm); only the candidates on the
/// *surrogate* Pareto front are verified with exact
/// [`Flow::run_transform`] evaluations, and the returned frontier is
/// re-filtered on the exact numbers — so it is monotone (strictly
/// increasing reduction over increasing overhead), non-dominated, and
/// every point's report bit-matches a direct run of its transform.
///
/// Candidates that do not apply to the workload (e.g. row insertion
/// when no hotspot is detected) or whose *exact* evaluation fails on a
/// degenerate geometry are skipped, not fatal: the frontier reports
/// what the registry could realize.
///
/// # Errors
///
/// Propagates baseline/thermal failures.
#[deprecated(
    since = "0.2.0",
    note = "build an OptimizeRequest with .frontier(..) and call Flow::optimize \
            (or Flow::optimize_with for a custom registry)"
)]
pub fn pareto_frontier(
    flow: &Flow,
    budgets: &[f64],
    registry: &TransformRegistry,
    config: &OptimizeConfig,
) -> Result<ParetoFrontier, FlowError> {
    compute_pareto_frontier(flow, budgets, registry, config)
}

/// The frontier engine behind [`Flow::optimize`]'s frontier goal and
/// the deprecated [`pareto_frontier`] shim (see that function's docs
/// for the screen-then-verify contract).
pub(crate) fn compute_pareto_frontier(
    flow: &Flow,
    budgets: &[f64],
    registry: &TransformRegistry,
    config: &OptimizeConfig,
) -> Result<ParetoFrontier, FlowError> {
    struct Candidate {
        transform: Box<dyn PlacementTransform>,
        kind: String,
        budget: f64,
        overhead_pct: f64,
        estimate: f64,
    }
    let evaluator = flow.delta_evaluator()?;
    let mut skipped = 0usize;
    let mut screened = 0usize;
    let mut seen = std::collections::HashSet::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    for &budget in budgets {
        for factory in registry.factories() {
            let transform = match factory.at_budget(flow, budget) {
                Ok(t) => t,
                Err(FlowError::BadStrategy { .. }) => {
                    skipped += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            // Row quantization makes neighbouring budgets collapse onto
            // the same transform; screen each distinct id once. The
            // budget check comes first: a candidate over *this* budget
            // (the one-row minimum) may still fit a later, larger one,
            // so only in-budget candidates enter the dedup set.
            if seen.contains(&transform.id()) {
                continue;
            }
            let overhead_pct = transform.planned_overhead(flow)? * 100.0;
            if overhead_pct > budget * 100.0 + config.budget_slack_pct {
                skipped += 1; // knowably over budget (one-row minimum)
                continue;
            }
            seen.insert(transform.id());
            let delta = match transform.power_delta(flow) {
                Ok(d) => d,
                Err(FlowError::BadStrategy { .. }) => {
                    skipped += 1; // inapplicable here (e.g. no hotspots)
                    continue;
                }
                Err(e) => return Err(e),
            };
            screened += 1;
            let estimate = evaluator.evaluate(&delta)?.reduction_pct;
            candidates.push(Candidate {
                transform,
                kind: factory.kind().to_string(),
                budget,
                overhead_pct,
                estimate,
            });
        }
    }
    let candidate_count = candidates.len();

    // Surrogate Pareto front: sort by (overhead asc, estimate desc) and
    // keep every candidate whose estimate strictly beats everything
    // cheaper by at least the frontier resolution — these are the only
    // candidates worth an exact run. Near-ties (several techniques
    // realizing the same trade-off within `frontier_gain_pct`) share
    // the one verification the first of them pays.
    candidates.sort_by(|a, b| {
        a.overhead_pct
            .total_cmp(&b.overhead_pct)
            .then(b.estimate.total_cmp(&a.estimate))
    });
    let mut exact_runs = 0usize;
    let mut verified: Vec<ParetoPoint> = Vec::new();
    let mut best_estimate = f64::NEG_INFINITY;
    for candidate in candidates {
        if candidate.estimate <= best_estimate + config.frontier_gain_pct {
            continue; // dominated on the surrogate (within resolution)
        }
        exact_runs += 1;
        let report = match flow.run_transform(candidate.transform.as_ref()) {
            Ok(r) => r,
            Err(FlowError::BadStrategy { .. }) => {
                // Degenerate at exact-apply time: do NOT raise the
                // estimate floor, so a near-tie alternative right after
                // this candidate still gets its verification instead of
                // being shadowed by a point that produced no report.
                skipped += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        best_estimate = candidate.estimate;
        verified.push(ParetoPoint {
            transform_id: candidate.transform.id(),
            kind: candidate.kind,
            budget: candidate.budget,
            estimated_reduction_pct: candidate.estimate,
            report,
        });
    }

    // Exact non-dominated filter: the surrogate ordering may not
    // survive exact evaluation, so re-run the dominance test on the
    // realized (overhead, reduction) pairs.
    verified.sort_by(|a, b| {
        a.report
            .area_overhead_pct
            .total_cmp(&b.report.area_overhead_pct)
            .then(
                b.report
                    .reduction_pct()
                    .total_cmp(&a.report.reduction_pct()),
            )
    });
    let mut points: Vec<ParetoPoint> = Vec::new();
    for point in verified {
        let dominated = points
            .last()
            .is_some_and(|prev| prev.report.reduction_pct() >= point.report.reduction_pct());
        if !dominated {
            points.push(point);
        }
    }
    Ok(ParetoFrontier {
        points,
        candidates: candidate_count,
        screened,
        exact_runs,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowConfig;

    #[test]
    fn screened_bisection_finds_a_minimal_row_count() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let max_rows = flow.base_placement().floorplan.num_rows() / 2;
        // Ask for half of what max_rows achieves; the optimum must be
        // well below max_rows and still meet the target.
        let top = flow
            .run(Strategy::EmptyRowInsertion { rows: max_rows })
            .unwrap();
        let target = top.reduction_pct() / 2.0;
        let opt = minimize_rows_for_target(&flow, target, max_rows).unwrap();
        assert!(opt.rows < max_rows, "screening should shrink the rows");
        assert!(opt.report.reduction_pct() >= target);
        assert!(opt.screened > 0, "the surrogate must have been consulted");
        // Screening must not cost more exact runs than the old full
        // bisection (probe + log2(max_rows) steps).
        assert!(
            opt.evaluations <= (max_rows as f64).log2() as usize + 3,
            "{} exact evaluations",
            opt.evaluations
        );
        // One fewer row misses the target (minimality), allowing solver
        // noise of a tenth of a percentage point.
        if opt.rows > 1 {
            let less = flow
                .run(Strategy::EmptyRowInsertion { rows: opt.rows - 1 })
                .unwrap();
            assert!(less.reduction_pct() < target + 0.1);
        }
    }

    #[test]
    fn trivial_targets_cost_one_exact_evaluation() {
        // A target every candidate meets screens straight to one row and
        // needs exactly one exact run to verify it — no bisection spend.
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let always_met = minimize_rows_for_target(&flow, -100.0, 8).unwrap();
        assert_eq!(always_met.rows, 1, "every candidate meets the target");
        assert_eq!(always_met.evaluations, 1, "screen + single verify");
        assert!(always_met.screened >= 1);

        // Degenerate search space: the verify is the only evaluation and
        // nothing is screened.
        let single = minimize_rows_for_target(&flow, -100.0, 1).unwrap();
        assert_eq!(single.rows, 1);
        assert_eq!(single.evaluations, 1);
    }

    #[test]
    fn reported_numbers_come_from_exact_runs() {
        // Whatever the surrogate estimated, the returned report must
        // bit-match a direct exact evaluation at the same row count.
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let top = flow.run(Strategy::EmptyRowInsertion { rows: 8 }).unwrap();
        let opt = minimize_rows_for_target(&flow, top.reduction_pct() / 2.0, 8).unwrap();
        let direct = flow
            .run(Strategy::EmptyRowInsertion { rows: opt.rows })
            .unwrap();
        assert_eq!(opt.report.after.peak_c, direct.after.peak_c);
        assert_eq!(opt.report.area_overhead_pct, direct.area_overhead_pct);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        assert!(minimize_rows_for_target(&flow, 95.0, 8).is_err());
    }

    #[test]
    fn best_strategy_fits_the_budget_and_the_shim_matches_the_typed_path() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        #[allow(deprecated)]
        let best = best_strategy_within_budget(&flow, 0.16).unwrap();
        assert!(best.reduction_pct() > 0.0);
        assert!(best.area_overhead_pct <= 16.5);
        // The deprecated shim must stay bit-identical to the typed path.
        let request = crate::OptimizeRequest::builder()
            .workload(flow.config().workload.clone())
            .mesh(flow.config().thermal.grid.nx, flow.config().thermal.grid.ny)
            .budget(0.16)
            .build()
            .unwrap();
        let typed = flow.optimize(&request).unwrap();
        let typed_report = typed.report().unwrap();
        assert_eq!(best.after.peak_c, typed_report.after.peak_c);
        assert_eq!(best.area_overhead_pct, typed_report.area_overhead_pct);
        assert_eq!(best.transform_id, typed_report.transform_id);
    }

    #[test]
    fn knowably_over_budget_candidates_skip_every_evaluation() {
        // Regression: a budget below one row pitch quantizes ERI to a
        // single row whose realized overhead is knowably over budget.
        // The old loop paid a full exact `Flow::run` on it before the
        // in-loop overhead check discarded it; screening must now drop
        // it before any evaluation — surrogate or exact.
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let rows0 = flow.base_placement().floorplan.num_rows();
        let budget = 0.5 / rows0 as f64; // half a row pitch
        let opt =
            best_strategy_within_budget_with(&flow, budget, &OptimizeConfig::default()).unwrap();
        assert_eq!(opt.skipped_over_budget, 1, "the one-row ERI candidate");
        assert_eq!(opt.screened, 2, "only uniform and hw get surrogates");
        assert!(
            opt.evaluations <= 2,
            "no exact run on the over-budget candidate ({} spent)",
            opt.evaluations
        );
        assert!(opt.report.area_overhead_pct <= budget * 100.0 + 0.5);
    }

    #[test]
    fn screen_margin_is_tunable_per_workload() {
        // A huge trust margin distrusts the surrogate and verifies every
        // in-budget candidate; a zero margin trusts the ranking and
        // stops as soon as the confirmed leader matches the next
        // estimate.
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let skeptical = OptimizeConfig {
            screen_margin_pct: 1e6,
            ..OptimizeConfig::default()
        };
        let all = best_strategy_within_budget_with(&flow, 0.16, &skeptical).unwrap();
        assert_eq!(all.evaluations, all.screened, "margin forces every run");
        let trusting = OptimizeConfig {
            screen_margin_pct: 0.0,
            ..OptimizeConfig::default()
        };
        let opt = best_strategy_within_budget_with(&flow, 0.16, &trusting).unwrap();
        assert!(opt.evaluations <= all.evaluations);
        // Both pick exact-verified winners; the trusting loop's winner
        // cannot beat the skeptical loop's (which saw everything).
        assert!(all.report.reduction_pct() >= opt.report.reduction_pct() - 1e-9);
    }
}
