//! The paper's stated future work, implemented: "improve the efficiency
//! of the approaches by transforming them into suitable optimization
//! problems (e.g., the amount of empty rows or filler cells to be
//! inserted)."
//!
//! [`minimize_rows_for_target`] finds the smallest empty-row count whose
//! ERI transformation reaches a requested peak-temperature reduction, and
//! [`best_strategy_within_budget`] picks the winning technique under an
//! area budget — the decisions a designer would otherwise sweep by hand.
//!
//! Both loops follow the same two-phase shape: candidates are first
//! *screened* through a [`crate::DeltaCandidateEvaluator`] — each
//! candidate priced as a sparse power delta against the memoized
//! baseline, microseconds-to-milliseconds instead of a full re-place +
//! re-solve — and only the screened winner is *verified* with exact
//! [`Flow::run`] evaluations. Reported numbers therefore never come from
//! the approximation path, and the exactness guarantees (minimality of
//! the row count, target actually met) are enforced by real runs.

use crate::{CandidateEvaluator, Flow, FlowError, FlowReport, Strategy};

/// Result of a row-count optimization.
#[derive(Debug, Clone)]
pub struct RowOptimum {
    /// The smallest row count meeting the target (if any met it).
    pub rows: usize,
    /// The report at that row count (from an exact run).
    pub report: FlowReport,
    /// Number of exact `Flow::run` evaluations spent.
    pub evaluations: usize,
    /// Number of cheap surrogate screenings spent (delta path).
    pub screened: usize,
}

/// Finds the minimum number of inserted empty rows achieving at least
/// `target_reduction_pct` (reduction is monotone in the row count to well
/// within solver noise).
///
/// The row-count axis is first bisected on the delta-screening surrogate
/// to locate a candidate; the candidate is then verified — and, if the
/// surrogate was optimistic, grown; if pessimistic, walked down — with
/// exact [`Flow::run`] evaluations, so the returned optimum carries the
/// same exact-minimality guarantee as a full exact bisection at a
/// fraction of the evaluations.
///
/// `max_rows` bounds the search (e.g. the largest acceptable overhead).
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] when even `max_rows` rows miss the
/// target, and propagates evaluation errors.
pub fn minimize_rows_for_target(
    flow: &Flow,
    target_reduction_pct: f64,
    max_rows: usize,
) -> Result<RowOptimum, FlowError> {
    if max_rows == 0 {
        return Err(FlowError::BadStrategy {
            detail: "empty row insertion needs rows > 0".to_string(),
        });
    }
    // Phase 1: screen. Bisect the row axis on the surrogate estimate to
    // get a starting candidate without paying a single re-place.
    let evaluator = flow.delta_evaluator()?;
    let mut screened = 0usize;
    let mut estimate = |rows: usize| -> Result<f64, FlowError> {
        screened += 1;
        let delta = flow.strategy_power_delta(Strategy::EmptyRowInsertion { rows })?;
        Ok(evaluator.evaluate(&delta)?.reduction_pct)
    };
    let mut guess = max_rows;
    if max_rows > 1 && estimate(max_rows)? >= target_reduction_pct {
        let (mut lo, mut hi) = (1usize, max_rows);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if estimate(mid)? >= target_reduction_pct {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        guess = hi;
    }

    // Phase 2: verify exactly. Every number reported below comes from a
    // real `Flow::run`; the surrogate only chose where to start. Memoize
    // per row count — the grow phase and the closing bisection can land
    // on the same candidate, and a re-place + re-solve is never free.
    let mut evaluations = 0usize;
    let mut memo: std::collections::HashMap<usize, FlowReport> = std::collections::HashMap::new();
    let mut run = |rows: usize| -> Result<FlowReport, FlowError> {
        if let Some(report) = memo.get(&rows) {
            return Ok(report.clone());
        }
        evaluations += 1;
        let report = flow.run(Strategy::EmptyRowInsertion { rows })?;
        memo.insert(rows, report.clone());
        Ok(report)
    };
    let mut rows = guess;
    let mut report = run(rows)?;
    // Surrogate optimism: grow until the target is exactly met (doubling
    // the distance to the cap bounds this at O(log max_rows) runs).
    while report.reduction_pct() < target_reduction_pct {
        if rows >= max_rows {
            return Err(FlowError::BadStrategy {
                detail: format!(
                    "even {max_rows} rows reach only {:.2}% (< {target_reduction_pct:.2}%)",
                    report.reduction_pct()
                ),
            });
        }
        rows = (rows + (rows - rows / 2).max(1)).min(max_rows);
        report = run(rows)?;
    }
    // Surrogate pessimism: gallop down to the exact minimum — probe at
    // exponentially growing distances until the first miss (an accurate
    // surrogate pays one probe; a poor one O(log) instead of O(rows)),
    // then close the last gap by exact bisection. Monotonicity makes
    // the first miss a valid bisection floor.
    let mut floor = None; // largest row count known to miss the target
    let mut step = 1usize;
    while rows > 1 {
        let probe = rows.saturating_sub(step).max(1);
        let rep = run(probe)?;
        if rep.reduction_pct() >= target_reduction_pct {
            rows = probe;
            report = rep;
            step *= 2;
        } else {
            floor = Some(probe);
            break;
        }
    }
    if let Some(miss) = floor {
        let (mut lo, mut hi) = (miss + 1, rows);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let rep = run(mid)?;
            if rep.reduction_pct() >= target_reduction_pct {
                hi = mid;
                report = rep;
            } else {
                lo = mid + 1;
            }
        }
        rows = hi;
    }
    Ok(RowOptimum {
        rows,
        report,
        evaluations,
        screened,
    })
}

/// How far (in percentage points of reduction) the screening surrogate is
/// trusted when ranking strategies: an exactly-evaluated leader must beat
/// the next candidate's *estimate* by this margin before the loop stops
/// spending exact evaluations on the rest.
const SCREEN_MARGIN_PCT: f64 = 1.5;

/// Evaluates the three techniques at an area budget and returns the
/// report with the largest peak-temperature reduction.
///
/// Candidates are ranked by the delta-screening surrogate first; exact
/// [`Flow::run`] evaluations are then spent best-estimate-first and stop
/// as soon as the confirmed leader outruns every remaining estimate by
/// a small trust margin — typically one or two exact runs instead of
/// three. The returned report always comes from an exact run.
///
/// # Errors
///
/// Propagates the first evaluation error.
pub fn best_strategy_within_budget(flow: &Flow, area_budget: f64) -> Result<FlowReport, FlowError> {
    let rows0 = flow.base_placement().floorplan.num_rows();
    let rows = ((area_budget * rows0 as f64).floor() as usize).max(1);
    let candidates = [
        Strategy::UniformSlack {
            area_overhead: area_budget,
        },
        Strategy::EmptyRowInsertion { rows },
        Strategy::HotspotWrapper {
            area_overhead: area_budget,
        },
    ];
    // Screen: price every candidate as a power delta on the baseline.
    let evaluator = flow.delta_evaluator()?;
    let mut ranked: Vec<(Strategy, f64)> = Vec::with_capacity(candidates.len());
    for strategy in candidates {
        let delta = flow.strategy_power_delta(strategy)?;
        ranked.push((strategy, evaluator.evaluate(&delta)?.reduction_pct));
    }
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    // Verify: exact runs, best estimate first, early-out on a clear win.
    let mut best: Option<FlowReport> = None;
    for &(strategy, estimate) in &ranked {
        if let Some(b) = &best {
            if b.reduction_pct() >= estimate + SCREEN_MARGIN_PCT {
                break;
            }
        }
        let report = flow.run(strategy)?;
        if report.area_overhead_pct > area_budget * 100.0 + 0.5 {
            continue; // over budget (row quantization)
        }
        best = match best {
            Some(b) if b.reduction_pct() >= report.reduction_pct() => Some(b),
            _ => Some(report),
        };
    }
    best.ok_or_else(|| FlowError::BadStrategy {
        detail: "no strategy fits the area budget".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowConfig;

    #[test]
    fn screened_bisection_finds_a_minimal_row_count() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let max_rows = flow.base_placement().floorplan.num_rows() / 2;
        // Ask for half of what max_rows achieves; the optimum must be
        // well below max_rows and still meet the target.
        let top = flow
            .run(Strategy::EmptyRowInsertion { rows: max_rows })
            .unwrap();
        let target = top.reduction_pct() / 2.0;
        let opt = minimize_rows_for_target(&flow, target, max_rows).unwrap();
        assert!(opt.rows < max_rows, "screening should shrink the rows");
        assert!(opt.report.reduction_pct() >= target);
        assert!(opt.screened > 0, "the surrogate must have been consulted");
        // Screening must not cost more exact runs than the old full
        // bisection (probe + log2(max_rows) steps).
        assert!(
            opt.evaluations <= (max_rows as f64).log2() as usize + 3,
            "{} exact evaluations",
            opt.evaluations
        );
        // One fewer row misses the target (minimality), allowing solver
        // noise of a tenth of a percentage point.
        if opt.rows > 1 {
            let less = flow
                .run(Strategy::EmptyRowInsertion { rows: opt.rows - 1 })
                .unwrap();
            assert!(less.reduction_pct() < target + 0.1);
        }
    }

    #[test]
    fn trivial_targets_cost_one_exact_evaluation() {
        // A target every candidate meets screens straight to one row and
        // needs exactly one exact run to verify it — no bisection spend.
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let always_met = minimize_rows_for_target(&flow, -100.0, 8).unwrap();
        assert_eq!(always_met.rows, 1, "every candidate meets the target");
        assert_eq!(always_met.evaluations, 1, "screen + single verify");
        assert!(always_met.screened >= 1);

        // Degenerate search space: the verify is the only evaluation and
        // nothing is screened.
        let single = minimize_rows_for_target(&flow, -100.0, 1).unwrap();
        assert_eq!(single.rows, 1);
        assert_eq!(single.evaluations, 1);
    }

    #[test]
    fn reported_numbers_come_from_exact_runs() {
        // Whatever the surrogate estimated, the returned report must
        // bit-match a direct exact evaluation at the same row count.
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let top = flow.run(Strategy::EmptyRowInsertion { rows: 8 }).unwrap();
        let opt = minimize_rows_for_target(&flow, top.reduction_pct() / 2.0, 8).unwrap();
        let direct = flow
            .run(Strategy::EmptyRowInsertion { rows: opt.rows })
            .unwrap();
        assert_eq!(opt.report.after.peak_c, direct.after.peak_c);
        assert_eq!(opt.report.area_overhead_pct, direct.area_overhead_pct);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        assert!(minimize_rows_for_target(&flow, 95.0, 8).is_err());
    }

    #[test]
    fn best_strategy_fits_the_budget() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let best = best_strategy_within_budget(&flow, 0.16).unwrap();
        assert!(best.reduction_pct() > 0.0);
        assert!(best.area_overhead_pct <= 16.5);
    }
}
