//! The paper's stated future work, implemented: "improve the efficiency
//! of the approaches by transforming them into suitable optimization
//! problems (e.g., the amount of empty rows or filler cells to be
//! inserted)."
//!
//! [`minimize_rows_for_target`] finds the smallest empty-row count whose
//! ERI transformation reaches a requested peak-temperature reduction, and
//! [`best_strategy_within_budget`] picks the winning technique under an
//! area budget — the decisions a designer would otherwise sweep by hand.

use crate::{Flow, FlowError, FlowReport, Strategy};

/// Result of a row-count optimization.
#[derive(Debug, Clone)]
pub struct RowOptimum {
    /// The smallest row count meeting the target (if any met it).
    pub rows: usize,
    /// The report at that row count.
    pub report: FlowReport,
    /// Number of `Flow::run` evaluations spent.
    pub evaluations: usize,
}

/// Finds the minimum number of inserted empty rows achieving at least
/// `target_reduction_pct`, by bisection over the row count (reduction is
/// monotone in the row count to well within solver noise).
///
/// `max_rows` bounds the search (e.g. the largest acceptable overhead).
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] when even `max_rows` rows miss the
/// target, and propagates evaluation errors.
pub fn minimize_rows_for_target(
    flow: &Flow,
    target_reduction_pct: f64,
    max_rows: usize,
) -> Result<RowOptimum, FlowError> {
    // Every `Flow::run` goes through this evaluator so the tally is
    // auditable on all exit paths; `evaluation_count_is_exact` pins the
    // exact counts.
    struct Evaluator<'a> {
        flow: &'a Flow,
        evaluations: usize,
    }
    impl Evaluator<'_> {
        fn run(&mut self, rows: usize) -> Result<FlowReport, FlowError> {
            self.evaluations += 1;
            self.flow.run(Strategy::EmptyRowInsertion { rows })
        }
    }
    let mut eval = Evaluator {
        flow,
        evaluations: 0,
    };
    let top = eval.run(max_rows)?;
    if top.reduction_pct() < target_reduction_pct {
        return Err(FlowError::BadStrategy {
            detail: format!(
                "even {max_rows} rows reach only {:.2}% (< {target_reduction_pct:.2}%)",
                top.reduction_pct()
            ),
        });
    }
    let mut lo = 1usize; // smallest candidate
    let mut hi = max_rows; // known to meet the target
    let mut best = top;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let report = eval.run(mid)?;
        if report.reduction_pct() >= target_reduction_pct {
            hi = mid;
            best = report;
        } else {
            lo = mid + 1;
        }
    }
    Ok(RowOptimum {
        rows: hi,
        report: best,
        evaluations: eval.evaluations,
    })
}

/// Evaluates all three techniques at an area budget and returns the
/// report with the largest peak-temperature reduction.
///
/// # Errors
///
/// Propagates the first evaluation error.
pub fn best_strategy_within_budget(flow: &Flow, area_budget: f64) -> Result<FlowReport, FlowError> {
    let rows0 = flow.base_placement().floorplan.num_rows();
    let rows = ((area_budget * rows0 as f64).floor() as usize).max(1);
    let candidates = [
        Strategy::UniformSlack {
            area_overhead: area_budget,
        },
        Strategy::EmptyRowInsertion { rows },
        Strategy::HotspotWrapper {
            area_overhead: area_budget,
        },
    ];
    let mut best: Option<FlowReport> = None;
    for strategy in candidates {
        let report = flow.run(strategy)?;
        if report.area_overhead_pct > area_budget * 100.0 + 0.5 {
            continue; // over budget (row quantization)
        }
        best = match best {
            Some(b) if b.reduction_pct() >= report.reduction_pct() => Some(b),
            _ => Some(report),
        };
    }
    best.ok_or_else(|| FlowError::BadStrategy {
        detail: "no strategy fits the area budget".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowConfig;

    #[test]
    fn bisection_finds_a_minimal_row_count() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let max_rows = flow.base_placement().floorplan.num_rows() / 2;
        // Ask for half of what max_rows achieves; the optimum must be
        // well below max_rows and still meet the target.
        let top = flow
            .run(Strategy::EmptyRowInsertion { rows: max_rows })
            .unwrap();
        let target = top.reduction_pct() / 2.0;
        let opt = minimize_rows_for_target(&flow, target, max_rows).unwrap();
        assert!(opt.rows < max_rows, "bisection should shrink the rows");
        assert!(opt.report.reduction_pct() >= target);
        // log2(max_rows) + 1 evaluations.
        assert!(opt.evaluations <= (max_rows as f64).log2() as usize + 3);
        // One fewer row misses the target (minimality), allowing solver
        // noise of a tenth of a percentage point.
        if opt.rows > 1 {
            let less = flow
                .run(Strategy::EmptyRowInsertion { rows: opt.rows - 1 })
                .unwrap();
            assert!(less.reduction_pct() < target + 0.1);
        }
    }

    #[test]
    fn evaluation_count_is_exact() {
        // Bisection over [1, 8] always takes log2(8) = 3 steps on top of
        // the max_rows probe, whatever the target, so the tally must be
        // exactly 4 — no undercounting on early target hits.
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let always_met = minimize_rows_for_target(&flow, -100.0, 8).unwrap();
        assert_eq!(always_met.rows, 1, "every candidate meets the target");
        assert_eq!(always_met.evaluations, 4, "probe + 3 bisection steps");

        let top = flow.run(Strategy::EmptyRowInsertion { rows: 8 }).unwrap();
        let midway = minimize_rows_for_target(&flow, top.reduction_pct() / 2.0, 8).unwrap();
        assert_eq!(midway.evaluations, 4, "probe + 3 bisection steps");

        // Degenerate search space: the probe is the only evaluation.
        let single = minimize_rows_for_target(&flow, -100.0, 1).unwrap();
        assert_eq!(single.rows, 1);
        assert_eq!(single.evaluations, 1);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        assert!(minimize_rows_for_target(&flow, 95.0, 8).is_err());
    }

    #[test]
    fn best_strategy_fits_the_budget() {
        let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
        let best = best_strategy_within_budget(&flow, 0.16).unwrap();
        assert!(best.reduction_pct() > 0.0);
        assert!(best.area_overhead_pct <= 16.5);
    }
}
