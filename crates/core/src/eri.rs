//! Empty Row Insertion (ERI).
//!
//! "In the area around a given hotspot, we insert an empty row between
//! useful rows. This row of whitespace will be filled with dummy cells.
//! In this way we increase the area only of the hotspot region." The die
//! outline grows vertically by one row pitch per inserted row, exactly as
//! in the paper's Table I (20 rows: 335×335 → 335×389 µm²).

use netlist::Netlist;
use placement::{fill_whitespace, Floorplan, Placement};
use thermalsim::ThermalMap;

use crate::{FlowError, Hotspot};

/// What an ERI transformation did.
#[derive(Debug, Clone, PartialEq)]
pub struct EriReport {
    /// Old-index row positions that received an empty row below them.
    pub insertion_positions: Vec<usize>,
    /// Resulting area overhead, as a fraction of the original core area.
    pub area_overhead: f64,
}

/// Inserts `rows` empty rows interleaved with the hotspot rows and
/// rebuilds the placement on the grown floorplan (cells move up rigidly;
/// fillers are re-poured).
///
/// Insertion positions are the gaps between used rows, ranked by the
/// temperature of the adjacent rows (from the hotspot bins of the thermal
/// map): the hottest gaps receive empty rows first; once every gap of a
/// hot band has one, further rows double up, widening the whitespace.
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] when `rows == 0` or no hotspot was
/// supplied.
pub fn empty_row_insertion(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &Placement,
    map: &ThermalMap,
    hotspots: &[Hotspot],
    rows: usize,
) -> Result<(Floorplan, Placement, EriReport), FlowError> {
    if rows == 0 {
        return Err(FlowError::BadStrategy {
            detail: "empty row insertion needs rows > 0".to_string(),
        });
    }
    if hotspots.is_empty() {
        return Err(FlowError::BadStrategy {
            detail: "no hotspots to target; run detection first".to_string(),
        });
    }
    let n_rows = floorplan.num_rows();
    // Per-row heat score: the hottest hotspot bin overlapping the row.
    let grid = map.grid();
    let mut row_heat = vec![f64::NEG_INFINITY; n_rows];
    let mut any = false;
    for h in hotspots {
        for &(bx, by) in &h.bins {
            let bin = grid.bin_rect(bx, by);
            let t = *grid.get(bx, by);
            for (r, heat) in row_heat.iter_mut().enumerate() {
                if floorplan.row_rect(r).intersects(&bin) {
                    *heat = heat.max(t);
                    any = true;
                }
            }
        }
    }
    if !any {
        return Err(FlowError::BadStrategy {
            detail: "hotspots do not overlap any row".to_string(),
        });
    }
    // Candidate gaps: below row p (p = 1..n_rows) plus below row 0 and
    // above the top row; score = heat of adjacent rows.
    let gap_score = |p: usize| -> f64 {
        let below = if p > 0 {
            row_heat[p - 1]
        } else {
            f64::NEG_INFINITY
        };
        let above = if p < n_rows {
            row_heat[p]
        } else {
            f64::NEG_INFINITY
        };
        below.max(above)
    };
    let mut candidates: Vec<usize> = (0..=n_rows).filter(|&p| gap_score(p).is_finite()).collect();
    candidates.sort_by(|&a, &b| gap_score(b).total_cmp(&gap_score(a)));
    if candidates.is_empty() {
        return Err(FlowError::BadStrategy {
            detail: "no insertion candidates near the hotspots".to_string(),
        });
    }
    let positions: Vec<usize> = (0..rows)
        .map(|k| candidates[k % candidates.len()])
        .collect();

    let (new_fp, mapping) = floorplan.with_rows_inserted(&positions);
    let mut new_placement = placement.remap_rows(&new_fp, &mapping);
    fill_whitespace(netlist, &new_fp, &mut new_placement)?;
    let area_overhead = new_fp.core().area() / floorplan.core().area() - 1.0;
    Ok((
        new_fp,
        new_placement,
        EriReport {
            insertion_positions: positions,
            area_overhead,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arithgen::{build_benchmark, BenchmarkConfig};
    use geom::{Grid2d, Rect};
    use placement::{validate, Placer, PlacerConfig};

    /// A thermal map hot inside `hot` (38 °C) and cool elsewhere (30 °C).
    fn fake_map(core: Rect, hot: Rect) -> ThermalMap {
        let mut g = Grid2d::new(16, 16, core, 30.0);
        for iy in 0..16 {
            for ix in 0..16 {
                if g.bin_rect(ix, iy).intersects(&hot) {
                    *g.get_mut(ix, iy) = 38.0;
                }
            }
        }
        ThermalMap::new(g, 25.0)
    }

    fn fake_hotspot(map: &ThermalMap) -> Hotspot {
        let grid = map.grid();
        let bins: Vec<(usize, usize)> = grid
            .iter()
            .filter(|&(_, &t)| t > 34.0)
            .map(|(b, _)| b)
            .collect();
        let mut bbox = grid.bin_rect(bins[0].0, bins[0].1);
        for &(x, y) in &bins {
            bbox = bbox.union(&grid.bin_rect(x, y));
        }
        Hotspot {
            area_um2: bins.len() as f64 * grid.bin_width() * grid.bin_height(),
            bins,
            bbox,
            peak_c: 38.0,
        }
    }

    fn setup() -> (netlist::Netlist, placement::PlacementResult) {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let placed = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        (nl, placed)
    }

    #[test]
    fn eri_grows_core_and_stays_legal() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(
            core.llx,
            core.lly + core.height() * 0.3,
            core.urx,
            core.lly + core.height() * 0.5,
        );
        let map = fake_map(core, hot);
        let hs = fake_hotspot(&map);
        let (fp2, p2, report) =
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], 8).unwrap();
        assert_eq!(fp2.num_rows(), base.floorplan.num_rows() + 8);
        assert!(validate(&nl, &fp2, &p2).is_empty(), "legal after ERI");
        let expected = 8.0 / base.floorplan.num_rows() as f64;
        assert!((report.area_overhead - expected).abs() < 1e-9);
    }

    #[test]
    fn insertions_land_in_the_hot_band() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(
            core.llx,
            core.lly + core.height() * 0.4,
            core.urx,
            core.lly + core.height() * 0.6,
        );
        let map = fake_map(core, hot);
        let hs = fake_hotspot(&map);
        let (_, _, report) =
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], 4).unwrap();
        let n = base.floorplan.num_rows() as f64;
        for &p in &report.insertion_positions {
            let frac = p as f64 / n;
            assert!(
                (0.3..=0.7).contains(&frac),
                "insertion at {frac:.2} of the core is outside the hot band"
            );
        }
    }

    #[test]
    fn cells_only_move_upward_rigidly() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(core.llx, core.lly, core.urx, core.lly + 12.0);
        let map = fake_map(core, hot);
        let hs = fake_hotspot(&map);
        let (fp2, p2, _) =
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], 3).unwrap();
        for (id, _) in nl.cells() {
            let before = base.placement.cell_rect(&nl, &base.floorplan, id).unwrap();
            let after = p2.cell_rect(&nl, &fp2, id).unwrap();
            assert_eq!(before.llx, after.llx, "no horizontal motion");
            assert!(after.lly >= before.lly - 1e-9, "no downward motion");
        }
    }

    #[test]
    fn many_rows_double_up_in_the_band() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(
            core.llx,
            core.lly + core.height() * 0.45,
            core.urx,
            core.lly + core.height() * 0.5,
        );
        let map = fake_map(core, hot);
        let hs = fake_hotspot(&map);
        let rows = base.floorplan.num_rows() / 2;
        let (fp2, p2, _) =
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], rows).unwrap();
        assert_eq!(fp2.num_rows(), base.floorplan.num_rows() + rows);
        assert!(validate(&nl, &fp2, &p2).is_empty());
    }

    #[test]
    fn zero_rows_is_rejected() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let map = fake_map(core, Rect::new(0.0, 0.0, 10.0, 10.0));
        let hs = fake_hotspot(&map);
        assert!(
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], 0).is_err()
        );
    }
}
