//! Empty Row Insertion (ERI).
//!
//! "In the area around a given hotspot, we insert an empty row between
//! useful rows. This row of whitespace will be filled with dummy cells.
//! In this way we increase the area only of the hotspot region." The die
//! outline grows vertically by one row pitch per inserted row, exactly as
//! in the paper's Table I (20 rows: 335×335 → 335×389 µm²).

use geom::Grid2d;
use netlist::Netlist;
use placement::{fill_whitespace, Floorplan, Placement};
use thermalsim::ThermalMap;

use crate::{FlowError, Hotspot, PowerDelta};

/// What an ERI transformation did.
#[derive(Debug, Clone, PartialEq)]
pub struct EriReport {
    /// Old-index row positions that received an empty row below them.
    pub insertion_positions: Vec<usize>,
    /// Resulting area overhead, as a fraction of the original core area.
    pub area_overhead: f64,
}

/// Inserts `rows` empty rows interleaved with the hotspot rows and
/// rebuilds the placement on the grown floorplan (cells move up rigidly;
/// fillers are re-poured).
///
/// Insertion positions are the gaps between used rows, ranked by the
/// temperature of the adjacent rows (from the hotspot bins of the thermal
/// map): the hottest gaps receive empty rows first; once every gap of a
/// hot band has one, further rows double up, widening the whitespace.
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] when `rows == 0` or no hotspot was
/// supplied.
pub fn empty_row_insertion(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &Placement,
    map: &ThermalMap,
    hotspots: &[Hotspot],
    rows: usize,
) -> Result<(Floorplan, Placement, EriReport), FlowError> {
    let positions = eri_insertion_positions(floorplan, map, hotspots, rows)?;
    let (new_fp, mapping) = floorplan.with_rows_inserted(&positions);
    let mut new_placement = placement.remap_rows(&new_fp, &mapping);
    fill_whitespace(netlist, &new_fp, &mut new_placement)?;
    let area_overhead = new_fp.core().area() / floorplan.core().area() - 1.0;
    Ok((
        new_fp,
        new_placement,
        EriReport {
            insertion_positions: positions,
            area_overhead,
        },
    ))
}

/// Chooses where `rows` empty rows would go, without touching the
/// placement: the gaps between used rows ranked by the temperature of
/// the adjacent rows, hottest first, wrapping around once every hot gap
/// has one. This is the decision half of [`empty_row_insertion`], shared
/// with the candidate-screening surrogate ([`eri_power_delta`]).
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] when `rows == 0`, no hotspot was
/// supplied, or the hotspots overlap no row.
pub fn eri_insertion_positions(
    floorplan: &Floorplan,
    map: &ThermalMap,
    hotspots: &[Hotspot],
    rows: usize,
) -> Result<Vec<usize>, FlowError> {
    if rows == 0 {
        return Err(FlowError::BadStrategy {
            detail: "empty row insertion needs rows > 0".to_string(),
        });
    }
    if hotspots.is_empty() {
        return Err(FlowError::BadStrategy {
            detail: "no hotspots to target; run detection first".to_string(),
        });
    }
    let n_rows = floorplan.num_rows();
    // Per-row heat score: the hottest hotspot bin overlapping the row.
    let grid = map.grid();
    let mut row_heat = vec![f64::NEG_INFINITY; n_rows];
    let mut any = false;
    for h in hotspots {
        for &(bx, by) in &h.bins {
            let bin = grid.bin_rect(bx, by);
            let t = *grid.get(bx, by);
            for (r, heat) in row_heat.iter_mut().enumerate() {
                if floorplan.row_rect(r).intersects(&bin) {
                    *heat = heat.max(t);
                    any = true;
                }
            }
        }
    }
    if !any {
        return Err(FlowError::BadStrategy {
            detail: "hotspots do not overlap any row".to_string(),
        });
    }
    hottest_gap_positions(&row_heat, rows, "no insertion candidates near the hotspots")
}

/// Turns a per-row heat profile into insertion positions: the candidate
/// gaps (below row `p`, `p = 0..=n_rows`) are scored by the heat of
/// their adjacent rows, ranked hottest first (ties by position, for
/// determinism), and `rows` insertions are assigned round-robin over the
/// ranking — the shared selection tail of [`eri_insertion_positions`]
/// and [`targeted_insertion_positions`], which differ only in how they
/// fill `row_heat`.
fn hottest_gap_positions(
    row_heat: &[f64],
    rows: usize,
    empty_detail: &str,
) -> Result<Vec<usize>, FlowError> {
    let n_rows = row_heat.len();
    let gap_score = |p: usize| -> f64 {
        let below = if p > 0 {
            row_heat[p - 1]
        } else {
            f64::NEG_INFINITY
        };
        let above = if p < n_rows {
            row_heat[p]
        } else {
            f64::NEG_INFINITY
        };
        below.max(above)
    };
    let mut candidates: Vec<usize> = (0..=n_rows).filter(|&p| gap_score(p).is_finite()).collect();
    candidates.sort_by(|&a, &b| gap_score(b).total_cmp(&gap_score(a)).then(a.cmp(&b)));
    if candidates.is_empty() {
        return Err(FlowError::BadStrategy {
            detail: empty_detail.to_string(),
        });
    }
    Ok((0..rows)
        .map(|k| candidates[k % candidates.len()])
        .collect())
}

/// Chooses where `rows` empty rows would go from the *whole* thermal
/// profile: every gap between rows is scored by the peak temperature of
/// its adjacent rows (no hotspot detection involved), and rows land on
/// the hottest **distinct** gaps first — only once every gap has one do
/// further rows double up. This is the decision half of the
/// temperature-profile-driven *targeted* row-insertion transform
/// ([`crate::TargetedRowInsertionTransform`]); contrast with
/// [`eri_insertion_positions`], which restricts scoring to detected
/// hotspot bins and wraps around the hot band early.
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] when `rows == 0` or the floorplan
/// has no rows.
pub fn targeted_insertion_positions(
    floorplan: &Floorplan,
    map: &ThermalMap,
    rows: usize,
) -> Result<Vec<usize>, FlowError> {
    if rows == 0 {
        return Err(FlowError::BadStrategy {
            detail: "targeted row insertion needs rows > 0".to_string(),
        });
    }
    let n_rows = floorplan.num_rows();
    if n_rows == 0 {
        return Err(FlowError::BadStrategy {
            detail: "floorplan has no rows".to_string(),
        });
    }
    // Per-row heat: the hottest mesh bin overlapping the row, over the
    // full map — warm bands count even when no detector would fire.
    // Rows and mesh bands are both y-intervals, so each mesh row only
    // needs the placement rows its band can overlap (a constant-width
    // window), not the full O(mesh × rows) cross product.
    let grid = map.grid();
    let mut row_heat = vec![f64::NEG_INFINITY; n_rows];
    let h = floorplan.row_height();
    let lly = floorplan.core().lly;
    for iy in 0..grid.ny() {
        if grid.nx() == 0 {
            break;
        }
        // The band's peak over x, then its overlapping row window.
        let mut band_max = f64::NEG_INFINITY;
        for ix in 0..grid.nx() {
            band_max = band_max.max(*grid.get(ix, iy));
        }
        let band = grid.bin_rect(0, iy);
        let lo = (((band.lly - lly) / h).floor().max(0.0) as usize).min(n_rows);
        let hi = ((((band.ury - lly) / h).ceil().max(0.0) as usize) + 1).min(n_rows);
        for (r, heat) in row_heat.iter_mut().enumerate().take(hi).skip(lo) {
            if floorplan.row_rect(r).intersects(&band) {
                *heat = heat.max(band_max);
            }
        }
    }
    hottest_gap_positions(&row_heat, rows, "thermal map overlaps no row")
}

/// The surrogate *map* of a row-insertion stage: the power redistribution
/// `positions` would cause, modeled **on the baseline mesh** (fixed die
/// outline). The composable map→map half of [`eri_power_delta`], shared
/// by the ERI and targeted-row transforms and usable mid-pipeline.
///
/// The surrogate applies the real geometric transform — cells above each
/// inserted row shift up by one pitch, opening a powerless gap — then
/// compresses the stretched layout back onto the original die height and
/// scales all power by the area-dilution factor `H/H′`, mimicking the
/// grown outline at constant mesh. Power mass moves along `y` only,
/// exactly as rigid row remapping does.
pub fn eri_surrogate_map(
    power: &Grid2d<f64>,
    floorplan: &Floorplan,
    positions: &[usize],
) -> Grid2d<f64> {
    let core = floorplan.core();
    let h = floorplan.row_height();
    let n_rows = floorplan.num_rows();
    let grown = core.height() + positions.len() as f64 * h;
    if grown <= 0.0 || power.ny() == 0 {
        return power.clone();
    }
    // insertions_below[r] = rows inserted below placement row r.
    let mut insertions_below = vec![0usize; n_rows + 1];
    for &p in positions {
        for slot in insertions_below.iter_mut().skip(p.min(n_rows)) {
            *slot += 1;
        }
    }
    let compress = core.height() / grown;
    // Maps a baseline y (relative to the core) to its post-insertion,
    // re-compressed position. Within one placement row the shift is
    // constant, so the map is linear between row boundaries.
    let shifted = |y: f64| -> f64 {
        let row = ((y / h).floor().max(0.0) as usize).min(n_rows.saturating_sub(1));
        (y + insertions_below[row] as f64 * h) * compress
    };
    let ny = power.ny();
    let nx = power.nx();
    let mesh_h = core.height() / ny as f64;
    let mut new_map = Grid2d::new(nx, ny, power.extent(), 0.0);
    // Redistribute each mesh row's power along y: split the source
    // interval at placement-row boundaries (the map is linear inside
    // each), push every piece through the shift, and deposit it onto the
    // destination mesh rows by overlap. x columns are untouched.
    for iy in 0..ny {
        let y0 = iy as f64 * mesh_h;
        let y1 = y0 + mesh_h;
        // Split points: placement-row boundaries inside [y0, y1].
        let first_row = (y0 / h).floor() as usize;
        let mut cuts = vec![y0];
        let mut r = first_row + 1;
        while (r as f64) * h < y1 {
            if (r as f64) * h > y0 {
                cuts.push((r as f64) * h);
            }
            r += 1;
        }
        cuts.push(y1);
        for piece in cuts.windows(2) {
            let (u, v) = (piece[0], piece[1]);
            if v - u <= 0.0 {
                continue;
            }
            let frac = (v - u) / mesh_h;
            let (mu, mv) = (shifted(u), shifted(u) + (v - u) * compress);
            // Deposit onto destination mesh rows by overlap.
            let j0 = ((mu / mesh_h).floor().max(0.0) as usize).min(ny - 1);
            let j1 = ((mv / mesh_h).ceil().max(1.0) as usize).min(ny);
            for jy in j0..j1.max(j0 + 1) {
                let d0 = jy as f64 * mesh_h;
                let d1 = d0 + mesh_h;
                let overlap = (mv.min(d1) - mu.max(d0)).max(0.0);
                if overlap <= 0.0 {
                    continue;
                }
                let share = overlap / (mv - mu).max(1e-12);
                for ix in 0..nx {
                    *new_map.get_mut(ix, jy) += power.get(ix, iy) * frac * share * compress;
                }
            }
        }
    }
    new_map
}

/// The screening surrogate for an ERI candidate — the sparse delta
/// between the baseline map and [`eri_surrogate_map`]'s redistribution.
pub fn eri_power_delta(
    power: &Grid2d<f64>,
    floorplan: &Floorplan,
    positions: &[usize],
) -> PowerDelta {
    PowerDelta::between(
        power,
        &eri_surrogate_map(power, floorplan, positions),
        1e-15,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use arithgen::{build_benchmark, BenchmarkConfig};
    use geom::{Grid2d, Rect};
    use placement::{validate, Placer, PlacerConfig};

    /// A thermal map hot inside `hot` (38 °C) and cool elsewhere (30 °C).
    fn fake_map(core: Rect, hot: Rect) -> ThermalMap {
        let mut g = Grid2d::new(16, 16, core, 30.0);
        for iy in 0..16 {
            for ix in 0..16 {
                if g.bin_rect(ix, iy).intersects(&hot) {
                    *g.get_mut(ix, iy) = 38.0;
                }
            }
        }
        ThermalMap::new(g, 25.0)
    }

    fn fake_hotspot(map: &ThermalMap) -> Hotspot {
        let grid = map.grid();
        let bins: Vec<(usize, usize)> = grid
            .iter()
            .filter(|&(_, &t)| t > 34.0)
            .map(|(b, _)| b)
            .collect();
        let mut bbox = grid.bin_rect(bins[0].0, bins[0].1);
        for &(x, y) in &bins {
            bbox = bbox.union(&grid.bin_rect(x, y));
        }
        Hotspot {
            area_um2: bins.len() as f64 * grid.bin_width() * grid.bin_height(),
            bins,
            bbox,
            peak_c: 38.0,
        }
    }

    fn setup() -> (netlist::Netlist, placement::PlacementResult) {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let placed = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        (nl, placed)
    }

    #[test]
    fn eri_grows_core_and_stays_legal() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(
            core.llx,
            core.lly + core.height() * 0.3,
            core.urx,
            core.lly + core.height() * 0.5,
        );
        let map = fake_map(core, hot);
        let hs = fake_hotspot(&map);
        let (fp2, p2, report) =
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], 8).unwrap();
        assert_eq!(fp2.num_rows(), base.floorplan.num_rows() + 8);
        assert!(validate(&nl, &fp2, &p2).is_empty(), "legal after ERI");
        let expected = 8.0 / base.floorplan.num_rows() as f64;
        assert!((report.area_overhead - expected).abs() < 1e-9);
    }

    #[test]
    fn insertions_land_in_the_hot_band() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(
            core.llx,
            core.lly + core.height() * 0.4,
            core.urx,
            core.lly + core.height() * 0.6,
        );
        let map = fake_map(core, hot);
        let hs = fake_hotspot(&map);
        let (_, _, report) =
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], 4).unwrap();
        let n = base.floorplan.num_rows() as f64;
        for &p in &report.insertion_positions {
            let frac = p as f64 / n;
            assert!(
                (0.3..=0.7).contains(&frac),
                "insertion at {frac:.2} of the core is outside the hot band"
            );
        }
    }

    #[test]
    fn cells_only_move_upward_rigidly() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(core.llx, core.lly, core.urx, core.lly + 12.0);
        let map = fake_map(core, hot);
        let hs = fake_hotspot(&map);
        let (fp2, p2, _) =
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], 3).unwrap();
        for (id, _) in nl.cells() {
            let before = base.placement.cell_rect(&nl, &base.floorplan, id).unwrap();
            let after = p2.cell_rect(&nl, &fp2, id).unwrap();
            assert_eq!(before.llx, after.llx, "no horizontal motion");
            assert!(after.lly >= before.lly - 1e-9, "no downward motion");
        }
    }

    #[test]
    fn many_rows_double_up_in_the_band() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(
            core.llx,
            core.lly + core.height() * 0.45,
            core.urx,
            core.lly + core.height() * 0.5,
        );
        let map = fake_map(core, hot);
        let hs = fake_hotspot(&map);
        let rows = base.floorplan.num_rows() / 2;
        let (fp2, p2, _) =
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], rows).unwrap();
        assert_eq!(fp2.num_rows(), base.floorplan.num_rows() + rows);
        assert!(validate(&nl, &fp2, &p2).is_empty());
    }

    #[test]
    fn targeted_positions_prefer_distinct_hot_gaps() {
        let (_, base) = setup();
        let core = base.floorplan.core();
        let hot = Rect::new(
            core.llx,
            core.lly + core.height() * 0.4,
            core.urx,
            core.lly + core.height() * 0.6,
        );
        let map = fake_map(core, hot);
        let rows = 4;
        let positions = targeted_insertion_positions(&base.floorplan, &map, rows).unwrap();
        assert_eq!(positions.len(), rows);
        // All four land in the hot band, and on *distinct* gaps (ERI
        // would wrap around its hotspot-band candidates earlier).
        let n = base.floorplan.num_rows() as f64;
        let mut seen = std::collections::HashSet::new();
        for &p in &positions {
            let frac = p as f64 / n;
            assert!((0.3..=0.7).contains(&frac), "insertion at {frac:.2}");
            assert!(seen.insert(p), "gap {p} doubled up before all were used");
        }
        // Unlike ERI, no hotspot detection is needed: a nearly-flat map
        // still yields positions instead of an error.
        let flat = fake_map(core, Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(targeted_insertion_positions(&base.floorplan, &flat, 2).is_ok());
        assert!(targeted_insertion_positions(&base.floorplan, &flat, 0).is_err());
    }

    #[test]
    fn zero_rows_is_rejected() {
        let (nl, base) = setup();
        let core = base.floorplan.core();
        let map = fake_map(core, Rect::new(0.0, 0.0, 10.0, 10.0));
        let hs = fake_hotspot(&map);
        assert!(
            empty_row_insertion(&nl, &base.floorplan, &base.placement, &map, &[hs], 0).is_err()
        );
    }
}
