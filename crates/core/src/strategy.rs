use serde::{Deserialize, Serialize};

use crate::{
    EmptyRowInsertionTransform, HotspotWrapperTransform, NoneTransform, PlacementTransform,
    UniformSlackTransform,
};

/// How to spend the user-specified area overhead (the paper's three
/// compared schemes).
///
/// Since the strategy engine opened up (see [`PlacementTransform`]),
/// this enum is a thin compatibility/serialization facade over the
/// ported transforms: [`Strategy::to_transform`] maps each variant onto
/// its open-set implementation, and everything [`crate::Flow`] does with
/// a `Strategy` goes through that mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Keep the base placement untouched (for before/after baselines).
    None,
    /// The paper's **Default**: relax the utilization factor so the given
    /// fraction of extra core area (e.g. `0.161` = +16.1 %) is spread
    /// uniformly ("blind" whitespace).
    UniformSlack {
        /// Extra core area as a fraction of the base area.
        area_overhead: f64,
    },
    /// **ERI**: insert this many empty rows interleaved with the hotspot
    /// rows; the core grows by `rows / base_rows`.
    EmptyRowInsertion {
        /// Number of empty rows to insert.
        rows: usize,
    },
    /// **HW**: start from the *Default* solution at the given overhead
    /// (as the paper does), then wrap the detected hotspots.
    HotspotWrapper {
        /// Extra core area as a fraction of the base area, realized by
        /// utilization relaxation before wrapping.
        area_overhead: f64,
    },
}

impl Strategy {
    /// The open-set transform this variant is the facade of. The
    /// round-trip holds: `strategy.to_transform().as_strategy() ==
    /// Some(strategy)`.
    pub fn to_transform(self) -> Box<dyn PlacementTransform> {
        match self {
            Strategy::None => Box::new(NoneTransform),
            Strategy::UniformSlack { area_overhead } => {
                Box::new(UniformSlackTransform { area_overhead })
            }
            Strategy::EmptyRowInsertion { rows } => Box::new(EmptyRowInsertionTransform { rows }),
            Strategy::HotspotWrapper { area_overhead } => {
                Box::new(HotspotWrapperTransform { area_overhead })
            }
        }
    }

    /// The stable transform id this variant serializes to (see
    /// [`PlacementTransform::id`]).
    pub fn transform_id(self) -> String {
        self.to_transform().id()
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::None => write!(f, "none"),
            Strategy::UniformSlack { area_overhead } => {
                write!(f, "default(+{:.1}%)", area_overhead * 100.0)
            }
            Strategy::EmptyRowInsertion { rows } => write!(f, "eri({rows} rows)"),
            Strategy::HotspotWrapper { area_overhead } => {
                write!(f, "hw(+{:.1}%)", area_overhead * 100.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(
            Strategy::UniformSlack {
                area_overhead: 0.161
            }
            .to_string(),
            "default(+16.1%)"
        );
        assert_eq!(
            Strategy::EmptyRowInsertion { rows: 20 }.to_string(),
            "eri(20 rows)"
        );
    }
}
