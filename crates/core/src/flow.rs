//! The end-to-end evaluation flow of the paper's Fig. 2: synthesis
//! (benchmark generation) → logic simulation → power estimation →
//! placement → thermal simulation → **area management** → re-analysis.

use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
use geom::Grid2d;
use logicsim::{Activity, Simulator, Workload};
use netlist::Netlist;
use placement::{total_hpwl, Floorplan, Placement, PlacementResult, Placer, PlacerConfig};
use powerest::{estimate_power, power_map, PowerConfig, PowerReport};
use thermalsim::{ThermalConfig, ThermalMap, ThermalSimulator};
use timan::{analyze, TimingConfig, TimingReport};

use crate::{
    detect_hotspots, empty_row_insertion, hotspot_wrapper, uniform_slack, FlowError, Hotspot,
    HotspotConfig, Strategy, WrapperConfig,
};

/// Which units a workload exercises, and how hard.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The units receiving random input transitions.
    pub active: Vec<UnitRole>,
    /// Per-cycle, per-bit input flip probability for active units.
    pub toggle_probability: f64,
}

/// Complete configuration of one paper experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Benchmark netlist widths.
    pub benchmark: BenchmarkConfig,
    /// The workload controlling hotspot size and position.
    pub workload: WorkloadSpec,
    /// Cycles simulated before activity measurement starts.
    pub warmup_cycles: usize,
    /// Cycles of measured activity.
    pub cycles: usize,
    /// RNG seed for the random test vectors.
    pub seed: u64,
    /// Base placement utilization (the reference the overhead is
    /// measured against).
    pub base_utilization: f64,
    /// Thermal mesh and package model.
    pub thermal: ThermalConfig,
    /// Power model.
    pub power: PowerConfig,
    /// Timing model.
    pub timing: TimingConfig,
    /// Hotspot detection thresholds.
    pub hotspot: HotspotConfig,
    /// Hotspot-wrapper parameters.
    pub wrapper: WrapperConfig,
    /// Iterations of the leakage–temperature feedback loop (0 = leakage
    /// at reference temperature, as in the paper's main experiments).
    pub leakage_feedback_iters: usize,
}

impl FlowConfig {
    /// Paper test set 1: "four scattered small hotspots" — the four small
    /// units placed at the die corners by the region assignment (ripple
    /// adder, ALU, lookahead adder, MAC), so the hotspots are mutually
    /// distant as in the paper's Fig. 5.
    pub fn scattered_small() -> Self {
        FlowConfig::with_workload(WorkloadSpec {
            active: vec![
                UnitRole::RippleAdder,
                UnitRole::Alu,
                UnitRole::LookaheadAdder,
                UnitRole::Mac,
            ],
            toggle_probability: 0.5,
        })
    }

    /// Paper test set 2: "a single, large, concentrated hotspot" — the
    /// Booth multiplier, the largest unit, which the region assignment
    /// places at the center of the die.
    pub fn concentrated_large() -> Self {
        FlowConfig::with_workload(WorkloadSpec {
            active: vec![UnitRole::BoothMult],
            toggle_probability: 0.5,
        })
    }

    /// Custom workload over otherwise-default parameters.
    pub fn with_workload(workload: WorkloadSpec) -> Self {
        FlowConfig {
            benchmark: BenchmarkConfig::paper(),
            workload,
            warmup_cycles: 16,
            cycles: 256,
            seed: 2010,
            base_utilization: 0.85,
            thermal: ThermalConfig::paper(),
            power: PowerConfig::default(),
            timing: TimingConfig::default(),
            hotspot: HotspotConfig::default(),
            wrapper: WrapperConfig::default(),
            leakage_feedback_iters: 0,
        }
    }

    /// Scaled-down variant (small benchmark, coarse mesh) for tests.
    pub fn fast(mut self) -> Self {
        self.benchmark = BenchmarkConfig::small();
        self.thermal = ThermalConfig::with_resolution(16, 16);
        self.cycles = 96;
        self
    }
}

/// Scalar summary of a thermal map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalSummary {
    /// Peak temperature, °C.
    pub peak_c: f64,
    /// Peak rise above ambient, K.
    pub peak_rise: f64,
    /// Mean rise above ambient, K.
    pub mean_rise: f64,
    /// On-die gradient (max − min), K.
    pub gradient: f64,
}

impl ThermalSummary {
    fn of(map: &ThermalMap) -> Self {
        ThermalSummary {
            peak_c: map.peak_bin().1,
            peak_rise: map.peak_rise(),
            mean_rise: map.mean_rise(),
            gradient: map.gradient(),
        }
    }
}

/// Everything one experiment run produces.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// The strategy that was applied.
    pub strategy: Strategy,
    /// Base core area, µm².
    pub base_area_um2: f64,
    /// Core area after the transformation, µm².
    pub new_area_um2: f64,
    /// Area overhead in percent of the base area.
    pub area_overhead_pct: f64,
    /// Thermal summary before.
    pub before: ThermalSummary,
    /// Thermal summary after.
    pub after: ThermalSummary,
    /// Detected hotspots (on the base placement).
    pub hotspots: Vec<Hotspot>,
    /// Critical-path report before.
    pub timing_before: TimingReport,
    /// Critical-path report after.
    pub timing_after: TimingReport,
    /// Total HPWL before, µm.
    pub hpwl_before_um: f64,
    /// Total HPWL after, µm.
    pub hpwl_after_um: f64,
    /// Total power used for the thermal solves, W.
    pub total_power_w: f64,
}

impl FlowReport {
    /// Peak-temperature reduction in percent of the original rise — the
    /// paper's main metric.
    pub fn reduction_pct(&self) -> f64 {
        if self.before.peak_rise <= 0.0 {
            return 0.0;
        }
        (self.before.peak_rise - self.after.peak_rise) / self.before.peak_rise * 100.0
    }

    /// Gradient reduction in percent.
    pub fn gradient_reduction_pct(&self) -> f64 {
        if self.before.gradient <= 0.0 {
            return 0.0;
        }
        (self.before.gradient - self.after.gradient) / self.before.gradient * 100.0
    }

    /// Timing overhead in percent (positive = slower after).
    pub fn timing_overhead_pct(&self) -> f64 {
        self.timing_before.overhead_to(&self.timing_after)
    }
}

/// The flow driver: builds the benchmark and its activity once, then
/// evaluates any number of strategies against the same baseline.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Flow {
    config: FlowConfig,
    netlist: Netlist,
    activity: Activity,
    base: PlacementResult,
    /// Per-cell power computed once on the base placement and held fixed
    /// across transformations — the paper's premise: the techniques reduce
    /// power *density* "while keeping (cell) power consumption unchanged".
    power: PowerReport,
}

impl Flow {
    /// Builds the benchmark, simulates the workload and places the base
    /// design.
    ///
    /// # Errors
    ///
    /// Propagates netlist generation and placement errors.
    pub fn new(config: FlowConfig) -> Result<Self, FlowError> {
        let netlist = build_benchmark(&config.benchmark)?;
        let active: Vec<netlist::UnitId> =
            config.workload.active.iter().map(|r| r.unit_id()).collect();
        let workload =
            Workload::with_active_units(&netlist, &active, config.workload.toggle_probability);
        let mut sim = Simulator::new(&netlist);
        sim.run_workload(&workload, config.warmup_cycles, config.seed);
        sim.reset_activity();
        sim.run_workload(&workload, config.cycles, config.seed.wrapping_add(1));
        let activity = sim.activity();
        let base =
            Placer::new(PlacerConfig::with_utilization(config.base_utilization)).place(&netlist)?;
        let power = estimate_power(
            &netlist,
            &activity,
            Some((&base.floorplan, &base.placement)),
            None,
            &config.power,
        );
        Ok(Flow {
            config,
            netlist,
            activity,
            base,
            power,
        })
    }

    /// The per-cell power report (fixed across transformations).
    pub fn power(&self) -> &PowerReport {
        &self.power
    }

    /// The switching activity measured on the workload.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// The flow configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The benchmark netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The base placement the overhead is measured against.
    pub fn base_placement(&self) -> &PlacementResult {
        &self.base
    }

    /// Power, power map and thermal map for a given placement, including
    /// the optional leakage–temperature feedback loop.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn analyze_placement(
        &self,
        floorplan: &Floorplan,
        placement: &Placement,
    ) -> Result<(PowerReport, Grid2d<f64>, ThermalMap), FlowError> {
        let nx = self.config.thermal.grid.nx;
        let ny = self.config.thermal.grid.ny;
        let simulator = ThermalSimulator::new(self.config.thermal.clone());
        let mut report = self.power.clone();
        let mut pmap = power_map(&self.netlist, floorplan, placement, &report, nx, ny);
        let mut tmap = simulator.solve(floorplan.core(), &pmap)?;
        for _ in 0..self.config.leakage_feedback_iters {
            let temps = self.cell_temps(floorplan, placement, &tmap);
            report = report.with_leakage_at(&self.netlist, &self.config.power, &temps);
            pmap = power_map(&self.netlist, floorplan, placement, &report, nx, ny);
            tmap = simulator.solve(floorplan.core(), &pmap)?;
        }
        Ok((report, pmap, tmap))
    }

    /// Per-cell temperatures sampled from a thermal map.
    pub fn cell_temps(
        &self,
        floorplan: &Floorplan,
        placement: &Placement,
        map: &ThermalMap,
    ) -> Vec<f64> {
        self.netlist
            .cells()
            .map(|(id, _)| {
                placement
                    .cell_center(&self.netlist, floorplan, id)
                    .and_then(|c| map.grid().bin_of(c.x, c.y))
                    .map(|(ix, iy)| *map.grid().get(ix, iy))
                    .unwrap_or(map.ambient_c())
            })
            .collect()
    }

    /// The power map and thermal map of the *base* placement.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn baseline_maps(&self) -> Result<(Grid2d<f64>, ThermalMap), FlowError> {
        let (_, pmap, tmap) = self.analyze_placement(&self.base.floorplan, &self.base.placement)?;
        Ok((pmap, tmap))
    }

    /// Runs one strategy and reports before/after metrics.
    ///
    /// # Errors
    ///
    /// Propagates placement, thermal and strategy-parameter errors.
    pub fn run(&self, strategy: Strategy) -> Result<FlowReport, FlowError> {
        let base_fp = &self.base.floorplan;
        let base_pl = &self.base.placement;
        let (power_before, _, tmap_before) = self.analyze_placement(base_fp, base_pl)?;
        let hotspots = detect_hotspots(&tmap_before, &self.config.hotspot);
        let timing_before = analyze(
            &self.netlist,
            base_fp,
            base_pl,
            Some(&tmap_before),
            &self.config.timing,
        );
        let hpwl_before = total_hpwl(&self.netlist, base_fp, base_pl);

        // Apply the strategy.
        let (new_fp, new_pl) = match strategy {
            Strategy::None => (base_fp.clone(), base_pl.clone()),
            Strategy::UniformSlack { area_overhead } => {
                let result = uniform_slack(
                    &self.netlist,
                    &PlacerConfig::with_utilization(self.config.base_utilization),
                    area_overhead,
                )?;
                (result.floorplan, result.placement)
            }
            Strategy::EmptyRowInsertion { rows } => {
                let (fp, pl, _) = empty_row_insertion(
                    &self.netlist,
                    base_fp,
                    base_pl,
                    &tmap_before,
                    &hotspots,
                    rows,
                )?;
                (fp, pl)
            }
            Strategy::HotspotWrapper { area_overhead } => {
                // Per the paper: start from the Default solution at the
                // desired overhead, then wrap the hotspots it exhibits.
                let relaxed = uniform_slack(
                    &self.netlist,
                    &PlacerConfig::with_utilization(self.config.base_utilization),
                    area_overhead,
                )?;
                let (_, _, tmap_relaxed) =
                    self.analyze_placement(&relaxed.floorplan, &relaxed.placement)?;
                let blobs = detect_hotspots(
                    &tmap_relaxed,
                    &HotspotConfig {
                        threshold_fraction: self.config.wrapper.threshold_fraction,
                        ..self.config.hotspot
                    },
                );
                // Wrap per hotspot source: split merged thermal blobs along
                // the unit-region boundaries (paper Fig. 4 wraps each
                // hotspot separately), then clip the wrappers to stay
                // disjoint.
                let spots = crate::split_hotspots_by_regions(
                    &tmap_relaxed,
                    &blobs,
                    &relaxed.regions,
                    self.config.hotspot.min_bins,
                );
                let regions = crate::wrap_regions(&spots, &relaxed.floorplan, &self.config.wrapper);
                let mut placement = relaxed.placement;
                hotspot_wrapper(
                    &self.netlist,
                    &relaxed.floorplan,
                    &mut placement,
                    &regions,
                    &power_before,
                    &self.config.wrapper,
                )?;
                (relaxed.floorplan, placement)
            }
        };

        let (_, _, tmap_after) = self.analyze_placement(&new_fp, &new_pl)?;
        let timing_after = analyze(
            &self.netlist,
            &new_fp,
            &new_pl,
            Some(&tmap_after),
            &self.config.timing,
        );
        let hpwl_after = total_hpwl(&self.netlist, &new_fp, &new_pl);
        let base_area = base_fp.core().area();
        let new_area = new_fp.core().area();
        Ok(FlowReport {
            strategy,
            base_area_um2: base_area,
            new_area_um2: new_area,
            area_overhead_pct: (new_area / base_area - 1.0) * 100.0,
            before: ThermalSummary::of(&tmap_before),
            after: ThermalSummary::of(&tmap_after),
            hotspots,
            timing_before,
            timing_after,
            hpwl_before_um: hpwl_before,
            hpwl_after_um: hpwl_after,
            total_power_w: power_before.total_w(),
        })
    }
}
