//! The end-to-end evaluation flow of the paper's Fig. 2: synthesis
//! (benchmark generation) → logic simulation → power estimation →
//! placement → thermal simulation → **area management** → re-analysis.

use std::sync::{Arc, OnceLock};

use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
use geom::{Grid2d, Rect};
use logicsim::{Activity, Simulator, Workload};
use netlist::Netlist;
use placement::{total_hpwl, Floorplan, Placement, PlacementResult, Placer, PlacerConfig};
use powerest::{estimate_power, power_map, PowerConfig, PowerReport};
use thermalsim::{FactorizedThermalModel, ThermalConfig, ThermalMap, ThermalSimulator};
use timan::{analyze, TimingConfig, TimingReport};

use crate::{
    detect_hotspots, DeltaCandidateEvaluator, ExactCandidateEvaluator, FlowError, Hotspot,
    HotspotConfig, KeyedCache, PlacementTransform, PowerDelta, Strategy, TransformContext,
    TransformState, WrapperConfig,
};
use thermalsim::DeltaThermalModel;

/// Which units a workload exercises, and how hard.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The units receiving random input transitions.
    pub active: Vec<UnitRole>,
    /// Per-cycle, per-bit input flip probability for active units.
    pub toggle_probability: f64,
}

impl WorkloadSpec {
    /// A clustered-hotspot workload: the three multipliers driven hard,
    /// so the largest adjacent units light up as one concentrated thermal
    /// cluster — the regime the Hotspot Wrapper targets.
    pub fn clustered_hotspot() -> Self {
        WorkloadSpec {
            active: vec![
                UnitRole::BoothMult,
                UnitRole::WallaceMult,
                UnitRole::ArrayMult,
            ],
            toggle_probability: 0.7,
        }
    }

    /// A checkerboard workload: every other unit of the benchmark active,
    /// alternating hot and cold blocks across the whole die — wide,
    /// banded warmth, the regime Empty Row Insertion targets.
    pub fn checkerboard() -> Self {
        WorkloadSpec {
            active: UnitRole::ALL.iter().copied().step_by(2).collect(),
            toggle_probability: 0.5,
        }
    }
}

/// Complete configuration of one paper experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Benchmark netlist widths.
    pub benchmark: BenchmarkConfig,
    /// The workload controlling hotspot size and position.
    pub workload: WorkloadSpec,
    /// Cycles simulated before activity measurement starts.
    pub warmup_cycles: usize,
    /// Cycles of measured activity.
    pub cycles: usize,
    /// RNG seed for the random test vectors.
    pub seed: u64,
    /// Base placement utilization (the reference the overhead is
    /// measured against).
    pub base_utilization: f64,
    /// Thermal mesh and package model.
    pub thermal: ThermalConfig,
    /// Power model.
    pub power: PowerConfig,
    /// Timing model.
    pub timing: TimingConfig,
    /// Hotspot detection thresholds.
    pub hotspot: HotspotConfig,
    /// Hotspot-wrapper parameters.
    pub wrapper: WrapperConfig,
    /// Iterations of the leakage–temperature feedback loop (0 = leakage
    /// at reference temperature, as in the paper's main experiments).
    pub leakage_feedback_iters: usize,
}

impl FlowConfig {
    /// Paper test set 1: "four scattered small hotspots" — the four small
    /// units placed at the die corners by the region assignment (ripple
    /// adder, ALU, lookahead adder, MAC), so the hotspots are mutually
    /// distant as in the paper's Fig. 5.
    pub fn scattered_small() -> Self {
        FlowConfig::with_workload(WorkloadSpec {
            active: vec![
                UnitRole::RippleAdder,
                UnitRole::Alu,
                UnitRole::LookaheadAdder,
                UnitRole::Mac,
            ],
            toggle_probability: 0.5,
        })
    }

    /// Paper test set 2: "a single, large, concentrated hotspot" — the
    /// Booth multiplier, the largest unit, which the region assignment
    /// places at the center of the die.
    pub fn concentrated_large() -> Self {
        FlowConfig::with_workload(WorkloadSpec {
            active: vec![UnitRole::BoothMult],
            toggle_probability: 0.5,
        })
    }

    /// Custom workload over otherwise-default parameters.
    pub fn with_workload(workload: WorkloadSpec) -> Self {
        FlowConfig {
            benchmark: BenchmarkConfig::paper(),
            workload,
            warmup_cycles: 16,
            cycles: 256,
            seed: 2010,
            base_utilization: 0.85,
            thermal: ThermalConfig::paper(),
            power: PowerConfig::default(),
            timing: TimingConfig::default(),
            hotspot: HotspotConfig::default(),
            wrapper: WrapperConfig::default(),
            leakage_feedback_iters: 0,
        }
    }

    /// Scaled-down variant (small benchmark, coarse mesh) for tests.
    pub fn fast(mut self) -> Self {
        self.benchmark = BenchmarkConfig::small();
        self.thermal = ThermalConfig::with_resolution(16, 16);
        self.cycles = 96;
        self
    }
}

/// Scalar summary of a thermal map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalSummary {
    /// Peak temperature, °C.
    pub peak_c: f64,
    /// Peak rise above ambient, K.
    pub peak_rise: f64,
    /// Mean rise above ambient, K.
    pub mean_rise: f64,
    /// On-die gradient (max − min), K.
    pub gradient: f64,
}

impl ThermalSummary {
    fn of(map: &ThermalMap) -> Self {
        ThermalSummary {
            peak_c: map.peak_bin().1,
            peak_rise: map.peak_rise(),
            mean_rise: map.mean_rise(),
            gradient: map.gradient(),
        }
    }
}

/// Everything one experiment run produces.
#[must_use = "a FlowReport is the entire output of an experiment run"]
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// The legacy strategy facade of the transform that was applied —
    /// [`Strategy::None`] when the transform has no enum equivalent
    /// (composites and the post-enum techniques); [`FlowReport::transform_id`]
    /// is always authoritative.
    pub strategy: Strategy,
    /// Stable id of the applied transform (see
    /// [`crate::PlacementTransform::id`]).
    pub transform_id: String,
    /// Base core area, µm².
    pub base_area_um2: f64,
    /// Core area after the transformation, µm².
    pub new_area_um2: f64,
    /// Area overhead in percent of the base area.
    pub area_overhead_pct: f64,
    /// Thermal summary before.
    pub before: ThermalSummary,
    /// Thermal summary after.
    pub after: ThermalSummary,
    /// Detected hotspots (on the base placement).
    pub hotspots: Vec<Hotspot>,
    /// Critical-path report before.
    pub timing_before: TimingReport,
    /// Critical-path report after.
    pub timing_after: TimingReport,
    /// Total HPWL before, µm.
    pub hpwl_before_um: f64,
    /// Total HPWL after, µm.
    pub hpwl_after_um: f64,
    /// Total power used for the thermal solves, W.
    pub total_power_w: f64,
}

impl FlowReport {
    /// Peak-temperature reduction in percent of the original rise — the
    /// paper's main metric.
    pub fn reduction_pct(&self) -> f64 {
        if self.before.peak_rise <= 0.0 {
            return 0.0;
        }
        (self.before.peak_rise - self.after.peak_rise) / self.before.peak_rise * 100.0
    }

    /// Gradient reduction in percent.
    pub fn gradient_reduction_pct(&self) -> f64 {
        if self.before.gradient <= 0.0 {
            return 0.0;
        }
        (self.before.gradient - self.after.gradient) / self.before.gradient * 100.0
    }

    /// Timing overhead in percent (positive = slower after).
    pub fn timing_overhead_pct(&self) -> f64 {
        self.timing_before.overhead_to(&self.timing_after)
    }
}

/// Cache key: the thermal config's process-stable fingerprint (mesh,
/// layer stack, boundary conditions, solver backend and tolerance) plus
/// the bit-exact die outline — so flows with different thermal
/// configurations can safely share one cache.
type ModelKey = (u64, u64, u64, u64, u64);

fn model_key(config: &ThermalConfig, die: Rect) -> ModelKey {
    (
        config.stable_fingerprint(),
        die.llx.to_bits(),
        die.lly.to_bits(),
        die.urx.to_bits(),
        die.ury.to_bits(),
    )
}

/// Factorized models held per cache; a sweep touches a handful of die
/// geometries per mesh, so a small bound is plenty and keeps memory flat.
const MODEL_CACHE_CAP: usize = 64;

/// A shareable cache of factorized thermal models, keyed by mesh and die
/// outline. Every [`Flow`] owns one; [`crate::run_requests`] points all
/// of a batch's flows at a single cache so identical geometries (the
/// base placement is workload-independent) are factorized once. Built on
/// [`KeyedCache`], so hit/miss/eviction counters are observable through
/// [`ThermalModelCache::stats`].
#[derive(Debug, Clone)]
pub struct ThermalModelCache {
    models: KeyedCache<ModelKey, FactorizedThermalModel>,
}

impl Default for ThermalModelCache {
    fn default() -> Self {
        ThermalModelCache::new()
    }
}

impl ThermalModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        ThermalModelCache {
            models: KeyedCache::with_capacity(MODEL_CACHE_CAP),
        }
    }

    /// Cached models currently held.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Hit/miss/eviction counters of the underlying [`KeyedCache`].
    pub fn stats(&self) -> crate::CacheStats {
        self.models.stats()
    }

    /// Invalidates every cached model (lazily, via the generation
    /// counter) — for long-running services whose thermal configuration
    /// changes underneath a shared cache.
    pub fn invalidate(&self) {
        self.models.bump_generation();
    }

    fn get_or_build(
        &self,
        config: &ThermalConfig,
        die: Rect,
    ) -> Result<Arc<FactorizedThermalModel>, FlowError> {
        // The compute runs outside the cache lock so distinct geometries
        // factorize concurrently; a rare double build of the same key
        // just means the loser's model is dropped in favour of the
        // cached one.
        self.models.get_or_compute(model_key(config, die), || {
            FactorizedThermalModel::build(config, die).map_err(FlowError::from)
        })
    }
}

/// The base placement's analysis — identical for every `Flow::run`, so
/// computed once and shared (including across sweep worker threads).
#[derive(Debug, Clone)]
struct BaselineAnalysis {
    power: PowerReport,
    pmap: Grid2d<f64>,
    tmap: ThermalMap,
    hotspots: Vec<Hotspot>,
    timing: TimingReport,
    hpwl_um: f64,
}

/// The flow driver: builds the benchmark and its activity once, then
/// evaluates any number of strategies against the same baseline.
///
/// Thermal work is amortized two ways: the conductance network for each
/// die geometry is factorized once (see [`FactorizedThermalModel`]) and
/// re-solved per power map, and the base placement's analysis is
/// memoized across runs. Both caches are behind locks, so a `&Flow` can
/// be shared by sweep worker threads. [`Flow::run_reference`] keeps the
/// original assemble-per-solve path as the benchmarking yardstick.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Flow {
    config: FlowConfig,
    netlist: Netlist,
    activity: Activity,
    base: PlacementResult,
    /// Per-cell power computed once on the base placement and held fixed
    /// across transformations — the paper's premise: the techniques reduce
    /// power *density* "while keeping (cell) power consumption unchanged".
    power: PowerReport,
    models: ThermalModelCache,
    baseline: OnceLock<BaselineAnalysis>,
}

impl Flow {
    /// Builds the benchmark, simulates the workload and places the base
    /// design.
    ///
    /// # Errors
    ///
    /// Propagates netlist generation and placement errors.
    pub fn new(config: FlowConfig) -> Result<Self, FlowError> {
        let netlist = build_benchmark(&config.benchmark)?;
        let active: Vec<netlist::UnitId> =
            config.workload.active.iter().map(|r| r.unit_id()).collect();
        let workload =
            Workload::with_active_units(&netlist, &active, config.workload.toggle_probability);
        let mut sim = Simulator::new(&netlist);
        sim.run_workload(&workload, config.warmup_cycles, config.seed);
        sim.reset_activity();
        sim.run_workload(&workload, config.cycles, config.seed.wrapping_add(1));
        let activity = sim.activity();
        let base =
            Placer::new(PlacerConfig::with_utilization(config.base_utilization)).place(&netlist)?;
        let power = estimate_power(
            &netlist,
            &activity,
            Some((&base.floorplan, &base.placement)),
            None,
            &config.power,
        );
        Ok(Flow {
            config,
            netlist,
            activity,
            base,
            power,
            models: ThermalModelCache::new(),
            baseline: OnceLock::new(),
        })
    }

    /// The per-cell power report (fixed across transformations).
    pub fn power(&self) -> &PowerReport {
        &self.power
    }

    /// The switching activity measured on the workload.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// The flow configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The benchmark netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The base placement the overhead is measured against.
    pub fn base_placement(&self) -> &PlacementResult {
        &self.base
    }

    /// The factorized thermal model for a die outline, built on first use
    /// and cached for every later placement sharing that geometry.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn thermal_model(&self, die: Rect) -> Result<Arc<FactorizedThermalModel>, FlowError> {
        self.models.get_or_build(&self.config.thermal, die)
    }

    /// The flow's model cache handle (cheap to clone — the flows cloned
    /// to share one).
    pub fn thermal_cache(&self) -> ThermalModelCache {
        self.models.clone()
    }

    /// Points this flow at `cache`, so identical geometries factorized by
    /// other flows (e.g. the other workloads of a sweep) are reused.
    pub fn set_thermal_cache(&mut self, cache: ThermalModelCache) {
        self.models = cache;
    }

    /// Solves one thermal field — against the cached factorization, or
    /// assembling from scratch on the reference path.
    fn solve_thermal(
        &self,
        die: Rect,
        pmap: &Grid2d<f64>,
        cached: bool,
    ) -> Result<ThermalMap, FlowError> {
        if cached {
            Ok(self.thermal_model(die)?.solve(pmap)?)
        } else {
            let simulator = ThermalSimulator::new(self.config.thermal.clone());
            Ok(simulator.solve(die, pmap)?)
        }
    }

    /// Power, power map and thermal map for a given placement, including
    /// the optional leakage–temperature feedback loop. Thermal solves go
    /// through the per-geometry factorized-model cache.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn analyze_placement(
        &self,
        floorplan: &Floorplan,
        placement: &Placement,
    ) -> Result<(PowerReport, Grid2d<f64>, ThermalMap), FlowError> {
        self.analyze_placement_mode(floorplan, placement, true)
    }

    pub(crate) fn analyze_placement_mode(
        &self,
        floorplan: &Floorplan,
        placement: &Placement,
        cached: bool,
    ) -> Result<(PowerReport, Grid2d<f64>, ThermalMap), FlowError> {
        let nx = self.config.thermal.grid.nx;
        let ny = self.config.thermal.grid.ny;
        let mut report = self.power.clone();
        let mut pmap = power_map(&self.netlist, floorplan, placement, &report, nx, ny);
        let mut tmap = self.solve_thermal(floorplan.core(), &pmap, cached)?;
        for _ in 0..self.config.leakage_feedback_iters {
            let temps = self.cell_temps(floorplan, placement, &tmap);
            report = report.with_leakage_at(&self.netlist, &self.config.power, &temps);
            pmap = power_map(&self.netlist, floorplan, placement, &report, nx, ny);
            tmap = self.solve_thermal(floorplan.core(), &pmap, cached)?;
        }
        Ok((report, pmap, tmap))
    }

    /// Computes and memoizes the baseline analysis now instead of on the
    /// first [`Flow::run`]. The sweep engine primes each flow while the
    /// build phase is still parallel, so run-phase workers never race to
    /// initialize the same baseline.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn prime_baseline(&self) -> Result<(), FlowError> {
        self.baseline().map(|_| ())
    }

    /// The memoized analysis of the base placement.
    fn baseline(&self) -> Result<&BaselineAnalysis, FlowError> {
        if let Some(b) = self.baseline.get() {
            return Ok(b);
        }
        let b = self.compute_baseline(true)?;
        Ok(self.baseline.get_or_init(|| b))
    }

    fn compute_baseline(&self, cached: bool) -> Result<BaselineAnalysis, FlowError> {
        let fp = &self.base.floorplan;
        let pl = &self.base.placement;
        let (power, pmap, tmap) = self.analyze_placement_mode(fp, pl, cached)?;
        let hotspots = detect_hotspots(&tmap, &self.config.hotspot);
        let timing = analyze(&self.netlist, fp, pl, Some(&tmap), &self.config.timing)?;
        let hpwl_um = total_hpwl(&self.netlist, fp, pl);
        Ok(BaselineAnalysis {
            power,
            pmap,
            tmap,
            hotspots,
            timing,
            hpwl_um,
        })
    }

    /// Per-cell temperatures sampled from a thermal map.
    pub fn cell_temps(
        &self,
        floorplan: &Floorplan,
        placement: &Placement,
        map: &ThermalMap,
    ) -> Vec<f64> {
        self.netlist
            .cells()
            .map(|(id, _)| {
                placement
                    .cell_center(&self.netlist, floorplan, id)
                    .and_then(|c| map.grid().bin_of(c.x, c.y))
                    .map(|(ix, iy)| *map.grid().get(ix, iy))
                    .unwrap_or(map.ambient_c())
            })
            .collect()
    }

    /// The power map and thermal map of the *base* placement (memoized —
    /// repeated calls only clone).
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn baseline_maps(&self) -> Result<(Grid2d<f64>, ThermalMap), FlowError> {
        let b = self.baseline()?;
        Ok((b.pmap.clone(), b.tmap.clone()))
    }

    /// The memoized baseline power map (watts per thermal bin) that
    /// candidate [`PowerDelta`]s are measured against.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn baseline_power_map(&self) -> Result<&Grid2d<f64>, FlowError> {
        Ok(&self.baseline()?.pmap)
    }

    /// The memoized baseline power report — equal to [`Flow::power`]
    /// until the leakage–temperature feedback loop is enabled, after
    /// which it carries the converged leakage-adjusted cell powers.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn baseline_power_report(&self) -> Result<&PowerReport, FlowError> {
        Ok(&self.baseline()?.power)
    }

    /// The memoized baseline hotspots (detected on the base placement).
    ///
    /// # Errors
    ///
    /// Propagates thermal-solve failures.
    pub fn baseline_hotspots(&self) -> Result<&[Hotspot], FlowError> {
        Ok(&self.baseline()?.hotspots)
    }

    /// A tier-2 candidate evaluator: every candidate power delta is
    /// priced by a full preconditioned re-solve against the base
    /// geometry's cached factorization. The screening yardstick the
    /// delta path is benchmarked against.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and baseline-solve failures.
    pub fn exact_evaluator(&self) -> Result<ExactCandidateEvaluator, FlowError> {
        let b = self.baseline()?;
        let model = self.thermal_model(self.base.floorplan.core())?;
        Ok(ExactCandidateEvaluator::with_baseline(
            model,
            &b.pmap,
            b.tmap.clone(),
        ))
    }

    /// A tier-3 candidate evaluator: sparse candidate power deltas are
    /// priced by Green's-function influence-column superposition against
    /// the memoized baseline (with transparent exact fallback for dense
    /// perturbations). This is what the optimization loops screen with;
    /// winners are always re-verified by a full [`Flow::run`].
    ///
    /// # Errors
    ///
    /// Propagates model-construction and baseline-solve failures.
    pub fn delta_evaluator(&self) -> Result<DeltaCandidateEvaluator, FlowError> {
        let b = self.baseline()?;
        let model = self.thermal_model(self.base.floorplan.core())?;
        // Reuse the memoized baseline field — no extra solve.
        let delta = DeltaThermalModel::with_baseline(model, &b.pmap, b.tmap.clone())?;
        Ok(DeltaCandidateEvaluator::new(delta))
    }

    /// The memoized baseline thermal map and hotspots — the inputs every
    /// transform surrogate models itself on.
    pub(crate) fn baseline_thermal(&self) -> Result<(&ThermalMap, &[Hotspot]), FlowError> {
        let b = self.baseline()?;
        Ok((&b.tmap, &b.hotspots))
    }

    /// The screening surrogate of a strategy: the sparse power
    /// redistribution it would cause, modeled on the baseline mesh.
    /// Delegates to the strategy's ported transform (see
    /// [`Strategy::to_transform`] and
    /// [`crate::PlacementTransform::power_delta`]). Surrogates drive
    /// candidate *screening* only — [`FlowReport`] numbers always come
    /// from an exact run.
    ///
    /// # Errors
    ///
    /// Propagates baseline failures and strategy-parameter errors (e.g.
    /// ERI with no detected hotspots).
    pub fn strategy_power_delta(&self, strategy: Strategy) -> Result<PowerDelta, FlowError> {
        strategy.to_transform().power_delta(self)
    }

    /// The screening surrogate of an arbitrary transform — the open-set
    /// sibling of [`Flow::strategy_power_delta`].
    ///
    /// # Errors
    ///
    /// Propagates baseline failures and transform-parameter errors.
    pub fn transform_power_delta(
        &self,
        transform: &dyn PlacementTransform,
    ) -> Result<PowerDelta, FlowError> {
        transform.power_delta(self)
    }

    /// The wrapper's hotspot-core detection thresholds, made
    /// resolution-aware: bin-count floors scale with the mesh so fine
    /// meshes do not let sliver hotspots through (the ≥ 28×28 failure).
    pub(crate) fn wrapper_hotspot_config(&self) -> HotspotConfig {
        HotspotConfig {
            threshold_fraction: self.config.wrapper.threshold_fraction,
            ..self.config.hotspot
        }
        .scaled_for_mesh(self.config.thermal.grid.nx, self.config.thermal.grid.ny)
    }

    /// Runs one strategy and reports before/after metrics.
    ///
    /// The strategy is dispatched through its ported
    /// [`PlacementTransform`] (see [`Strategy::to_transform`]); the
    /// baseline analysis is memoized and every thermal solve reuses the
    /// factorized model of its die geometry, so repeated runs (row
    /// bisection, budget search, sweeps) only pay for what changed.
    ///
    /// # Errors
    ///
    /// Propagates placement, thermal and strategy-parameter errors.
    pub fn run(&self, strategy: Strategy) -> Result<FlowReport, FlowError> {
        self.run_transform_with(&*strategy.to_transform(), true)
    }

    /// Runs an arbitrary transform (composites and post-enum techniques
    /// included) and reports before/after metrics — the open-set sibling
    /// of [`Flow::run`]. Deterministic: re-running the same transform
    /// reproduces the report bit-exactly, which is what lets the Pareto
    /// optimizer promise that every frontier point matches a direct run.
    ///
    /// # Errors
    ///
    /// Propagates placement, thermal and transform-parameter errors.
    pub fn run_transform(
        &self,
        transform: &dyn PlacementTransform,
    ) -> Result<FlowReport, FlowError> {
        self.run_transform_with(transform, true)
    }

    /// Evaluates exactly like [`Flow::run`] but bypasses the factorized
    /// model cache and the baseline memoization — every solve assembles
    /// its network from scratch, as the flow did before the sweep engine
    /// existed. Kept as the sequential yardstick the bench pipeline (and
    /// the regression gate in CI) measures the engine against; results
    /// match [`Flow::run`] to within solver tolerance.
    ///
    /// # Errors
    ///
    /// Propagates placement, thermal and strategy-parameter errors.
    pub fn run_reference(&self, strategy: Strategy) -> Result<FlowReport, FlowError> {
        self.run_transform_with(&*strategy.to_transform(), false)
    }

    /// The open-set sibling of [`Flow::run_reference`]: evaluates an
    /// arbitrary transform on the assemble-per-solve path, so the bench
    /// yardstick can replay transform-axis scenarios the same way it
    /// replays strategy scenarios.
    ///
    /// # Errors
    ///
    /// Propagates placement, thermal and transform-parameter errors.
    pub fn run_transform_reference(
        &self,
        transform: &dyn PlacementTransform,
    ) -> Result<FlowReport, FlowError> {
        self.run_transform_with(transform, false)
    }

    fn run_transform_with(
        &self,
        transform: &dyn PlacementTransform,
        cached: bool,
    ) -> Result<FlowReport, FlowError> {
        let base_fp = &self.base.floorplan;
        let base_pl = &self.base.placement;
        let reference_baseline;
        let baseline = if cached {
            self.baseline()?
        } else {
            reference_baseline = self.compute_baseline(false)?;
            &reference_baseline
        };
        let power_before = &baseline.power;
        let tmap_before = &baseline.tmap;
        let hotspots = baseline.hotspots.clone();
        let timing_before = baseline.timing.clone();
        let hpwl_before = baseline.hpwl_um;

        // Apply the transform (pipeline stages included) on top of the
        // base state; the baseline's thermal analysis is handed over so
        // no stage re-solves what is already known.
        let ctx = TransformContext::with_mode(self, cached, power_before.clone());
        let mut base_state = TransformState::with_thermal(
            base_fp.clone(),
            base_pl.clone(),
            self.base.regions.clone(),
            tmap_before.clone(),
            hotspots.clone(),
        );
        let next = transform.apply(&ctx, &mut base_state)?;
        let (new_fp, new_pl) = (next.floorplan, next.placement);

        let (_, _, tmap_after) = self.analyze_placement_mode(&new_fp, &new_pl, cached)?;
        let timing_after = analyze(
            &self.netlist,
            &new_fp,
            &new_pl,
            Some(&tmap_after),
            &self.config.timing,
        )?;
        let hpwl_after = total_hpwl(&self.netlist, &new_fp, &new_pl);
        let base_area = base_fp.core().area();
        let new_area = new_fp.core().area();
        Ok(FlowReport {
            strategy: transform.as_strategy().unwrap_or(Strategy::None),
            transform_id: transform.id(),
            base_area_um2: base_area,
            new_area_um2: new_area,
            area_overhead_pct: (new_area / base_area - 1.0) * 100.0,
            before: ThermalSummary::of(tmap_before),
            after: ThermalSummary::of(&tmap_after),
            hotspots,
            timing_before,
            timing_after,
            hpwl_before_um: hpwl_before,
            hpwl_after_um: hpwl_after,
            total_power_w: power_before.total_w(),
        })
    }
}
