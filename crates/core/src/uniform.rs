//! The paper's **Default** baseline: blind, uniform whitespace.
//!
//! "Even a straightforward use of this area slack (e.g., by decreasing
//! the row utilization factor during placement) would result in a
//! decrease in cell (and, in turn, power) density over the entire
//! circuit." This module implements exactly that: re-place the design at
//! a relaxed utilization so the same cells spread over a larger core.

use geom::Grid2d;
use netlist::Netlist;
use placement::{PlacementResult, Placer, PlacerConfig};

use crate::{FlowError, PowerDelta};

/// Re-places `netlist` with `area_overhead` (e.g. `0.161` for +16.1 %)
/// of extra core area distributed uniformly: the new utilization is
/// `base_utilization / (1 + area_overhead)`.
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] for a negative overhead and
/// propagates placement failures.
pub fn uniform_slack(
    netlist: &Netlist,
    base_config: &PlacerConfig,
    area_overhead: f64,
) -> Result<PlacementResult, FlowError> {
    if area_overhead < 0.0 {
        return Err(FlowError::BadStrategy {
            detail: format!("negative area overhead {area_overhead}"),
        });
    }
    let relaxed = PlacerConfig {
        utilization: base_config.utilization / (1.0 + area_overhead),
        ..base_config.clone()
    };
    Ok(Placer::new(relaxed).place(netlist)?)
}

/// The surrogate *map* of a uniform-slack stage: every bin's power
/// density scaled by `1/(1 + area_overhead)`, on the input map's own
/// mesh. This is the composable map→map half of [`uniform_power_delta`],
/// used by transform pipelines whose later stages reshape the diluted
/// map further.
pub fn uniform_surrogate_map(power: &Grid2d<f64>, area_overhead: f64) -> Grid2d<f64> {
    let dilute = 1.0 / (1.0 + area_overhead.max(0.0));
    let mut out = power.clone();
    for value in out.values_mut() {
        *value *= dilute;
    }
    out
}

/// The screening surrogate for a Default (uniform slack) candidate:
/// spreading the same cells over `1 + area_overhead` times the area
/// scales every bin's power density by `1/(1 + area_overhead)`, modeled
/// on the baseline mesh as a uniform scaling of the power map. Being a
/// pure scaling, a [`crate::DeltaCandidateEvaluator`] prices it in
/// closed form — no solve at all.
pub fn uniform_power_delta(power: &Grid2d<f64>, area_overhead: f64) -> PowerDelta {
    let scale = 1.0 / (1.0 + area_overhead.max(0.0)) - 1.0;
    let mut deltas = Vec::new();
    for iy in 0..power.ny() {
        for ix in 0..power.nx() {
            let p = *power.get(ix, iy);
            if p > 0.0 && scale != 0.0 {
                deltas.push((ix, iy, p * scale));
            }
        }
    }
    PowerDelta::new(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arithgen::{build_benchmark, BenchmarkConfig};

    #[test]
    fn overhead_grows_core_area_proportionally() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let base_cfg = PlacerConfig::default();
        let base = Placer::new(base_cfg.clone()).place(&nl).unwrap();
        let relaxed = uniform_slack(&nl, &base_cfg, 0.25).unwrap();
        let growth = relaxed.floorplan.core().area() / base.floorplan.core().area();
        assert!((growth - 1.25).abs() < 0.05, "area grew by {growth}");
        assert!(relaxed.placement.is_fully_placed(&nl));
    }

    #[test]
    fn zero_overhead_reproduces_the_base_area() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let base_cfg = PlacerConfig::default();
        let base = Placer::new(base_cfg.clone()).place(&nl).unwrap();
        let same = uniform_slack(&nl, &base_cfg, 0.0).unwrap();
        assert!(
            (same.floorplan.core().area() - base.floorplan.core().area()).abs()
                < base.floorplan.core().area() * 1e-6
        );
    }

    #[test]
    fn negative_overhead_is_rejected() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        assert!(uniform_slack(&nl, &PlacerConfig::default(), -0.1).is_err());
    }
}
