//! A shared, generation-aware, LRU-bounded `get_or_compute` cache — the
//! primitive under [`crate::ThermalModelCache`] and the result store of
//! the `coolserved` optimization service.
//!
//! Entries are tagged with the cache's *generation* at compute time;
//! [`KeyedCache::bump_generation`] invalidates everything computed
//! before it without walking the map (stale entries fall out lazily on
//! the next touch). Hit / miss / eviction counters are exposed via
//! [`KeyedCache::stats`] so the bench pipeline can gate cache
//! effectiveness instead of guessing at it.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard};

/// Counter snapshot of a [`KeyedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or only a stale generation).
    pub misses: u64,
    /// Entries evicted by the LRU bound or dropped as stale.
    pub evictions: u64,
    /// Values inserted.
    pub insertions: u64,
    /// Current invalidation generation.
    pub generation: u64,
    /// Live entries.
    pub len: usize,
    /// LRU capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    generation: u64,
    last_used: u64,
}

#[derive(Debug)]
struct Inner<K, V> {
    entries: HashMap<K, Entry<V>>,
    capacity: usize,
    /// Monotonic LRU clock, bumped on every touch.
    tick: u64,
    generation: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

/// A thread-safe keyed cache with compute-once semantics, an LRU bound,
/// and a generation counter for wholesale invalidation.
///
/// Values are handed out as `Arc<V>`, so a hit never clones the payload
/// and an eviction never invalidates a value a caller still holds.
/// Clones of the cache share one store — the sweep engine and the
/// service worker pool both rely on that to share factorized models
/// across threads.
///
/// Eviction scans for the least-recently-used entry (O(len)); the
/// workloads this backs hold tens of entries, where a scan beats the
/// bookkeeping of a linked LRU list.
#[derive(Debug)]
pub struct KeyedCache<K, V> {
    inner: Arc<Mutex<Inner<K, V>>>,
}

impl<K, V> Clone for KeyedCache<K, V> {
    fn clone(&self) -> Self {
        KeyedCache {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K: Eq + Hash + Clone, V> KeyedCache<K, V> {
    /// An empty cache holding at most `capacity` entries (clamped to 1).
    pub fn with_capacity(capacity: usize) -> Self {
        KeyedCache {
            inner: Arc::new(Mutex::new(Inner {
                entries: HashMap::new(),
                capacity: capacity.max(1),
                tick: 0,
                generation: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                insertions: 0,
            })),
        }
    }

    /// Locks the store, recovering from poisoning: entries are only ever
    /// inserted whole (`Arc`s of finished values), so a panic on another
    /// thread cannot leave the map half-written.
    fn lock(&self) -> MutexGuard<'_, Inner<K, V>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks `key` up, counting a hit or miss. An entry from an older
    /// generation is dropped and counted as a miss.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let generation = inner.generation;
        let (value, stale) = match inner.entries.get_mut(key) {
            Some(entry) if entry.generation == generation => {
                entry.last_used = tick;
                (Some(Arc::clone(&entry.value)), false)
            }
            Some(_) => (None, true),
            None => (None, false),
        };
        if stale {
            inner.entries.remove(key);
            inner.evictions += 1;
        }
        if value.is_some() {
            inner.hits += 1;
        } else {
            inner.misses += 1;
        }
        value
    }

    /// Inserts `value` under `key` at the current generation, evicting
    /// the least-recently-used entry if the cache is full.
    pub fn insert(&self, key: K, value: Arc<V>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let generation = inner.generation;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= inner.capacity {
            let lru = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(lru) = lru {
                inner.entries.remove(&lru);
                inner.evictions += 1;
            }
        }
        inner.insertions += 1;
        inner.entries.insert(
            key,
            Entry {
                value,
                generation,
                last_used: tick,
            },
        );
    }

    /// Returns the cached value for `key`, computing and inserting it on
    /// a miss. The computation runs *outside* the lock so distinct keys
    /// compute concurrently; if two threads race on the same key, the
    /// loser's value is dropped in favour of the first one cached.
    ///
    /// A value computed across a [`KeyedCache::bump_generation`] call is
    /// still returned to its caller but tagged with the generation it
    /// was started under, so later lookups discard it as stale.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error; nothing is cached then.
    pub fn get_or_compute<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        if let Some(value) = self.get(&key) {
            return Ok(value);
        }
        let started_generation = self.lock().generation;
        let value = Arc::new(compute()?);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let current_generation = inner.generation;
        if let Some(existing) = inner.entries.get_mut(&key) {
            if existing.generation == current_generation {
                existing.last_used = tick;
                return Ok(Arc::clone(&existing.value));
            }
        }
        if !inner.entries.contains_key(&key) && inner.entries.len() >= inner.capacity {
            let lru = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(lru) = lru {
                inner.entries.remove(&lru);
                inner.evictions += 1;
            }
        }
        inner.insertions += 1;
        inner.entries.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                generation: started_generation,
                last_used: tick,
            },
        );
        Ok(value)
    }

    /// Invalidates every cached entry by advancing the generation
    /// counter. O(1): stale entries are dropped lazily as they are
    /// touched (or evicted by the LRU bound).
    pub fn bump_generation(&self) {
        self.lock().generation += 1;
    }

    /// Drops every entry immediately (counters and generation survive).
    pub fn clear(&self) {
        let mut inner = self.lock();
        let dropped = inner.entries.len() as u64;
        inner.entries.clear();
        inner.evictions += dropped;
    }

    /// Entries currently held (stale ones included until touched).
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            insertions: inner.insertions,
            generation: inner.generation,
            len: inner.entries.len(),
            capacity: inner.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_compute_computes_once_and_counts() {
        let cache: KeyedCache<u32, u32> = KeyedCache::with_capacity(4);
        let mut computes = 0;
        for _ in 0..3 {
            let v = cache
                .get_or_compute(7, || {
                    computes += 1;
                    Ok::<_, ()>(42)
                })
                .unwrap();
            assert_eq!(*v, 42);
        }
        assert_eq!(computes, 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn compute_errors_cache_nothing() {
        let cache: KeyedCache<u32, u32> = KeyedCache::with_capacity(4);
        assert!(cache
            .get_or_compute(1, || Err::<u32, &str>("boom"))
            .is_err());
        assert!(cache.is_empty());
        let v = cache.get_or_compute(1, || Ok::<_, &str>(5)).unwrap();
        assert_eq!(*v, 5);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache: KeyedCache<u32, u32> = KeyedCache::with_capacity(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        assert!(cache.get(&1).is_some()); // 2 is now the coldest
        cache.insert(3, Arc::new(30));
        assert!(cache.get(&2).is_none(), "LRU entry must be gone");
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn bump_generation_invalidates_lazily() {
        let cache: KeyedCache<u32, u32> = KeyedCache::with_capacity(4);
        cache.insert(1, Arc::new(10));
        cache.bump_generation();
        assert_eq!(cache.len(), 1, "invalidation is lazy");
        assert!(cache.get(&1).is_none(), "stale generation must miss");
        assert_eq!(cache.len(), 0, "the stale entry is dropped on touch");
        let stats = cache.stats();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.evictions, 1);
        // Recompute lands in the new generation and hits again.
        let v = cache.get_or_compute(1, || Ok::<_, ()>(11)).unwrap();
        assert_eq!(*v, 11);
        assert!(cache.get(&1).is_some());
    }

    #[test]
    fn clones_share_one_store() {
        let cache: KeyedCache<u32, u32> = KeyedCache::with_capacity(4);
        let clone = cache.clone();
        cache.insert(9, Arc::new(99));
        assert_eq!(clone.get(&9).as_deref(), Some(&99));
        assert_eq!(clone.stats().hits, 1);
    }
}
