//! **`postplace`** — the contribution of *"Post-placement temperature
//! reduction techniques"* (Liu & Nannarelli et al., DATE 2010):
//! smart allocation of whitespace into thermal hotspots.
//!
//! Given a placed, power-annotated design and its thermal map, the crate
//! offers three ways to spend a user-specified area overhead:
//!
//! * [`Strategy::UniformSlack`] — the paper's **Default** baseline: relax
//!   the placement's row-utilization factor, spreading whitespace blindly
//!   and uniformly over the whole core;
//! * [`Strategy::EmptyRowInsertion`] — insert empty, filler-filled layout
//!   rows between the rows of the detected hotspots (coarse grain, best
//!   for wide or large hotspots);
//! * [`Strategy::HotspotWrapper`] — ring each hotspot with whitespace,
//!   evict the cells that do not contribute to it and spread the hot
//!   cells uniformly inside the wrapped region (fine grain, best for
//!   small concentrated hotspots).
//!
//! [`Flow`] wires up the whole evaluation pipeline of the paper — the
//! synthetic nine-unit benchmark, workload simulation, power estimation,
//! placement, RC thermal simulation and STA — so each experiment is a
//! single [`Flow::run`] call producing a [`FlowReport`] with before/after
//! peak temperature, area overhead and timing overhead.
//!
//! The three techniques are ports of an **open transform engine** (see
//! [`PlacementTransform`]): arbitrary techniques — composite pipelines
//! ([`CompositeTransform`]), targeted row insertion, hot-bin filler
//! spreading, or your own — plug into the same flow via
//! [`Flow::run_transform`], screen through the same delta surrogates,
//! and compete on the area-vs-temperature frontier
//! ([`pareto_frontier`]). The [`Strategy`] enum remains as a thin
//! compatibility facade over the ported transforms.
//!
//! # Examples
//!
//! ```no_run
//! use postplace::{Flow, FlowConfig, Strategy};
//!
//! # fn main() -> Result<(), postplace::FlowError> {
//! let flow = Flow::new(FlowConfig::scattered_small())?;
//! let eri = flow.run(Strategy::EmptyRowInsertion { rows: 12 })?;
//! let def = flow.run(Strategy::UniformSlack {
//!     area_overhead: eri.area_overhead_pct / 100.0,
//! })?;
//! assert!(eri.reduction_pct() >= def.reduction_pct() - 1.0);
//! # Ok(())
//! # }
//! ```

mod cache;
mod eri;
mod error;
mod evaluate;
mod flow;
mod hotspot;
mod optimize;
mod request;
mod strategy;
mod sweep;
mod transform;
mod uniform;
mod wrapper;

pub use cache::{CacheStats, KeyedCache};

pub use eri::{
    empty_row_insertion, eri_insertion_positions, eri_power_delta, eri_surrogate_map,
    targeted_insertion_positions, EriReport,
};
pub use error::FlowError;
pub use evaluate::{
    CandidateEval, CandidateEvaluator, DeltaCandidateEvaluator, ExactCandidateEvaluator, PowerDelta,
};
pub use flow::{Flow, FlowConfig, FlowReport, ThermalModelCache, ThermalSummary, WorkloadSpec};
pub use hotspot::{
    classify_hotspots, detect_hotspots, split_hotspots_by_regions, Hotspot, HotspotClass,
    HotspotConfig,
};
#[allow(deprecated)]
pub use optimize::{best_strategy_within_budget, pareto_frontier};
pub use optimize::{
    best_strategy_within_budget_with, minimize_rows_for_target, BudgetOptimum, OptimizeConfig,
    ParetoFrontier, ParetoPoint, RowOptimum,
};
pub use request::{
    config_fingerprint, CacheKey, JobId, OptimizeGoal, OptimizeOutcome, OptimizeRequest,
    OptimizeRequestBuilder, OptimizeResponse, StableHasher,
};
pub use strategy::Strategy;
#[allow(deprecated)]
pub use sweep::run_sweep;
pub use sweep::{
    default_threads, run_requests, RequestBatch, RequestOutcome, Scenario, ScenarioResult,
    SweepGrid, SweepReport,
};
/// Re-exported so request builders can name a solver backend without
/// depending on `thermalsim` directly.
pub use thermalsim::SolverKind;
pub use transform::{
    rows_for_budget, CompositeTransform, EmptyRowInsertionTransform, HotBinSpreadTransform,
    HotspotWrapperTransform, NoneTransform, PlacementTransform, SpreadFillersTransform,
    TargetedRowInsertionTransform, TransformContext, TransformFactory, TransformRegistry,
    TransformState, UniformSlackTransform, WrapHotspotsTransform,
};
pub use uniform::{uniform_power_delta, uniform_slack, uniform_surrogate_map};
pub use wrapper::{
    hotspot_wrapper, wrap_regions, wrap_surrogate_map, wrapper_power_delta, WrapperConfig,
    WrapperReport,
};
