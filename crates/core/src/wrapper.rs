//! The Hotspot Wrapper (HW).
//!
//! "We isolate the hotspot from the rest of the circuit using a wrapper,
//! namely, the cells which are the source of the hotspot are enclosed in
//! a 'whitespace ring'. Once the hotspot is isolated, we reduce the cell
//! density inside the wrapper by moving cells not belonging to the
//! hotspot outside the wrapper and uniformly distribute the remaining
//! cells in the wrapper area."

use geom::{Grid2d, Rect};
use netlist::{CellId, Netlist};
use placement::{fill_whitespace, nearest_slot_outside, squeeze_into_row, Floorplan, Placement};
use powerest::PowerReport;
use serde::{Deserialize, Serialize};

use crate::{FlowError, Hotspot, PowerDelta};

/// Hotspot-wrapper parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WrapperConfig {
    /// Ring width added around each hotspot bounding box, in row pitches.
    pub ring_rows: f64,
    /// A cell is a hotspot *source* when its power density exceeds this
    /// multiple of the design's average power density.
    pub hot_cell_factor: f64,
    /// Detection threshold used to find the hotspot *cores* to wrap
    /// (higher than general-purpose detection: the wrapper targets the
    /// concentrated center of a hotspot, as in the paper's Fig. 4).
    pub threshold_fraction: f64,
    /// Regions whose hot cells occupy less than this fraction of the
    /// occupied area are left alone — there is no hotspot source to
    /// isolate, only diffused warmth.
    pub min_hot_share: f64,
}

impl Default for WrapperConfig {
    fn default() -> Self {
        WrapperConfig {
            ring_rows: 3.0,
            hot_cell_factor: 1.5,
            threshold_fraction: 0.3,
            min_hot_share: 0.25,
        }
    }
}

/// Computes the regions to wrap: each hotspot's bounding box grown by the
/// whitespace ring and clamped to the core. The grown ring is what makes
/// the wrapper effective — the hot cells get re-spread over
/// `bbox + ring`, diluting the hotspot's power density.
///
/// Wrappers whose *rings* collide are separated at the midline of their
/// overlap (the hotspot bounding boxes themselves never overlap); any
/// remaining overlaps (pathological geometry) are merged.
pub fn wrap_regions(
    hotspots: &[Hotspot],
    floorplan: &Floorplan,
    config: &WrapperConfig,
) -> Vec<Rect> {
    let core = floorplan.core();
    let ring = config.ring_rows * floorplan.row_height();
    let mut regions: Vec<Rect> = hotspots
        .iter()
        .map(|h| h.bbox.expand(ring).clamp_into(&core))
        .collect();
    // Negotiate ring collisions: cut both regions at the midline of their
    // overlap, along the axis with the smaller overlap.
    for _round in 0..64 {
        let mut changed = false;
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                let (a, b) = (regions[i], regions[j]);
                if !a.intersects(&b) {
                    continue;
                }
                let ox = a.urx.min(b.urx) - a.llx.max(b.llx);
                let oy = a.ury.min(b.ury) - a.lly.max(b.lly);
                if ox <= oy {
                    let mid = (a.llx.max(b.llx) + a.urx.min(b.urx)) / 2.0;
                    if a.center().x <= b.center().x {
                        regions[i].urx = mid;
                        regions[j].llx = mid;
                    } else {
                        regions[j].urx = mid;
                        regions[i].llx = mid;
                    }
                } else {
                    let mid = (a.lly.max(b.lly) + a.ury.min(b.ury)) / 2.0;
                    if a.center().y <= b.center().y {
                        regions[i].ury = mid;
                        regions[j].lly = mid;
                    } else {
                        regions[j].ury = mid;
                        regions[i].lly = mid;
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Merge anything still overlapping (e.g. concentric boxes).
    loop {
        let mut merged = false;
        'outer: for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                if regions[i].intersects(&regions[j]) {
                    let union = regions[i].union(&regions[j]);
                    regions[i] = union;
                    regions.remove(j);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            break;
        }
    }
    regions
}

/// The screening surrogate for a Hotspot Wrapper candidate: the paper's
/// HW starts from the Default solution at `area_overhead` (a uniform
/// density dilution, `1/(1 + overhead)` on every bin) and then re-spreads
/// each wrapped hotspot's power evenly over its grown region. Modeled on
/// the baseline mesh: all bins scale down uniformly, then the power of
/// the bins inside each wrap `region` is pooled and flattened across
/// them. Sparse (only wrapped bins deviate from the uniform scaling), so
/// a [`crate::DeltaCandidateEvaluator`] prices it by superposition.
pub fn wrapper_power_delta(
    power: &Grid2d<f64>,
    regions: &[Rect],
    area_overhead: f64,
) -> PowerDelta {
    let diluted = crate::uniform_surrogate_map(power, area_overhead);
    PowerDelta::between(power, &wrap_surrogate_map(&diluted, regions), 1e-15)
}

/// The surrogate *map* of a wrap stage alone: the power of the bins
/// inside each wrap `region` pooled and flattened across them, with no
/// dilution — the composable map→map half of [`wrapper_power_delta`],
/// used by transform pipelines that stack wrapping on top of another
/// area-spending stage (uniform slack, row insertion).
pub fn wrap_surrogate_map(power: &Grid2d<f64>, regions: &[Rect]) -> Grid2d<f64> {
    let mut new_map = power.clone();
    for region in regions {
        let mut bins = Vec::new();
        let mut pooled = 0.0;
        for iy in 0..power.ny() {
            for ix in 0..power.nx() {
                if region.contains(power.bin_rect(ix, iy).center()) {
                    pooled += *new_map.get(ix, iy);
                    bins.push((ix, iy));
                }
            }
        }
        if bins.is_empty() {
            continue;
        }
        let flat = pooled / bins.len() as f64;
        for (ix, iy) in bins {
            *new_map.get_mut(ix, iy) = flat;
        }
    }
    new_map
}

/// What a wrapper transformation did.
#[derive(Debug, Clone, PartialEq)]
pub struct WrapperReport {
    /// The wrapped regions processed.
    pub regions: Vec<Rect>,
    /// Cells evicted out of the wrapped regions.
    pub evicted: usize,
    /// Hot cells re-spread inside the wrapped regions.
    pub respread: usize,
}

/// Applies the hotspot wrapper in place over pre-computed (disjoint)
/// `regions` — see [`wrap_regions`].
///
/// For every region: classify the cells inside by power density, move the
/// *cold* cells to the nearest free legal slot outside all wrapped
/// regions (the paper's "exclusive move bounds"), and spread the *hot*
/// cells uniformly over the region. Fillers are re-poured at the end.
///
/// # Errors
///
/// Returns [`FlowError::BadStrategy`] when no region is supplied or a
/// cell cannot be evicted (die too full), and propagates legalization
/// failures from the re-spread.
pub fn hotspot_wrapper(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &mut Placement,
    regions: &[Rect],
    power: &PowerReport,
    config: &WrapperConfig,
) -> Result<WrapperReport, FlowError> {
    if regions.is_empty() {
        return Err(FlowError::BadStrategy {
            detail: "no regions to wrap; run detection first".to_string(),
        });
    }
    let lib = netlist.library();
    // Average power density over the whole design (W/µm²). The hot/cold
    // classification is placement-independent, so compute it once.
    let total_area: f64 = netlist.total_cell_area_um2();
    let avg_density = power.total_w() / total_area;
    let mut hot_flags = Vec::new();
    for (id, cell) in netlist.cells() {
        if hot_flags.len() <= id.index() {
            hot_flags.resize(id.index() + 1, false);
        }
        let area = lib.cell_area_um2(cell.master());
        hot_flags[id.index()] = power.cell_w(id) / area >= config.hot_cell_factor * avg_density;
    }
    let is_hot = |id: netlist::CellId| hot_flags[id.index()];

    // Grow each region until it encloses its hotspot *sources*: the
    // detected thermal blob may cover only the core of the source
    // cluster, and re-spreading into a region smaller than the cluster
    // would concentrate it instead of diluting it. The placement is not
    // touched until the eviction phase, so the hot rects are stable here.
    let hot_rects: Vec<Rect> = netlist
        .cells()
        .filter(|&(id, _)| is_hot(id))
        .filter_map(|(id, _)| placement.cell_rect(netlist, floorplan, id))
        .collect();
    let core = floorplan.core();
    let ring = config.ring_rows * floorplan.row_height();
    let mut regions: Vec<Rect> = regions.to_vec();
    for region in &mut regions {
        for _ in 0..4 {
            let mut bbox: Option<Rect> = None;
            for rect in &hot_rects {
                if region.intersects(rect) {
                    bbox = Some(match bbox {
                        None => *rect,
                        Some(b) => b.union(rect),
                    });
                }
            }
            let Some(bbox) = bbox else { break };
            let grown = region.union(&bbox.expand(ring)).clamp_into(&core);
            if (grown.area() - region.area()).abs() < 1e-9 {
                break;
            }
            *region = grown;
        }
    }
    // Re-separate any regions that grew into each other.
    for _round in 0..64 {
        let mut changed = false;
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                let (a, b) = (regions[i], regions[j]);
                if !a.intersects(&b) {
                    continue;
                }
                let ox = a.urx.min(b.urx) - a.llx.max(b.llx);
                let oy = a.ury.min(b.ury) - a.lly.max(b.lly);
                if ox <= oy {
                    let mid = (a.llx.max(b.llx) + a.urx.min(b.urx)) / 2.0;
                    if a.center().x <= b.center().x {
                        regions[i].urx = mid;
                        regions[j].llx = mid;
                    } else {
                        regions[j].urx = mid;
                        regions[i].llx = mid;
                    }
                } else {
                    let mid = (a.lly.max(b.lly) + a.ury.min(b.ury)) / 2.0;
                    if a.center().y <= b.center().y {
                        regions[i].ury = mid;
                        regions[j].lly = mid;
                    } else {
                        regions[j].ury = mid;
                        regions[i].lly = mid;
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut evicted = 0usize;
    let mut respread = 0usize;
    let mut processed_regions = Vec::new();
    for region in regions.iter() {
        // Partition the cells touching the wrapped region. Any overlap
        // counts: a cell straddling the boundary would collide with the
        // re-spread.
        let mut hot_cells: Vec<CellId> = Vec::new();
        let mut cold_cells: Vec<(CellId, geom::Point, placement::PlacedCell)> = Vec::new();
        for (id, _) in netlist.cells() {
            let Some(rect) = placement.cell_rect(netlist, floorplan, id) else {
                continue;
            };
            if !region.intersects(&rect) {
                continue;
            }
            if is_hot(id) {
                hot_cells.push(id);
            } else {
                // `cell_rect` above answered, so the cell has a slot;
                // skip rather than assert if that ever stops holding.
                let Some(slot) = placement.location(id) else {
                    continue;
                };
                cold_cells.push((id, rect.center(), slot));
            }
        }
        // Diffused-warmth region with no real source: leave it alone
        // (wrapping it would only stretch wires).
        let hot_area: f64 = hot_cells
            .iter()
            .map(|&c| lib.cell_area_um2(netlist.cell(c).master()))
            .sum();
        let cold_area: f64 = cold_cells
            .iter()
            .map(|&(c, _, _)| lib.cell_area_um2(netlist.cell(c).master()))
            .sum();
        if hot_area < config.min_hot_share * (hot_area + cold_area) {
            continue;
        }
        processed_regions.push(*region);
        // Evict cold cells to the nearest legal slot outside every region.
        for (id, origin, original_slot) in cold_cells {
            placement.remove(id);
            if let Some((row, site)) =
                nearest_slot_outside(netlist, floorplan, placement, id, origin, &regions)
            {
                placement.place(netlist, floorplan, id, row, site);
                evicted += 1;
                continue;
            }
            // No single gap is wide enough (uniform placements have many
            // small gaps): shove cells aside in the nearest row that lies
            // completely outside every wrapped region.
            let mut done = false;
            let mut candidate_rows: Vec<usize> = (0..floorplan.num_rows())
                .filter(|&r| {
                    let rect = floorplan.row_rect(r);
                    !regions.iter().any(|g| g.intersects(&rect))
                })
                .collect();
            candidate_rows.sort_by(|&a, &b| {
                let da = ((floorplan.row_rect(a).center().y) - origin.y).abs();
                let db = ((floorplan.row_rect(b).center().y) - origin.y).abs();
                da.total_cmp(&db)
            });
            // Cap the fill of receiving rows: dumping every evicted cell
            // into the nearest row would build a dense, hot stripe right
            // against the wrapper. Relax the cap progressively on small
            // dies rather than fail outright.
            'caps: for cap in [0.82, 0.95, 1.01] {
                for &r in &candidate_rows {
                    if placement.row_utilization(floorplan, r as u32) > cap {
                        continue;
                    }
                    if squeeze_into_row(netlist, floorplan, placement, id, r as u32, origin.x) {
                        done = true;
                        break 'caps;
                    }
                }
            }
            if !done {
                // Best effort: the die is too full to move this (cold)
                // cell out — leave it where it was; the re-spread will
                // route the hot cells around it.
                placement.place(
                    netlist,
                    floorplan,
                    id,
                    original_slot.row,
                    original_slot.site,
                );
                continue;
            }
            evicted += 1;
        }
        // Re-spread the hot cells over the wrapped region, preserving
        // their relative arrangement (affine scale-up): power density
        // dilutes by the area ratio everywhere, locality is untouched
        // (the paper: "evenly redistribute the 'hot cells' so that they
        // are not closely grouped together"; "changes of cell positions
        // are local").
        let sources: Vec<(CellId, geom::Point)> = hot_cells
            .iter()
            .filter_map(|&id| {
                placement
                    .cell_center(netlist, floorplan, id)
                    .map(|c| (id, c))
            })
            .collect();
        for &id in &hot_cells {
            placement.remove(id);
        }
        spread_scaled(netlist, floorplan, placement, &sources, *region)?;
        respread += sources.len();
    }
    fill_whitespace(netlist, floorplan, placement)?;
    Ok(WrapperReport {
        regions: processed_regions,
        evicted,
        respread,
    })
}

/// Re-places `sources` (cells with their previous centers) into `region`
/// by scaling their arrangement to fill it: each cell's relative position
/// inside the sources' bounding box maps affinely onto the region, rows
/// are then packed left-to-right with uniform gaps. Falls back to
/// first-fit for overflow rows.
fn spread_scaled(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &mut Placement,
    sources: &[(CellId, geom::Point)],
    region: Rect,
) -> Result<(), FlowError> {
    use placement::region_row_segments;
    if sources.is_empty() {
        return Ok(());
    }
    let lib = netlist.library();
    let width_of = |id: CellId| lib.cell(netlist.cell(id).master()).width_sites();
    let segments = region_row_segments(floorplan, region);
    if segments.is_empty() {
        return Err(FlowError::BadStrategy {
            detail: "wrapped region covers no rows".to_string(),
        });
    }
    let capacity: u64 = segments.iter().map(|&(_, lo, hi)| (hi - lo) as u64).sum();
    let needed: u64 = sources.iter().map(|&(id, _)| width_of(id) as u64).sum();
    if needed > capacity {
        return Err(FlowError::BadStrategy {
            detail: format!(
                "wrapped region too small for its hot cells ({needed} > {capacity} sites)"
            ),
        });
    }
    // Source bounding box.
    let mut src = Rect::new(
        sources[0].1.x,
        sources[0].1.y,
        sources[0].1.x,
        sources[0].1.y,
    );
    for &(_, c) in sources {
        src = src.union(&Rect::new(c.x, c.y, c.x, c.y));
    }
    let sw = src.width().max(1e-9);
    let sh = src.height().max(1e-9);
    // Map each cell to a segment index by scaled y, collect per segment.
    let nseg = segments.len();
    let mut per_segment: Vec<Vec<(CellId, f64)>> = vec![Vec::new(); nseg];
    for &(id, c) in sources {
        let ty = ((c.y - src.lly) / sh).clamp(0.0, 1.0);
        let tx = (c.x - src.llx) / sw;
        let seg = ((ty * nseg as f64) as usize).min(nseg - 1);
        per_segment[seg].push((id, tx));
    }
    // Balance overflowing segments into neighbours (row quantization).
    for i in 0..nseg {
        loop {
            let (_, lo, hi) = segments[i];
            let cap = (hi - lo) as u64;
            let used: u64 = per_segment[i]
                .iter()
                .map(|&(id, _)| width_of(id) as u64)
                .sum();
            if used <= cap {
                break;
            }
            // Move the cell with the most extreme tx to the lighter
            // neighbouring segment.
            per_segment[i].sort_by(|a, b| a.1.total_cmp(&b.1));
            let take_last = i + 1 < nseg;
            let moved = if take_last {
                per_segment[i].pop()
            } else if per_segment[i].is_empty() {
                None
            } else {
                Some(per_segment[i].remove(0))
            };
            // `used > cap >= 0` implies the segment holds a cell; bail
            // out of the balance loop rather than assert on it.
            let Some(moved) = moved else {
                break;
            };
            let dst = if take_last { i + 1 } else { i - 1 };
            per_segment[dst].push(moved);
        }
    }
    // Place each segment: tx order, uniform gaps.
    let mut leftovers: Vec<CellId> = Vec::new();
    for (i, batch) in per_segment.iter_mut().enumerate() {
        if batch.is_empty() {
            continue;
        }
        batch.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (row, lo, hi) = segments[i];
        let seg_sites = (hi - lo) as u64;
        let batch_width: u64 = batch.iter().map(|&(id, _)| width_of(id) as u64).sum();
        if batch_width > seg_sites {
            leftovers.extend(batch.iter().map(|&(id, _)| id));
            continue;
        }
        let free = seg_sites - batch_width;
        let n = batch.len() as u64;
        let gap_each = free / n;
        let extra = free % n;
        let mut cursor = lo as u64;
        for (k, &(id, _)) in batch.iter().enumerate() {
            cursor += gap_each + u64::from((k as u64) < extra);
            let w = width_of(id);
            // An unevicted straggler may occupy the ideal slot: nudge
            // right until the cell fits, or defer it to the sweep.
            let mut site = cursor as u32;
            let mut placed_at = None;
            while site + w <= hi {
                if placement.fits(row, site, w) {
                    placement.place(netlist, floorplan, id, row, site);
                    placed_at = Some(site);
                    break;
                }
                site += 1;
            }
            match placed_at {
                Some(site) => cursor = (site + w) as u64,
                None => leftovers.push(id),
            }
        }
    }
    // First-fit sweep for anything that could not be balanced.
    'outer: for id in leftovers {
        let w = width_of(id);
        for &(row, lo, hi) in &segments {
            let mut site = lo;
            while site + w <= hi {
                if placement.fits(row, site, w) {
                    placement.place(netlist, floorplan, id, row, site);
                    continue 'outer;
                }
                site += 1;
            }
        }
        return Err(FlowError::BadStrategy {
            detail: "wrapped region could not absorb its hot cells".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_hotspots, HotspotConfig};
    use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
    use logicsim::{Simulator, Workload};
    use placement::{validate, Placer, PlacerConfig};
    use powerest::{estimate_power, power_map, PowerConfig};

    fn pipeline() -> (
        netlist::Netlist,
        placement::PlacementResult,
        PowerReport,
        thermalsim::ThermalMap,
    ) {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let placed = Placer::new(PlacerConfig::with_utilization(0.6))
            .place(&nl)
            .unwrap();
        let w = Workload::with_active_units(&nl, &[UnitRole::BoothMult.unit_id()], 0.5);
        let mut sim = Simulator::new(&nl);
        sim.run_workload(&w, 16, 3);
        sim.reset_activity();
        sim.run_workload(&w, 128, 4);
        let report = estimate_power(
            &nl,
            &sim.activity(),
            Some((&placed.floorplan, &placed.placement)),
            None,
            &PowerConfig::default(),
        );
        let pmap = power_map(&nl, &placed.floorplan, &placed.placement, &report, 20, 20);
        let sim_t =
            thermalsim::ThermalSimulator::new(thermalsim::ThermalConfig::with_resolution(20, 20));
        let tmap = sim_t.solve(placed.floorplan.core(), &pmap).unwrap();
        (nl, placed, report, tmap)
    }

    #[test]
    fn wrapper_keeps_placement_legal_and_lowers_hotspot_density() {
        let (nl, mut placed, report, tmap) = pipeline();
        let hotspots = detect_hotspots(&tmap, &HotspotConfig::default());
        assert!(!hotspots.is_empty(), "booth workload must create a hotspot");
        let cfg = WrapperConfig::default();
        let regions = wrap_regions(&hotspots, &placed.floorplan, &cfg);
        let before_density = {
            let region = hotspots[0].bbox;
            cell_area_in(&nl, &placed.floorplan, &placed.placement, region) / region.area()
        };
        let wr = hotspot_wrapper(
            &nl,
            &placed.floorplan,
            &mut placed.placement,
            &regions,
            &report,
            &cfg,
        )
        .unwrap();
        assert!(validate(&nl, &placed.floorplan, &placed.placement).is_empty());
        assert!(wr.respread > 0);
        let after_density = {
            let region = hotspots[0].bbox;
            cell_area_in(&nl, &placed.floorplan, &placed.placement, region) / region.area()
        };
        assert!(
            after_density < before_density,
            "wrapper must thin the hotspot: {after_density:.3} vs {before_density:.3}"
        );
    }

    fn cell_area_in(nl: &netlist::Netlist, fp: &Floorplan, p: &Placement, region: Rect) -> f64 {
        nl.cells()
            .filter_map(|(id, _)| p.cell_rect(nl, fp, id))
            .filter_map(|r| r.intersection(&region))
            .map(|r| r.area())
            .sum()
    }

    #[test]
    fn wrap_regions_merges_overlaps_and_respects_bounds() {
        let (_, placed, _, tmap) = pipeline();
        let hotspots = detect_hotspots(&tmap, &HotspotConfig::default());
        let cfg = WrapperConfig::default();
        let merged = wrap_regions(&hotspots, &placed.floorplan, &cfg);
        for (i, a) in merged.iter().enumerate() {
            for b in merged.iter().skip(i + 1) {
                assert!(!a.intersects(b), "wrap regions must be disjoint");
            }
            assert!(placed.floorplan.core().contains_rect(a));
        }
    }

    #[test]
    fn wrapper_without_regions_is_an_error() {
        let (nl, mut placed, report, _) = pipeline();
        let err = hotspot_wrapper(
            &nl,
            &placed.floorplan.clone(),
            &mut placed.placement,
            &[],
            &report,
            &WrapperConfig::default(),
        );
        assert!(err.is_err());
    }
}
