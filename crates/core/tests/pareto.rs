//! Acceptance tests for the strategy-transform engine's Pareto
//! optimizer: the frontier must be monotone and non-dominated, span
//! several technique families (composites and post-enum techniques
//! included), bit-match direct runs, and stay frugal with exact
//! verifications.

use postplace::{
    Flow, FlowConfig, OptimizeRequest, ParetoFrontier, Strategy, TransformRegistry, WorkloadSpec,
};

const BUDGETS: [f64; 8] = [0.04, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30, 0.35];

fn clustered_flow() -> Flow {
    Flow::new(FlowConfig::with_workload(WorkloadSpec::clustered_hotspot()).fast()).unwrap()
}

fn frontier_of(flow: &Flow) -> ParetoFrontier {
    let request = OptimizeRequest::builder()
        .for_flow(flow)
        .frontier(BUDGETS)
        .build()
        .unwrap();
    flow.optimize(&request)
        .unwrap()
        .frontier()
        .cloned()
        .expect("frontier goals yield frontiers")
}

#[test]
fn frontier_is_monotone_diverse_and_bit_exact() {
    let flow = clustered_flow();
    let frontier = frontier_of(&flow);

    // At least 5 exact-verified points spanning ≥ 3 distinct transform
    // kinds, with a composite and a new (post-enum) technique on the
    // frontier for the clustered-hotspot workload.
    assert!(
        frontier.points.len() >= 5,
        "only {} frontier points",
        frontier.points.len()
    );
    let kinds: std::collections::HashSet<&str> =
        frontier.points.iter().map(|p| p.kind.as_str()).collect();
    assert!(
        kinds.len() >= 3,
        "only {} distinct kinds: {kinds:?}",
        kinds.len()
    );
    assert!(
        frontier
            .points
            .iter()
            .any(|p| p.transform_id.starts_with("composite(")),
        "no composite on the frontier: {kinds:?}"
    );
    assert!(
        frontier
            .points
            .iter()
            .any(|p| p.kind.contains("targeted-eri") || p.kind.contains("hot-spread")),
        "no new technique on the frontier: {kinds:?}"
    );

    // Monotone and non-dominated: overhead strictly increasing,
    // reduction strictly increasing along the frontier.
    for pair in frontier.points.windows(2) {
        assert!(
            pair[1].report.area_overhead_pct > pair[0].report.area_overhead_pct,
            "overhead not increasing: {} then {}",
            pair[0].transform_id,
            pair[1].transform_id
        );
        assert!(
            pair[1].report.reduction_pct() > pair[0].report.reduction_pct(),
            "{} is dominated by {}",
            pair[1].transform_id,
            pair[0].transform_id
        );
    }

    // Every reported point bit-matches a direct `Flow::run` of the
    // transform its id names (transform runs are deterministic; for
    // enum-facade transforms this is literally `Flow::run`).
    for point in &frontier.points {
        let transform = TransformRegistry::parse(&point.transform_id).unwrap();
        let direct = match transform.as_strategy() {
            Some(strategy) => flow.run(strategy).unwrap(),
            None => flow.run_transform(transform.as_ref()).unwrap(),
        };
        assert_eq!(
            point.report.after.peak_c, direct.after.peak_c,
            "{}: frontier peak must bit-match a direct run",
            point.transform_id
        );
        assert_eq!(point.report.area_overhead_pct, direct.area_overhead_pct);
        assert_eq!(point.report.transform_id, direct.transform_id);
    }

    // Exact spend accounting: screening does the work, verification
    // stays a small fraction (the bench gate holds 25 %).
    assert!(
        frontier.screened >= 40,
        "only {} screened",
        frontier.screened
    );
    assert!(
        frontier.exact_share() <= 0.25,
        "exact verifications are {:.0}% of screened",
        frontier.exact_share() * 100.0
    );
    assert!(frontier.exact_runs >= frontier.points.len());
}

#[test]
fn frontier_respects_budget_caps() {
    // Every verified point's *planned* overhead fit its budget; the
    // realized overhead stays within the slack of the largest budget.
    let flow = clustered_flow();
    let frontier = frontier_of(&flow);
    let cap = BUDGETS.last().unwrap() * 100.0;
    for point in &frontier.points {
        assert!(
            point.budget <= *BUDGETS.last().unwrap(),
            "{} attributed to budget {}",
            point.transform_id,
            point.budget
        );
        assert!(
            point.report.area_overhead_pct <= cap + 2.0,
            "{}: +{:.2}% blows past the grid",
            point.transform_id,
            point.report.area_overhead_pct
        );
    }
}

#[test]
fn enum_facade_and_bench_records_stay_consumable() {
    // The Strategy enum API still drives the flow, and its reports now
    // carry the transform id the bench schema records.
    let flow = clustered_flow();
    let report = flow.run(Strategy::EmptyRowInsertion { rows: 6 }).unwrap();
    assert_eq!(report.strategy, Strategy::EmptyRowInsertion { rows: 6 });
    assert_eq!(report.transform_id, "eri:6");
    assert_eq!(report.strategy.to_string(), "eri(6 rows)");
    // Round-trip through the serialization facade.
    let transform = TransformRegistry::parse(&report.transform_id).unwrap();
    assert_eq!(transform.as_strategy(), Some(report.strategy));
}
