//! Property tests for the flow's thermal-solve reuse ([`Flow::run`]
//! must match [`Flow::run_reference`] to within solver tolerance across
//! strategies and mesh resolutions) and for the strategy-transform
//! engine (surrogate ranking must agree with exact ranking within the
//! trust margin; every registered transform id must round-trip through
//! the parser).

use arithgen::UnitRole;
use postplace::{
    CandidateEvaluator, Flow, FlowConfig, OptimizeConfig, Strategy, TransformRegistry, WorkloadSpec,
};
use proptest::prelude::*;
use thermalsim::ThermalConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn cached_runs_match_reference_runs(
        n in 8usize..13,
        pick in 0usize..3,
        overhead in 0.08f64..0.3,
        rows in 2usize..10,
    ) {
        let mut config = FlowConfig::scattered_small().fast();
        config.thermal = ThermalConfig::with_resolution(n, n);
        let flow = Flow::new(config).unwrap();
        let strategy = match pick {
            0 => Strategy::UniformSlack { area_overhead: overhead },
            1 => Strategy::EmptyRowInsertion { rows },
            _ => Strategy::HotspotWrapper { area_overhead: overhead },
        };
        let cached = flow.run(strategy).unwrap();
        let reference = flow.run_reference(strategy).unwrap();
        prop_assert!(
            (cached.before.peak_c - reference.before.peak_c).abs() < 1e-5,
            "baseline peak: cached {} vs reference {}",
            cached.before.peak_c,
            reference.before.peak_c
        );
        prop_assert!(
            (cached.after.peak_c - reference.after.peak_c).abs() < 1e-5,
            "{strategy} peak: cached {} vs reference {}",
            cached.after.peak_c,
            reference.after.peak_c
        );
        prop_assert!((cached.after.gradient - reference.after.gradient).abs() < 1e-5);
        prop_assert!((cached.reduction_pct() - reference.reduction_pct()).abs() < 1e-4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The screening surrogate's candidate ranking must agree with the
    /// exact ranking at the top: the surrogate's top-1 pick, verified
    /// exactly, comes within the trust margin of the true exact best —
    /// that is precisely the guarantee the screen-then-verify loops
    /// (`best_strategy_within_budget`, `pareto_frontier`) lean on when
    /// they stop spending exact runs early.
    #[test]
    fn surrogate_top1_tracks_exact_top1_within_the_trust_margin(
        n in 10usize..15,
        workload_pick in 0usize..4,
        budget in 0.10f64..0.26,
    ) {
        let workload = match workload_pick {
            0 => WorkloadSpec::clustered_hotspot(),
            1 => WorkloadSpec::checkerboard(),
            2 => WorkloadSpec {
                active: vec![UnitRole::BoothMult],
                toggle_probability: 0.6,
            },
            _ => WorkloadSpec {
                active: vec![UnitRole::RippleAdder, UnitRole::Alu, UnitRole::Mac],
                toggle_probability: 0.5,
            },
        };
        let mut config = FlowConfig::with_workload(workload).fast();
        config.thermal = ThermalConfig::with_resolution(n, n);
        let flow = Flow::new(config).unwrap();
        let evaluator = flow.delta_evaluator().unwrap();
        let registry = TransformRegistry::standard();
        let margin = OptimizeConfig::default().screen_margin_pct;

        // Screen and exact-evaluate every applicable candidate at this
        // budget; candidates the workload cannot realize are skipped on
        // both sides.
        let mut pairs: Vec<(String, f64, f64)> = Vec::new();
        for factory in registry.factories() {
            let Ok(transform) = factory.at_budget(&flow, budget) else { continue };
            let Ok(delta) = transform.power_delta(&flow) else { continue };
            let estimate = evaluator.evaluate(&delta).unwrap().reduction_pct;
            let Ok(report) = flow.run_transform(transform.as_ref()) else { continue };
            pairs.push((transform.id(), estimate, report.reduction_pct()));
        }
        prop_assert!(pairs.len() >= 3, "too few applicable candidates");
        let surrogate_top = pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let exact_top = pairs
            .iter()
            .max_by(|a, b| a.2.total_cmp(&b.2))
            .unwrap();
        prop_assert!(
            surrogate_top.2 >= exact_top.2 - margin,
            "surrogate picked {} ({:.2}% exact) but {} reaches {:.2}% — \
             outside the {margin:.1}pp trust margin",
            surrogate_top.0,
            surrogate_top.2,
            exact_top.0,
            exact_top.2,
        );
    }
}

#[test]
fn every_registered_transform_id_round_trips() {
    // The serde facade: for every registered family at several budgets
    // (composites included), the stable id parses back to a transform
    // with the identical id, kind and surrogate behavior.
    let flow = Flow::new(FlowConfig::scattered_small().fast()).unwrap();
    let registry = TransformRegistry::standard();
    let mut checked = 0usize;
    for factory in registry.factories() {
        for budget in [0.07, 0.16, 0.31] {
            let transform = factory.at_budget(&flow, budget).unwrap();
            let id = transform.id();
            let reparsed = TransformRegistry::parse(&id).unwrap();
            assert_eq!(reparsed.id(), id, "id must round-trip");
            assert_eq!(reparsed.kind(), transform.kind());
            assert_eq!(
                reparsed.as_strategy(),
                transform.as_strategy(),
                "{id}: facade must survive the round-trip"
            );
            let a = transform.power_delta(&flow).unwrap();
            let b = reparsed.power_delta(&flow).unwrap();
            assert_eq!(a, b, "{id}: surrogate must survive the round-trip");
            checked += 1;
        }
    }
    assert_eq!(checked, registry.len() * 3);
}
