//! Property tests for the flow's thermal-solve reuse: [`Flow::run`]
//! (factorized-model cache + memoized baseline) must match
//! [`Flow::run_reference`] (assemble-per-solve, the pre-engine path) to
//! within solver tolerance across strategies and mesh resolutions.

use postplace::{Flow, FlowConfig, Strategy};
use proptest::prelude::*;
use thermalsim::ThermalConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn cached_runs_match_reference_runs(
        n in 8usize..13,
        pick in 0usize..3,
        overhead in 0.08f64..0.3,
        rows in 2usize..10,
    ) {
        let mut config = FlowConfig::scattered_small().fast();
        config.thermal = ThermalConfig::with_resolution(n, n);
        let flow = Flow::new(config).unwrap();
        let strategy = match pick {
            0 => Strategy::UniformSlack { area_overhead: overhead },
            1 => Strategy::EmptyRowInsertion { rows },
            _ => Strategy::HotspotWrapper { area_overhead: overhead },
        };
        let cached = flow.run(strategy).unwrap();
        let reference = flow.run_reference(strategy).unwrap();
        prop_assert!(
            (cached.before.peak_c - reference.before.peak_c).abs() < 1e-5,
            "baseline peak: cached {} vs reference {}",
            cached.before.peak_c,
            reference.before.peak_c
        );
        prop_assert!(
            (cached.after.peak_c - reference.after.peak_c).abs() < 1e-5,
            "{strategy} peak: cached {} vs reference {}",
            cached.after.peak_c,
            reference.after.peak_c
        );
        prop_assert!((cached.after.gradient - reference.after.gradient).abs() < 1e-5);
        prop_assert!((cached.reduction_pct() - reference.reduction_pct()).abs() < 1e-4);
    }
}
