//! End-to-end flow tests on the fast (scaled-down) configuration.

use postplace::{classify_hotspots, detect_hotspots, Flow, FlowConfig, HotspotClass, Strategy};
use thermalsim::ThermalConfig;

/// Regression: `Strategy::HotspotWrapper` used to fail with "wrapped
/// region could not absorb its hot cells" at meshes ≥ 28×28 — fixed
/// detection thresholds let sliver hotspots through on fine meshes,
/// producing wrap regions a single row tall. Resolution-aware scaling
/// (`HotspotConfig::scaled_for_mesh`) must keep the wrapper working and
/// its reduction in family with the coarse-mesh result.
#[test]
fn hotspot_wrapper_survives_fine_meshes() {
    let mut reductions = Vec::new();
    for n in [28usize, 32] {
        let mut config = FlowConfig::scattered_small().fast();
        config.thermal = ThermalConfig::with_resolution(n, n);
        let flow = Flow::new(config).unwrap();
        let report = flow
            .run(Strategy::HotspotWrapper {
                area_overhead: 0.16,
            })
            .unwrap_or_else(|e| panic!("wrapper failed at {n}x{n}: {e}"));
        assert!(
            report.reduction_pct() > 5.0,
            "{n}x{n}: wrapper reduction collapsed to {:.2}%",
            report.reduction_pct()
        );
        reductions.push(report.reduction_pct());
    }
    assert!(
        (reductions[0] - reductions[1]).abs() < 3.0,
        "mesh refinement changed the wrapper physics: {reductions:?}"
    );
}

fn fast_scattered() -> Flow {
    Flow::new(FlowConfig::scattered_small().fast()).expect("flow builds")
}

fn fast_concentrated() -> Flow {
    Flow::new(FlowConfig::concentrated_large().fast()).expect("flow builds")
}

#[test]
fn baseline_is_reproducible() {
    let flow = fast_scattered();
    let (p1, t1) = flow.baseline_maps().unwrap();
    let (p2, t2) = flow.baseline_maps().unwrap();
    assert_eq!(p1, p2, "power map must be deterministic");
    assert_eq!(t1.grid(), t2.grid(), "thermal map must be deterministic");
}

#[test]
fn every_strategy_reduces_peak_temperature() {
    let flow = fast_scattered();
    let rows = (0.16 * flow.base_placement().floorplan.num_rows() as f64).round() as usize;
    for strategy in [
        Strategy::UniformSlack {
            area_overhead: 0.16,
        },
        Strategy::EmptyRowInsertion { rows },
        Strategy::HotspotWrapper {
            area_overhead: 0.16,
        },
    ] {
        let report = flow.run(strategy).unwrap();
        assert!(
            report.reduction_pct() > 0.0,
            "{strategy} should cool the die, got {:.2}%",
            report.reduction_pct()
        );
        assert!(
            report.area_overhead_pct > 0.0,
            "{strategy} should cost area"
        );
        assert!(
            report.timing_overhead_pct().abs() < 10.0,
            "{strategy} timing overhead {:.2}% is out of band",
            report.timing_overhead_pct()
        );
    }
}

#[test]
fn none_strategy_changes_nothing() {
    let flow = fast_scattered();
    let report = flow.run(Strategy::None).unwrap();
    assert!(report.reduction_pct().abs() < 1e-9);
    assert!(report.area_overhead_pct.abs() < 1e-9);
    assert!(report.timing_overhead_pct().abs() < 1e-9);
}

#[test]
fn transformations_preserve_total_power() {
    // The paper's premise: whitespace moves, power does not.
    let flow = fast_scattered();
    let rows = (0.2 * flow.base_placement().floorplan.num_rows() as f64).round() as usize;
    let base_power = flow.power().total_w();
    for strategy in [
        Strategy::UniformSlack { area_overhead: 0.2 },
        Strategy::EmptyRowInsertion { rows },
        Strategy::HotspotWrapper { area_overhead: 0.2 },
    ] {
        let report = flow.run(strategy).unwrap();
        assert!(
            (report.total_power_w - base_power).abs() < base_power * 1e-12,
            "{strategy}: power changed"
        );
    }
}

#[test]
fn scattered_workload_classifies_as_scattered() {
    let flow = fast_scattered();
    let (_, tmap) = flow.baseline_maps().unwrap();
    let hotspots = detect_hotspots(&tmap, &flow.config().hotspot);
    assert!(!hotspots.is_empty());
    // With the blob split across unit regions the pattern is scattered.
    let split = postplace::split_hotspots_by_regions(
        &tmap,
        &hotspots,
        &flow.base_placement().regions,
        flow.config().hotspot.min_bins,
    );
    assert!(split.len() >= 2, "expected several hotspot pieces");
    assert_eq!(
        classify_hotspots(&split, tmap.die()),
        HotspotClass::ScatteredSmall
    );
}

#[test]
fn concentrated_workload_produces_one_dominant_hotspot() {
    let flow = fast_concentrated();
    let (_, tmap) = flow.baseline_maps().unwrap();
    let hotspots = detect_hotspots(&tmap, &flow.config().hotspot);
    assert!(!hotspots.is_empty());
    let total: f64 = hotspots.iter().map(|h| h.area_um2).sum();
    assert!(
        hotspots[0].area_um2 / total > 0.5,
        "largest hotspot should dominate the hot area"
    );
}

#[test]
fn larger_overheads_reduce_more() {
    let flow = fast_scattered();
    let small = flow
        .run(Strategy::UniformSlack {
            area_overhead: 0.08,
        })
        .unwrap();
    let large = flow
        .run(Strategy::UniformSlack {
            area_overhead: 0.32,
        })
        .unwrap();
    assert!(large.reduction_pct() > small.reduction_pct());
}

#[test]
fn eri_beats_uniform_slack_at_matched_overhead() {
    // The paper's headline claim, on the fast configuration.
    let flow = fast_scattered();
    let rows0 = flow.base_placement().floorplan.num_rows();
    let rows = (0.16 * rows0 as f64).round() as usize;
    let eri = flow.run(Strategy::EmptyRowInsertion { rows }).unwrap();
    let def = flow
        .run(Strategy::UniformSlack {
            area_overhead: eri.area_overhead_pct / 100.0,
        })
        .unwrap();
    assert!(
        eri.reduction_pct() > def.reduction_pct() - 0.3,
        "ERI {:.2}% should not lose to Default {:.2}%",
        eri.reduction_pct(),
        def.reduction_pct()
    );
}

#[test]
fn leakage_feedback_raises_temperature_estimates() {
    let mut config = FlowConfig::scattered_small().fast();
    config.leakage_feedback_iters = 2;
    let with_feedback = Flow::new(config).unwrap();
    let without_feedback = fast_scattered();
    let (_, hot) = with_feedback.baseline_maps().unwrap();
    let (_, cold) = without_feedback.baseline_maps().unwrap();
    // Hot silicon leaks more, which heats it further: the feedback loop
    // must increase (or at worst match) the estimate.
    assert!(hot.peak_rise() >= cold.peak_rise() - 1e-9);
}

#[test]
fn gradient_also_improves_for_eri() {
    let flow = fast_scattered();
    let rows = (0.2 * flow.base_placement().floorplan.num_rows() as f64).round() as usize;
    let eri = flow.run(Strategy::EmptyRowInsertion { rows }).unwrap();
    assert!(
        eri.gradient_reduction_pct() > -20.0,
        "gradient should not explode: {:.1}%",
        eri.gradient_reduction_pct()
    );
}
