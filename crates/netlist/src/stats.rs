use std::collections::BTreeMap;

use crate::{Netlist, UnitId};

/// Per-unit summary used by floorplanning and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitStats {
    /// The unit described.
    pub unit: UnitId,
    /// The unit's name.
    pub name: String,
    /// Cell instances in the unit.
    pub cell_count: usize,
    /// Total standard-cell area in µm².
    pub cell_area_um2: f64,
    /// Sequential (flip-flop) instances in the unit.
    pub sequential_count: usize,
}

/// Whole-design summary statistics.
///
/// # Examples
///
/// ```
/// use netlist::{NetlistBuilder, NetlistStats};
/// use stdcell::{CellFunction, Drive, Library};
///
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t", Library::c65());
/// let u = b.add_unit("u");
/// let a = b.input_port("a", u);
/// let y = b.net("y");
/// b.cell(u, CellFunction::Inv, Drive::X1, &[a], &[y])?;
/// let stats = NetlistStats::of(&b.finish()?);
/// assert_eq!(stats.cell_count, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Total cell instances.
    pub cell_count: usize,
    /// Total nets.
    pub net_count: usize,
    /// Total pins.
    pub pin_count: usize,
    /// Sequential instances.
    pub sequential_count: usize,
    /// Total standard-cell area in µm².
    pub cell_area_um2: f64,
    /// Instance counts keyed by master name, sorted for stable reporting.
    pub by_master: BTreeMap<String, usize>,
    /// Per-unit breakdowns, in unit id order.
    pub units: Vec<UnitStats>,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        let lib = netlist.library();
        let mut by_master = BTreeMap::new();
        let mut sequential_count = 0;
        let mut units: Vec<UnitStats> = netlist
            .units()
            .map(|(id, u)| UnitStats {
                unit: id,
                name: u.name().to_string(),
                cell_count: 0,
                cell_area_um2: 0.0,
                sequential_count: 0,
            })
            .collect();
        for (_, cell) in netlist.cells() {
            let def = lib.cell(cell.master());
            *by_master.entry(def.name().to_string()).or_insert(0) += 1;
            let ustats = &mut units[cell.unit().index()];
            ustats.cell_count += 1;
            ustats.cell_area_um2 += lib.cell_area_um2(cell.master());
            if def.function().is_sequential() {
                sequential_count += 1;
                ustats.sequential_count += 1;
            }
        }
        NetlistStats {
            cell_count: netlist.cell_count(),
            net_count: netlist.net_count(),
            pin_count: netlist.pins.len(),
            sequential_count,
            cell_area_um2: netlist.total_cell_area_um2(),
            by_master,
            units,
        }
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cells={} nets={} pins={} seq={} area={:.1}um2",
            self.cell_count,
            self.net_count,
            self.pin_count,
            self.sequential_count,
            self.cell_area_um2
        )?;
        for u in &self.units {
            writeln!(
                f,
                "  {}: {} cells, {:.1} um2, {} ffs",
                u.name, u.cell_count, u.cell_area_um2, u.sequential_count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;
    use stdcell::{CellFunction, Drive, Library};

    #[test]
    fn per_unit_accounting_sums_to_total() {
        let mut b = NetlistBuilder::new("two_units", Library::c65());
        let u0 = b.add_unit("u0");
        let u1 = b.add_unit("u1");
        let a = b.input_port("a", u0);
        let n0 = b.net("n0");
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        b.cell(u0, CellFunction::Inv, Drive::X1, &[a], &[n0])
            .unwrap();
        b.cell(u0, CellFunction::Dff, Drive::X1, &[n0], &[n1])
            .unwrap();
        b.cell(u1, CellFunction::Buf, Drive::X2, &[n1], &[n2])
            .unwrap();
        let nl = b.finish().unwrap();
        let stats = NetlistStats::of(&nl);
        assert_eq!(stats.cell_count, 3);
        assert_eq!(stats.sequential_count, 1);
        let unit_total: usize = stats.units.iter().map(|u| u.cell_count).sum();
        assert_eq!(unit_total, stats.cell_count);
        let unit_area: f64 = stats.units.iter().map(|u| u.cell_area_um2).sum();
        assert!((unit_area - stats.cell_area_um2).abs() < 1e-9);
        assert_eq!(stats.units[0].sequential_count, 1);
        assert_eq!(stats.units[1].sequential_count, 0);
    }

    #[test]
    fn by_master_counts_instances() {
        let mut b = NetlistBuilder::new("m", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        for i in 0..3 {
            let n = b.net(format!("n{i}"));
            b.cell(u, CellFunction::Inv, Drive::X1, &[a], &[n]).unwrap();
        }
        let stats = NetlistStats::of(&b.finish().unwrap());
        assert_eq!(stats.by_master.get("IVLL_X1"), Some(&3));
    }
}
