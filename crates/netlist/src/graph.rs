//! Combinational-graph utilities: topological ordering and levelization.
//!
//! Flip-flop outputs act as graph sources and flip-flop inputs as sinks, so
//! a legal synchronous design always yields a valid order; a cycle not
//! broken by a register is a structural error.

use crate::{CellId, NetDriver, Netlist, NetlistError};

/// Computes a topological evaluation order of the **combinational** cells.
///
/// Sequential cells are excluded from the order (the simulator commits them
/// at clock edges); tie cells and cells fed only by ports/registers come
/// first.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] naming a cell on the cycle
/// when the combinational subgraph is cyclic.
pub fn topo_order(netlist: &Netlist) -> Result<Vec<CellId>, NetlistError> {
    let n = netlist.cell_count();
    // In-degree counts only combinational fan-in from other combinational cells.
    let mut indegree = vec![0u32; n];
    let mut is_comb = vec![false; n];
    for (id, cell) in netlist.cells() {
        let f = netlist.library().cell(cell.master()).function();
        is_comb[id.index()] = !f.is_sequential() && !f.is_physical_only();
    }
    for (id, cell) in netlist.cells() {
        if !is_comb[id.index()] {
            continue;
        }
        for &pin in cell.input_pins() {
            let net = netlist.pin(pin).net();
            if let NetDriver::Pin(dpin) = netlist.net(net).driver() {
                let driver_cell = netlist.pin(dpin).cell();
                if is_comb[driver_cell.index()] {
                    indegree[id.index()] += 1;
                }
            }
        }
    }
    let mut queue: Vec<CellId> = (0..n)
        .filter(|&i| is_comb[i] && indegree[i] == 0)
        .map(CellId::new)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let cell = queue[head];
        head += 1;
        order.push(cell);
        for &pin in netlist.cell(cell).output_pins() {
            let net = netlist.pin(pin).net();
            for &sink in netlist.net(net).sinks() {
                let sink_cell = netlist.pin(sink).cell();
                if is_comb[sink_cell.index()] {
                    indegree[sink_cell.index()] -= 1;
                    if indegree[sink_cell.index()] == 0 {
                        queue.push(sink_cell);
                    }
                }
            }
        }
    }
    let comb_count = is_comb.iter().filter(|&&c| c).count();
    if order.len() != comb_count {
        // Some combinational cell never reached in-degree 0 → cycle.
        let cell = (0..n)
            .find(|&i| is_comb[i] && indegree[i] > 0)
            .map(CellId::new)
            .expect("cycle implies a blocked cell");
        return Err(NetlistError::CombinationalCycle {
            cell,
            cell_name: netlist.cell(cell).name().to_string(),
        });
    }
    Ok(order)
}

/// Assigns each combinational cell its logic level: 1 + the maximum level
/// of its combinational fan-in (register/port-fed cells are level 0).
///
/// Useful for depth statistics and as a sanity check on generated units.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] when the combinational
/// subgraph is cyclic.
pub fn combinational_levels(netlist: &Netlist) -> Result<Vec<Option<u32>>, NetlistError> {
    let order = topo_order(netlist)?;
    let mut levels: Vec<Option<u32>> = vec![None; netlist.cell_count()];
    for cell in order {
        let mut level = 0;
        for &pin in netlist.cell(cell).input_pins() {
            let net = netlist.pin(pin).net();
            if let NetDriver::Pin(dpin) = netlist.net(net).driver() {
                let driver = netlist.pin(dpin).cell();
                if let Some(dl) = levels[driver.index()] {
                    level = level.max(dl + 1);
                }
            }
        }
        levels[cell.index()] = Some(level);
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;
    use stdcell::{CellFunction, Drive, Library};

    #[test]
    fn chain_orders_front_to_back() {
        let mut b = NetlistBuilder::new("chain", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        let c0 = b
            .cell(u, CellFunction::Inv, Drive::X1, &[a], &[n1])
            .unwrap();
        let c1 = b
            .cell(u, CellFunction::Inv, Drive::X1, &[n1], &[n2])
            .unwrap();
        let nl = b.finish().unwrap();
        let order = topo_order(&nl).unwrap();
        let p0 = order.iter().position(|&c| c == c0).unwrap();
        let p1 = order.iter().position(|&c| c == c1).unwrap();
        assert!(p0 < p1);
    }

    #[test]
    fn registers_break_cycles() {
        // inv -> dff -> inv -> (back to dff input via the first inv) is fine.
        let mut b = NetlistBuilder::new("loop", Library::c65());
        let u = b.add_unit("u");
        let q = b.net("q");
        let d = b.net("d");
        b.cell(u, CellFunction::Dff, Drive::X1, &[d], &[q]).unwrap();
        b.cell(u, CellFunction::Inv, Drive::X1, &[q], &[d]).unwrap();
        let nl = b.finish().expect("register breaks the loop");
        assert_eq!(topo_order(&nl).unwrap().len(), 1);
    }

    #[test]
    fn combinational_cycle_is_detected() {
        let mut b = NetlistBuilder::new("bad", Library::c65());
        let u = b.add_unit("u");
        let x = b.net("x");
        let y = b.net("y");
        b.cell(u, CellFunction::Inv, Drive::X1, &[x], &[y]).unwrap();
        b.cell(u, CellFunction::Inv, Drive::X1, &[y], &[x]).unwrap();
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn levels_increase_along_chain() {
        let mut b = NetlistBuilder::new("lv", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let b_in = b.input_port("b", u);
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        let c0 = b
            .cell(u, CellFunction::Nand2, Drive::X1, &[a, b_in], &[n1])
            .unwrap();
        let c1 = b
            .cell(u, CellFunction::Inv, Drive::X1, &[n1], &[n2])
            .unwrap();
        let nl = b.finish().unwrap();
        let levels = combinational_levels(&nl).unwrap();
        assert_eq!(levels[c0.index()], Some(0));
        assert_eq!(levels[c1.index()], Some(1));
    }
}
