//! Gate-level netlist database for the `coolplace` stack.
//!
//! A [`Netlist`] is the placed-flow's central artifact: cell instances bound
//! to [`stdcell::Library`] masters, nets with a single driver and arbitrary
//! sinks, primary ports grouped into **units** (the nine arithmetic blocks
//! of the paper's synthetic benchmark), and the connectivity graph used by
//! the logic simulator, power estimator, placer and timing analyzer.
//!
//! Netlists are constructed through [`NetlistBuilder`], which performs
//! structural validation on [`NetlistBuilder::finish`]: single driver per
//! net, no floating inputs, and no combinational cycles.
//!
//! # Examples
//!
//! ```
//! use netlist::NetlistBuilder;
//! use stdcell::{CellFunction, Drive, Library};
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("tiny", Library::c65());
//! let unit = b.add_unit("u0");
//! let a = b.input_port("a", unit);
//! let y = b.net("y");
//! b.cell(unit, CellFunction::Inv, Drive::X1, &[a], &[y])?;
//! b.output_port("y", unit, y);
//! let nl = b.finish()?;
//! assert_eq!(nl.cell_count(), 1);
//! # Ok(())
//! # }
//! ```

mod builder;
mod database;
mod error;
mod graph;
mod stats;

pub use builder::NetlistBuilder;
pub use database::{
    CellId, CellInst, Net, NetDriver, NetId, Netlist, Pin, PinDir, PinId, Port, PortId, Unit,
    UnitId,
};
pub use error::NetlistError;
pub use graph::{combinational_levels, topo_order};
pub use stats::{NetlistStats, UnitStats};
