use stdcell::{CellFunction, Drive, Library};

use crate::database::{CellInst, Net, NetDriver, Pin, PinDir, Port, Unit};
use crate::{topo_order, CellId, NetId, Netlist, NetlistError, PinId, PortId, UnitId};

/// Incrementally constructs a validated [`Netlist`].
///
/// The builder enforces single-driver nets at connection time and performs
/// full validation (floating nets, combinational cycles) in
/// [`NetlistBuilder::finish`].
///
/// # Examples
///
/// ```
/// use netlist::NetlistBuilder;
/// use stdcell::{CellFunction, Drive, Library};
///
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("pair", Library::c65());
/// let u = b.add_unit("u");
/// let a = b.input_port("a", u);
/// let b_in = b.input_port("b", u);
/// let mid = b.net("mid");
/// let y = b.net("y");
/// b.cell(u, CellFunction::Nand2, Drive::X1, &[a, b_in], &[mid])?;
/// b.cell(u, CellFunction::Inv, Drive::X1, &[mid], &[y])?;
/// b.output_port("y", u, y);
/// let nl = b.finish()?;
/// assert_eq!(nl.net_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    library: Library,
    cells: Vec<CellInst>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    units: Vec<Unit>,
    input_ports: Vec<Port>,
    output_ports: Vec<Port>,
    auto_name_counter: u64,
}

impl NetlistBuilder {
    /// Creates an empty builder for a design mapped to `library`.
    pub fn new(name: impl Into<String>, library: Library) -> Self {
        NetlistBuilder {
            name: name.into(),
            library,
            cells: Vec::new(),
            nets: Vec::new(),
            pins: Vec::new(),
            units: Vec::new(),
            input_ports: Vec::new(),
            output_ports: Vec::new(),
            auto_name_counter: 0,
        }
    }

    /// The library the design is being mapped to.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Declares a new unit (hierarchical block).
    pub fn add_unit(&mut self, name: impl Into<String>) -> UnitId {
        let id = UnitId::new(self.units.len());
        self.units.push(Unit::new(name));
        id
    }

    /// Creates a named net.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId::new(self.nets.len());
        self.nets.push(Net::new(name));
        id
    }

    /// Creates an automatically named net (`_n<k>`).
    pub fn auto_net(&mut self) -> NetId {
        let n = self.auto_name_counter;
        self.auto_name_counter += 1;
        self.net(format!("_n{n}"))
    }

    /// Creates a bus of `width` automatically named nets, LSB first.
    pub fn bus(&mut self, prefix: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.net(format!("{prefix}[{i}]")))
            .collect()
    }

    /// Declares a primary input port for `unit`: creates the net, registers
    /// the port as its driver and returns the net.
    pub fn input_port(&mut self, name: impl Into<String>, unit: UnitId) -> NetId {
        let name = name.into();
        let net = self.net(format!("{name}__net"));
        let port = PortId::new(self.input_ports.len());
        self.input_ports.push(Port::new(name, net, unit));
        self.nets[net.index()].set_driver(NetDriver::Port(port));
        net
    }

    /// Declares a bus of `width` primary input ports, LSB first.
    pub fn input_bus(&mut self, prefix: &str, width: usize, unit: UnitId) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input_port(format!("{prefix}[{i}]"), unit))
            .collect()
    }

    /// Declares a primary output port observing `net`.
    pub fn output_port(&mut self, name: impl Into<String>, unit: UnitId, net: NetId) -> PortId {
        let port = PortId::new(self.output_ports.len());
        self.output_ports.push(Port::new(name, net, unit));
        port
    }

    /// Instantiates a cell of `function` at drive `drive`, picking the
    /// master from the library, with an auto-generated instance name.
    ///
    /// Inputs/outputs are given as nets in function slot order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MissingMaster`] if the library lacks the
    /// function/drive pair, [`NetlistError::ArityMismatch`] on wrong net
    /// counts, or [`NetlistError::MultipleDrivers`] when an output net is
    /// already driven.
    pub fn cell(
        &mut self,
        unit: UnitId,
        function: CellFunction,
        drive: Drive,
        inputs: &[NetId],
        outputs: &[NetId],
    ) -> Result<CellId, NetlistError> {
        let name = format!("{}_{}", function, self.cells.len());
        self.cell_named(name, unit, function, drive, inputs, outputs)
    }

    /// Like [`NetlistBuilder::cell`] but with an explicit instance name.
    ///
    /// # Errors
    ///
    /// Same as [`NetlistBuilder::cell`].
    pub fn cell_named(
        &mut self,
        name: impl Into<String>,
        unit: UnitId,
        function: CellFunction,
        drive: Drive,
        inputs: &[NetId],
        outputs: &[NetId],
    ) -> Result<CellId, NetlistError> {
        let master = self
            .library
            .cell_for(function, drive)
            .or_else(|| self.library.any_cell_for(function))
            .ok_or_else(|| NetlistError::MissingMaster {
                wanted: format!("{function} {drive}"),
            })?;
        if inputs.len() != function.input_count() || outputs.len() != function.output_count() {
            return Err(NetlistError::ArityMismatch {
                function: function.to_string(),
                expected: (function.input_count(), function.output_count()),
                got: (inputs.len(), outputs.len()),
            });
        }
        let cell_id = CellId::new(self.cells.len());
        let mut input_pins = Vec::with_capacity(inputs.len());
        for (slot, &net) in inputs.iter().enumerate() {
            let pin_id = PinId::new(self.pins.len());
            self.pins
                .push(Pin::new(cell_id, PinDir::Input, slot as u8, net));
            self.nets[net.index()].add_sink(pin_id);
            input_pins.push(pin_id);
        }
        let mut output_pins = Vec::with_capacity(outputs.len());
        for (slot, &net) in outputs.iter().enumerate() {
            let pin_id = PinId::new(self.pins.len());
            self.pins
                .push(Pin::new(cell_id, PinDir::Output, slot as u8, net));
            let net_entry = &mut self.nets[net.index()];
            if !matches!(net_entry.driver(), NetDriver::None) {
                return Err(NetlistError::MultipleDrivers {
                    net,
                    net_name: net_entry.name().to_string(),
                });
            }
            net_entry.set_driver(NetDriver::Pin(pin_id));
            output_pins.push(pin_id);
        }
        self.cells
            .push(CellInst::new(name, master, unit, input_pins, output_pins));
        Ok(cell_id)
    }

    /// Number of cells added so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FloatingNet`] for nets with sinks but no
    /// driver, or [`NetlistError::CombinationalCycle`] when the gate graph
    /// contains a loop not broken by a flip-flop.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        for (i, net) in self.nets.iter().enumerate() {
            if matches!(net.driver(), NetDriver::None) && !net.sinks().is_empty() {
                return Err(NetlistError::FloatingNet {
                    net: NetId::new(i),
                    net_name: net.name().to_string(),
                });
            }
        }
        let netlist = Netlist {
            name: self.name,
            library: self.library,
            cells: self.cells,
            nets: self.nets,
            pins: self.pins,
            units: self.units,
            input_ports: self.input_ports,
            output_ports: self.output_ports,
        };
        // Cycle check via topological sort of the combinational graph.
        topo_order(&netlist)?;
        Ok(netlist)
    }
}
