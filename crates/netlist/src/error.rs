use crate::{CellId, NetId};

/// Errors reported while building or validating a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A net already has a driver and a second one was connected.
    MultipleDrivers {
        /// The doubly-driven net.
        net: NetId,
        /// The net's name, for diagnostics.
        net_name: String,
    },
    /// A net has sinks but no driver (floating input).
    FloatingNet {
        /// The undriven net.
        net: NetId,
        /// The net's name, for diagnostics.
        net_name: String,
    },
    /// The combinational logic contains a cycle not broken by a register.
    CombinationalCycle {
        /// A cell on the cycle.
        cell: CellId,
        /// The cell's instance name, for diagnostics.
        cell_name: String,
    },
    /// A requested function/drive pair is missing from the library.
    MissingMaster {
        /// Human-readable description of the missing master.
        wanted: String,
    },
    /// Wrong number of input or output nets for a cell function.
    ArityMismatch {
        /// The function that was instantiated.
        function: String,
        /// How many inputs/outputs were expected.
        expected: (usize, usize),
        /// How many were provided.
        got: (usize, usize),
    },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net, net_name } => {
                write!(f, "net {net} ({net_name}) has multiple drivers")
            }
            NetlistError::FloatingNet { net, net_name } => {
                write!(f, "net {net} ({net_name}) has sinks but no driver")
            }
            NetlistError::CombinationalCycle { cell, cell_name } => {
                write!(f, "combinational cycle through cell {cell} ({cell_name})")
            }
            NetlistError::MissingMaster { wanted } => {
                write!(f, "library has no master for {wanted}")
            }
            NetlistError::ArityMismatch {
                function,
                expected,
                got,
            } => write!(
                f,
                "{function} expects {}/{} input/output nets, got {}/{}",
                expected.0, expected.1, got.0, got.1
            ),
        }
    }
}

impl std::error::Error for NetlistError {}
