use serde::{Deserialize, Serialize};
use stdcell::{LibCellId, Library};

geom::define_id!(
    /// Identifies a [`CellInst`] in a [`Netlist`].
    pub struct CellId
);
geom::define_id!(
    /// Identifies a [`Net`] in a [`Netlist`].
    pub struct NetId
);
geom::define_id!(
    /// Identifies a [`Pin`] in a [`Netlist`].
    pub struct PinId
);
geom::define_id!(
    /// Identifies a [`Unit`] (hierarchical block) in a [`Netlist`].
    pub struct UnitId
);
geom::define_id!(
    /// Identifies a primary [`Port`] in a [`Netlist`].
    pub struct PortId
);

/// Pin direction, from the cell's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinDir {
    /// The pin consumes a value from its net.
    Input,
    /// The pin drives its net.
    Output,
}

/// A hierarchical block of the design; the paper's benchmark has nine
/// (the arithmetic units whose workloads control hotspot position).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Unit {
    name: String,
}

impl Unit {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Unit { name: name.into() }
    }

    /// The unit's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A primary input or output of the design, owned by a unit so workloads
/// can drive or gate each unit independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    name: String,
    net: NetId,
    unit: UnitId,
}

impl Port {
    pub(crate) fn new(name: impl Into<String>, net: NetId, unit: UnitId) -> Self {
        Port {
            name: name.into(),
            net,
            unit,
        }
    }

    /// Port name, e.g. `mult16/a[3]`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net attached to this port.
    pub fn net(&self) -> NetId {
        self.net
    }

    /// The unit this port belongs to.
    pub fn unit(&self) -> UnitId {
        self.unit
    }
}

/// A pin: the attachment of a cell to a net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pin {
    cell: CellId,
    dir: PinDir,
    /// Which logical input/output of the cell function this pin is.
    slot: u8,
    net: NetId,
}

impl Pin {
    pub(crate) fn new(cell: CellId, dir: PinDir, slot: u8, net: NetId) -> Self {
        Pin {
            cell,
            dir,
            slot,
            net,
        }
    }

    /// The owning cell.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// The pin direction.
    pub fn dir(&self) -> PinDir {
        self.dir
    }

    /// The logical input/output index within the cell's function.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The attached net.
    pub fn net(&self) -> NetId {
        self.net
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetDriver {
    /// Driven by a cell output pin.
    Pin(PinId),
    /// Driven by a primary input port.
    Port(PortId),
    /// Not driven (only legal transiently during construction).
    None,
}

/// A net: one driver, any number of sink pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    name: String,
    driver: NetDriver,
    sinks: Vec<PinId>,
}

impl Net {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Net {
            name: name.into(),
            driver: NetDriver::None,
            sinks: Vec::new(),
        }
    }

    pub(crate) fn set_driver(&mut self, driver: NetDriver) {
        self.driver = driver;
    }

    pub(crate) fn add_sink(&mut self, pin: PinId) {
        self.sinks.push(pin);
    }

    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net's single driver.
    pub fn driver(&self) -> NetDriver {
        self.driver
    }

    /// Sink (input) pins on this net.
    pub fn sinks(&self) -> &[PinId] {
        &self.sinks
    }
}

/// A cell instance bound to a library master.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellInst {
    name: String,
    master: LibCellId,
    unit: UnitId,
    input_pins: Vec<PinId>,
    output_pins: Vec<PinId>,
}

impl CellInst {
    pub(crate) fn new(
        name: impl Into<String>,
        master: LibCellId,
        unit: UnitId,
        input_pins: Vec<PinId>,
        output_pins: Vec<PinId>,
    ) -> Self {
        CellInst {
            name: name.into(),
            master,
            unit,
            input_pins,
            output_pins,
        }
    }

    /// Instance name, e.g. `mult16/fa_3_7`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library master this instance is bound to.
    pub fn master(&self) -> LibCellId {
        self.master
    }

    /// The unit the instance belongs to.
    pub fn unit(&self) -> UnitId {
        self.unit
    }

    /// Input pins in function slot order.
    pub fn input_pins(&self) -> &[PinId] {
        &self.input_pins
    }

    /// Output pins in function slot order.
    pub fn output_pins(&self) -> &[PinId] {
        &self.output_pins
    }
}

/// The immutable, validated netlist database.
///
/// Construct through [`NetlistBuilder`](crate::NetlistBuilder); see the
/// crate docs for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) library: Library,
    pub(crate) cells: Vec<CellInst>,
    pub(crate) nets: Vec<Net>,
    pub(crate) pins: Vec<Pin>,
    pub(crate) units: Vec<Unit>,
    pub(crate) input_ports: Vec<Port>,
    pub(crate) output_ports: Vec<Port>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The standard-cell library the netlist is mapped to.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &CellInst {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The pin with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// The unit with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn unit(&self, id: UnitId) -> &Unit {
        &self.units[id.index()]
    }

    /// Looks up a unit by name.
    pub fn find_unit(&self, name: &str) -> Option<UnitId> {
        self.units
            .iter()
            .position(|u| u.name() == name)
            .map(UnitId::new)
    }

    /// Primary input ports.
    pub fn input_ports(&self) -> &[Port] {
        &self.input_ports
    }

    /// Primary output ports.
    pub fn output_ports(&self) -> &[Port] {
        &self.output_ports
    }

    /// Iterates over `(CellId, &CellInst)`.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &CellInst)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::new(i), c))
    }

    /// Iterates over `(NetId, &Net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::new(i), n))
    }

    /// Iterates over `(UnitId, &Unit)`.
    pub fn units(&self) -> impl Iterator<Item = (UnitId, &Unit)> {
        self.units
            .iter()
            .enumerate()
            .map(|(i, u)| (UnitId::new(i), u))
    }

    /// The cell ids belonging to `unit`.
    pub fn unit_cells(&self, unit: UnitId) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| c.unit() == unit)
            .map(|(id, _)| id)
            .collect()
    }

    /// The input ports belonging to `unit`.
    pub fn unit_input_ports(&self, unit: UnitId) -> Vec<PortId> {
        self.input_ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.unit() == unit)
            .map(|(i, _)| PortId::new(i))
            .collect()
    }

    /// Total standard-cell area in µm² (excluding any fillers, which are a
    /// placement artefact, not netlist content).
    pub fn total_cell_area_um2(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| self.library.cell_area_um2(c.master()))
            .sum()
    }

    /// The driving cell of a net, if driven by a cell.
    pub fn net_driver_cell(&self, net: NetId) -> Option<CellId> {
        match self.net(net).driver() {
            NetDriver::Pin(pin) => Some(self.pin(pin).cell()),
            _ => None,
        }
    }
}
