//! Property-based netlist invariants over randomly generated circuits.

use netlist::{NetDriver, NetlistBuilder};
use proptest::prelude::*;
use stdcell::{CellFunction, Drive, Library};

/// Builds a random DAG-shaped netlist: `n` gates, each consuming nets
/// chosen among the already-created ones (ports + previous outputs), so
/// the result is valid by construction.
fn random_netlist(gates: &[u8]) -> netlist::Netlist {
    let mut b = NetlistBuilder::new("prop", Library::c65());
    let u = b.add_unit("u");
    let mut nets = vec![
        b.input_port("a", u),
        b.input_port("b", u),
        b.input_port("c", u),
    ];
    for (i, &g) in gates.iter().enumerate() {
        let f = match g % 6 {
            0 => CellFunction::Inv,
            1 => CellFunction::Nand2,
            2 => CellFunction::Xor2,
            3 => CellFunction::Dff,
            4 => CellFunction::Mux2,
            _ => CellFunction::FullAdder,
        };
        let pick = |k: usize| nets[(g as usize + k * 7 + i) % nets.len()];
        let inputs: Vec<_> = (0..f.input_count()).map(pick).collect();
        let outputs: Vec<_> = (0..f.output_count()).map(|_| b.auto_net()).collect();
        b.cell(u, f, Drive::X1, &inputs, &outputs).unwrap();
        nets.extend(&outputs);
    }
    b.finish().expect("construction is valid by design")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_net_has_exactly_one_driver(gates in prop::collection::vec(any::<u8>(), 1..60)) {
        let nl = random_netlist(&gates);
        for (_, net) in nl.nets() {
            // Validation guarantees no floating driven nets.
            if !net.sinks().is_empty() {
                prop_assert!(!matches!(net.driver(), NetDriver::None));
            }
        }
    }

    #[test]
    fn topo_order_respects_dependencies(gates in prop::collection::vec(any::<u8>(), 1..60)) {
        let nl = random_netlist(&gates);
        let order = netlist::topo_order(&nl).unwrap();
        let mut position = vec![usize::MAX; nl.cell_count()];
        for (i, &c) in order.iter().enumerate() {
            position[c.index()] = i;
        }
        for &cell in &order {
            for &pin in nl.cell(cell).input_pins() {
                let net = nl.pin(pin).net();
                if let NetDriver::Pin(dpin) = nl.net(net).driver() {
                    let driver = nl.pin(dpin).cell();
                    let f = nl.library().cell(nl.cell(driver).master()).function();
                    if !f.is_sequential() {
                        prop_assert!(
                            position[driver.index()] < position[cell.index()],
                            "combinational driver must precede its sink"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stats_are_internally_consistent(gates in prop::collection::vec(any::<u8>(), 1..60)) {
        let nl = random_netlist(&gates);
        let stats = netlist::NetlistStats::of(&nl);
        prop_assert_eq!(stats.cell_count, nl.cell_count());
        let by_master_total: usize = stats.by_master.values().sum();
        prop_assert_eq!(by_master_total, stats.cell_count);
        prop_assert!(stats.cell_area_um2 > 0.0);
    }

    #[test]
    fn pin_connectivity_is_bidirectional(gates in prop::collection::vec(any::<u8>(), 1..40)) {
        let nl = random_netlist(&gates);
        // Every sink pin recorded on a net points back at that net.
        for (net_id, net) in nl.nets() {
            for &pin in net.sinks() {
                prop_assert_eq!(nl.pin(pin).net(), net_id);
            }
            if let NetDriver::Pin(dpin) = net.driver() {
                prop_assert_eq!(nl.pin(dpin).net(), net_id);
            }
        }
        // Every cell pin's net lists the pin.
        for (cell_id, cell) in nl.cells() {
            for &pin in cell.input_pins() {
                let net = nl.pin(pin).net();
                prop_assert!(nl.net(net).sinks().contains(&pin));
                prop_assert_eq!(nl.pin(pin).cell(), cell_id);
            }
        }
    }
}
