use serde::{Deserialize, Serialize};

/// Power-model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Clock frequency in Hz (the paper runs the benchmark at 1 GHz).
    pub clock_hz: f64,
    /// Wire capacitance per micron of HPWL, in fF/µm.
    pub wire_cap_ff_per_um: f64,
    /// Temperature increase that doubles leakage, in K.
    pub leakage_doubling_c: f64,
    /// Reference temperature for library leakage numbers, in °C.
    pub reference_temp_c: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            clock_hz: 1e9,
            wire_cap_ff_per_um: 0.2,
            leakage_doubling_c: 25.0,
            reference_temp_c: 25.0,
        }
    }
}

impl PowerConfig {
    /// Leakage multiplier at temperature `t_c` relative to the reference.
    ///
    /// # Examples
    ///
    /// ```
    /// let cfg = powerest::PowerConfig::default();
    /// let x = cfg.leakage_factor(50.0); // 25 K above reference
    /// assert!((x - 2.0).abs() < 1e-12);
    /// ```
    pub fn leakage_factor(&self, t_c: f64) -> f64 {
        2f64.powf((t_c - self.reference_temp_c) / self.leakage_doubling_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_factor_is_one_at_reference() {
        let cfg = PowerConfig::default();
        assert!((cfg.leakage_factor(25.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_factor_quadruples_after_two_doublings() {
        let cfg = PowerConfig::default();
        assert!((cfg.leakage_factor(75.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_factor_shrinks_below_reference() {
        let cfg = PowerConfig::default();
        assert!(cfg.leakage_factor(0.0) < 1.0);
    }
}
