//! Activity-based power estimation — the workspace's substitute for
//! Synopsys Power Compiler "based on annotated switching activity of
//! randomly generated test vectors".
//!
//! [`estimate_power`] combines, per cell:
//!
//! * **dynamic** power: for every output net,
//!   `α · f · (E_internal + ½ · C_load · V²)`, where `C_load` sums the
//!   fan-out pin capacitances and (when a placement is supplied) HPWL-based
//!   wire capacitance;
//! * **clock** power for sequential cells (internal clock-tree energy every
//!   cycle regardless of data activity);
//! * **leakage**, exponential in temperature (doubling every
//!   [`PowerConfig::leakage_doubling_c`] kelvin) — the paper's
//!   "positive feedback between leakage power and temperature".
//!
//! [`power_map`] then aggregates per-cell watts onto the thermal grid:
//!   "the power value in a thermal cell is the sum of power consumptions in
//!   all the standard cells that it covers."
//!
//! # Examples
//!
//! ```
//! use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
//! use logicsim::{Simulator, Workload};
//! use powerest::{estimate_power, PowerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = build_benchmark(&BenchmarkConfig::small())?;
//! let w = Workload::with_active_units(&nl, &[UnitRole::Alu.unit_id()], 0.4);
//! let mut sim = Simulator::new(&nl);
//! sim.run_workload(&w, 128, 1);
//! let report = estimate_power(&nl, &sim.activity(), None, None, &PowerConfig::default());
//! assert!(report.total_w() > 0.0);
//! # Ok(())
//! # }
//! ```

mod config;
mod density;
mod estimate;
mod report;

pub use config::PowerConfig;
pub use density::power_map;
pub use estimate::estimate_power;
pub use report::PowerReport;
