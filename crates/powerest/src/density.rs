use geom::Grid2d;
use netlist::Netlist;
use placement::{Floorplan, Placement};

use crate::PowerReport;

/// Aggregates per-cell power onto an `nx`×`ny` grid over the core — the
/// paper's standard-cell → thermal-cell power mapping, with area-weighted
/// splitting for cells that straddle bins.
///
/// The returned grid is in watts per bin and sums to the placed cells'
/// total power.
///
/// # Panics
///
/// Panics if the report does not cover the netlist.
pub fn power_map(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &Placement,
    report: &PowerReport,
    nx: usize,
    ny: usize,
) -> Grid2d<f64> {
    assert_eq!(report.cell_count(), netlist.cell_count());
    let mut grid = Grid2d::new(nx, ny, floorplan.core(), 0.0);
    for (id, _) in netlist.cells() {
        if let Some(rect) = placement.cell_rect(netlist, floorplan, id) {
            grid.splat(&rect, report.cell_w(id));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate_power, PowerConfig};
    use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
    use logicsim::{Simulator, Workload};
    use placement::{Placer, PlacerConfig};

    #[test]
    fn power_map_conserves_total_power() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let placed = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        let w = Workload::uniform(&nl, 0.4);
        let mut sim = Simulator::new(&nl);
        sim.run_workload(&w, 100, 2);
        let report = estimate_power(
            &nl,
            &sim.activity(),
            Some((&placed.floorplan, &placed.placement)),
            None,
            &PowerConfig::default(),
        );
        let map = power_map(&nl, &placed.floorplan, &placed.placement, &report, 20, 20);
        assert!(
            (map.sum() - report.total_w()).abs() < report.total_w() * 1e-9,
            "map {} vs report {}",
            map.sum(),
            report.total_w()
        );
    }

    #[test]
    fn active_unit_region_dominates_the_map() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let placed = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        let active = UnitRole::BoothMult.unit_id();
        let w = Workload::with_active_units(&nl, &[active], 0.5);
        let mut sim = Simulator::new(&nl);
        sim.run_workload(&w, 16, 3);
        sim.reset_activity();
        sim.run_workload(&w, 200, 4);
        let report = estimate_power(
            &nl,
            &sim.activity(),
            Some((&placed.floorplan, &placed.placement)),
            None,
            &PowerConfig::default(),
        );
        let map = power_map(&nl, &placed.floorplan, &placed.placement, &report, 20, 20);
        let ((px, py), _) = map.max_bin().unwrap();
        let peak_center = map.bin_rect(px, py).center();
        let region = placed.regions[active.index()];
        assert!(
            region
                .expand(placed.floorplan.row_height() * 2.0)
                .contains(peak_center),
            "power peak {peak_center} outside active region {region}"
        );
    }
}
