use netlist::{CellId, Netlist, UnitId};

use crate::PowerConfig;

/// Per-cell and aggregate power numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    per_cell_dynamic_w: Vec<f64>,
    per_cell_leakage_w: Vec<f64>,
}

impl PowerReport {
    pub(crate) fn new(per_cell_dynamic_w: Vec<f64>, per_cell_leakage_w: Vec<f64>) -> Self {
        debug_assert_eq!(per_cell_dynamic_w.len(), per_cell_leakage_w.len());
        PowerReport {
            per_cell_dynamic_w,
            per_cell_leakage_w,
        }
    }

    /// Total power of one cell in watts.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_w(&self, cell: CellId) -> f64 {
        self.per_cell_dynamic_w[cell.index()] + self.per_cell_leakage_w[cell.index()]
    }

    /// Dynamic (switching + clock) power of one cell in watts.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_dynamic_w(&self, cell: CellId) -> f64 {
        self.per_cell_dynamic_w[cell.index()]
    }

    /// Leakage power of one cell in watts.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_leakage_w(&self, cell: CellId) -> f64 {
        self.per_cell_leakage_w[cell.index()]
    }

    /// Total dynamic power in watts.
    pub fn total_dynamic_w(&self) -> f64 {
        self.per_cell_dynamic_w.iter().sum()
    }

    /// Total leakage power in watts.
    pub fn total_leakage_w(&self) -> f64 {
        self.per_cell_leakage_w.iter().sum()
    }

    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.total_dynamic_w() + self.total_leakage_w()
    }

    /// Total power of one unit in watts.
    pub fn unit_w(&self, netlist: &Netlist, unit: UnitId) -> f64 {
        netlist
            .cells()
            .filter(|(_, c)| c.unit() == unit)
            .map(|(id, _)| self.cell_w(id))
            .sum()
    }

    /// Number of cells covered.
    pub fn cell_count(&self) -> usize {
        self.per_cell_dynamic_w.len()
    }

    /// Returns a report with identical dynamic power but leakage re-derated
    /// at the given per-cell temperatures — the leakage–temperature
    /// feedback step, which must not touch the (activity-driven) dynamic
    /// component.
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match the netlist.
    pub fn with_leakage_at(
        &self,
        netlist: &Netlist,
        config: &PowerConfig,
        cell_temps_c: &[f64],
    ) -> PowerReport {
        assert_eq!(self.cell_count(), netlist.cell_count());
        assert_eq!(cell_temps_c.len(), netlist.cell_count());
        let lib = netlist.library();
        let leakage = netlist
            .cells()
            .map(|(id, c)| {
                lib.cell(c.master()).leakage_nw()
                    * 1e-9
                    * config.leakage_factor(cell_temps_c[id.index()])
            })
            .collect();
        PowerReport::new(self.per_cell_dynamic_w.clone(), leakage)
    }
}
