use logicsim::Activity;
use netlist::Netlist;
use placement::{net_hpwl, Floorplan, Placement};

use crate::{PowerConfig, PowerReport};

const FJ_TO_J: f64 = 1e-15;
const NW_TO_W: f64 = 1e-9;

/// Estimates per-cell power from annotated switching activity.
///
/// * `placed` — when given, net loads include HPWL-proportional wire
///   capacitance (post-layout power, as the paper's flow uses).
/// * `cell_temps_c` — when given (one value per cell), leakage is derated
///   exponentially per [`PowerConfig::leakage_factor`]; otherwise all
///   cells leak at the reference temperature.
///
/// # Panics
///
/// Panics if `activity` or `cell_temps_c` do not match the netlist's net
/// and cell counts.
pub fn estimate_power(
    netlist: &Netlist,
    activity: &Activity,
    placed: Option<(&Floorplan, &Placement)>,
    cell_temps_c: Option<&[f64]>,
    config: &PowerConfig,
) -> PowerReport {
    assert_eq!(
        activity.net_count(),
        netlist.net_count(),
        "activity does not cover this netlist"
    );
    if let Some(t) = cell_temps_c {
        assert_eq!(t.len(), netlist.cell_count(), "one temperature per cell");
    }
    let lib = netlist.library();
    let voltage = lib.voltage_v();
    let mut dynamic = vec![0.0f64; netlist.cell_count()];
    let mut leakage = vec![0.0f64; netlist.cell_count()];
    for (id, cell) in netlist.cells() {
        let def = lib.cell(cell.master());
        // Leakage with optional temperature derating.
        let factor = cell_temps_c
            .map(|t| config.leakage_factor(t[id.index()]))
            .unwrap_or(1.0);
        leakage[id.index()] = def.leakage_nw() * NW_TO_W * factor;
        // Clock power for sequential cells: internal energy every cycle.
        dynamic[id.index()] += def.clock_energy_fj() * FJ_TO_J * config.clock_hz;
        // Switching power per output net.
        for &pin in cell.output_pins() {
            let net = netlist.pin(pin).net();
            let alpha = activity.switching_activity(net);
            if alpha == 0.0 {
                continue;
            }
            // Fan-out pin capacitance.
            let mut c_load_ff = 0.0;
            for &sink in netlist.net(net).sinks() {
                let sink_cell = netlist.cell(netlist.pin(sink).cell());
                c_load_ff += lib.cell(sink_cell.master()).input_cap_ff();
            }
            // Wire capacitance from placement geometry.
            if let Some((fp, pl)) = placed {
                c_load_ff += net_hpwl(netlist, fp, pl, net) * config.wire_cap_ff_per_um;
            }
            let energy_j =
                (def.switching_energy_fj() + 0.5 * c_load_ff * voltage * voltage) * FJ_TO_J;
            dynamic[id.index()] += alpha * config.clock_hz * energy_j;
        }
    }
    PowerReport::new(dynamic, leakage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arithgen::{build_benchmark, BenchmarkConfig, UnitRole};
    use logicsim::{Simulator, Workload};
    use netlist::NetlistBuilder;
    use stdcell::{CellFunction, Drive, Library};

    /// INV driving two INV loads, 100% activity: hand-checked power.
    #[test]
    fn hand_computed_inverter_power() {
        let mut b = NetlistBuilder::new("t", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let y = b.net("y");
        let z0 = b.net("z0");
        let z1 = b.net("z1");
        b.cell(u, CellFunction::Inv, Drive::X1, &[a], &[y]).unwrap();
        b.cell(u, CellFunction::Inv, Drive::X1, &[y], &[z0])
            .unwrap();
        b.cell(u, CellFunction::Inv, Drive::X1, &[y], &[z1])
            .unwrap();
        let nl = b.finish().unwrap();
        // α = 1 on every net (input toggles each cycle).
        let toggles = vec![100u64; nl.net_count()];
        let activity = Activity::new(100, toggles);
        let report = estimate_power(&nl, &activity, None, None, &PowerConfig::default());
        // Driver: E_int 0.45 fJ + ½·(2×1.2 fF)·1V² = 0.45 + 1.2 = 1.65 fJ
        // at 1 GHz → 1.65 µW dynamic + 1.8 nW leakage.
        let driver = netlist::CellId::new(0);
        assert!((report.cell_dynamic_w(driver) - 1.65e-6).abs() < 1e-12);
        assert!((report.cell_leakage_w(driver) - 1.8e-9).abs() < 1e-15);
    }

    #[test]
    fn dynamic_power_scales_with_activity() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let run = |prob: f64| {
            let w = Workload::uniform(&nl, prob);
            let mut sim = Simulator::new(&nl);
            sim.run_workload(&w, 400, 9);
            let report = estimate_power(&nl, &sim.activity(), None, None, &PowerConfig::default());
            report.total_dynamic_w()
        };
        let low = run(0.1);
        let high = run(0.6);
        assert!(high > 1.5 * low, "high {high} vs low {low}");
    }

    #[test]
    fn idle_units_burn_only_clock_and_leakage() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let active = UnitRole::ArrayMult.unit_id();
        let w = Workload::with_active_units(&nl, &[active], 0.5);
        let mut sim = Simulator::new(&nl);
        sim.run_workload(&w, 16, 5);
        sim.reset_activity();
        sim.run_workload(&w, 200, 6);
        let report = estimate_power(&nl, &sim.activity(), None, None, &PowerConfig::default());
        let stats = netlist::NetlistStats::of(&nl);
        for u in &stats.units {
            if u.unit == active {
                continue;
            }
            // Expected idle power: clock energy of its FFs + leakage.
            let expected: f64 = nl
                .cells()
                .filter(|(_, c)| c.unit() == u.unit)
                .map(|(_, c)| {
                    let def = nl.library().cell(c.master());
                    def.clock_energy_fj() * 1e-15 * 1e9 + def.leakage_nw() * 1e-9
                })
                .sum();
            let got = report.unit_w(&nl, u.unit);
            assert!(
                (got - expected).abs() < expected * 1e-9,
                "{}: {got} vs {expected}",
                u.name
            );
        }
        assert!(
            report.unit_w(&nl, active) > 2.0 * report.unit_w(&nl, UnitRole::RippleAdder.unit_id())
        );
    }

    #[test]
    fn wire_capacitance_increases_power_when_placed() {
        use placement::{Placer, PlacerConfig};
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let placed = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        let w = Workload::uniform(&nl, 0.4);
        let mut sim = Simulator::new(&nl);
        sim.run_workload(&w, 200, 7);
        let act = sim.activity();
        let cfg = PowerConfig::default();
        let unplaced = estimate_power(&nl, &act, None, None, &cfg);
        let with_wires = estimate_power(
            &nl,
            &act,
            Some((&placed.floorplan, &placed.placement)),
            None,
            &cfg,
        );
        assert!(with_wires.total_dynamic_w() > unplaced.total_dynamic_w());
    }

    #[test]
    fn hot_cells_leak_more() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let activity = Activity::new(0, vec![0; nl.net_count()]);
        let cfg = PowerConfig::default();
        let cold = vec![25.0; nl.cell_count()];
        let hot = vec![50.0; nl.cell_count()];
        let cold_report = estimate_power(&nl, &activity, None, Some(&cold), &cfg);
        let hot_report = estimate_power(&nl, &activity, None, Some(&hot), &cfg);
        let ratio = hot_report.total_leakage_w() / cold_report.total_leakage_w();
        assert!(
            (ratio - 2.0).abs() < 1e-9,
            "25 K above reference doubles leakage"
        );
    }

    #[test]
    fn benchmark_total_power_is_in_the_milliwatt_range() {
        // Sanity for the thermal calibration: the full benchmark under a
        // scattered workload lands at a few mW.
        let nl = build_benchmark(&BenchmarkConfig::paper()).unwrap();
        let w = Workload::uniform(&nl, 0.3);
        let mut sim = Simulator::new(&nl);
        sim.run_workload(&w, 64, 11);
        let report = estimate_power(&nl, &sim.activity(), None, None, &PowerConfig::default());
        let mw = report.total_w() * 1e3;
        assert!((0.5..50.0).contains(&mw), "total power {mw} mW");
    }
}
