//! Property-based placement invariants: the placer must produce legal,
//! fully-covered placements at any feasible utilization, and the ERI row
//! remapping must preserve legality.

use arithgen::{build_benchmark, BenchmarkConfig};
use placement::{fill_whitespace, validate, Placer, PlacerConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn placer_is_legal_at_any_feasible_utilization(u in 0.3f64..0.9) {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let result = Placer::new(PlacerConfig::with_utilization(u)).place(&nl).unwrap();
        prop_assert!(result.placement.is_fully_placed(&nl));
        prop_assert!(validate(&nl, &result.floorplan, &result.placement).is_empty());
        let achieved = result.floorplan.utilization(nl.total_cell_area_um2());
        prop_assert!((achieved - u).abs() < 0.05, "target {u}, achieved {achieved}");
    }

    #[test]
    fn row_insertion_preserves_legality(
        u in 0.4f64..0.8,
        positions in prop::collection::vec(0usize..40, 1..12),
    ) {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let result = Placer::new(PlacerConfig::with_utilization(u)).place(&nl).unwrap();
        let n_rows = result.floorplan.num_rows();
        let positions: Vec<usize> = positions.iter().map(|&p| p % (n_rows + 1)).collect();
        let (fp2, mapping) = result.floorplan.with_rows_inserted(&positions);
        let mut pl2 = result.placement.remap_rows(&fp2, &mapping);
        fill_whitespace(&nl, &fp2, &mut pl2).unwrap();
        prop_assert!(validate(&nl, &fp2, &pl2).is_empty());
        // Area grows by exactly one pitch per inserted row.
        let dh = fp2.core().height() - result.floorplan.core().height();
        prop_assert!((dh - positions.len() as f64 * fp2.row_height()).abs() < 1e-9);
        // The cell set is untouched.
        for (id, _) in nl.cells() {
            prop_assert!(pl2.location(id).is_some());
        }
    }

    #[test]
    fn fillers_exactly_tile_the_whitespace(u in 0.35f64..0.85) {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let result = Placer::new(PlacerConfig::with_utilization(u)).place(&nl).unwrap();
        let lib = nl.library();
        let cell_sites: u64 = nl
            .cells()
            .map(|(_, c)| lib.cell(c.master()).width_sites() as u64)
            .sum();
        let filler_sites: u64 = result
            .placement
            .fillers()
            .iter()
            .map(|f| f.width_sites as u64)
            .sum();
        prop_assert_eq!(cell_sites + filler_sites, result.floorplan.total_sites());
    }
}
