//! Placement legality checks.

use netlist::{CellId, Netlist};

use crate::{Floorplan, Placement};

/// A single legality violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A netlist cell has no slot.
    Unplaced {
        /// The unplaced cell.
        cell: CellId,
    },
    /// A cell extends past its row's last site.
    OutsideRow {
        /// The offending cell.
        cell: CellId,
    },
    /// Two placed objects overlap.
    Overlap {
        /// Row index.
        row: u32,
        /// Site where the overlap starts.
        site: u32,
    },
    /// A site is covered by neither a cell nor a filler — the power rail
    /// continuity invariant is broken.
    UncoveredGap {
        /// Row index.
        row: u32,
        /// First uncovered site.
        site: u32,
        /// Gap width in sites.
        width: u32,
    },
}

/// Checks full placement legality: everything placed, inside rows,
/// non-overlapping, and every free site covered by fillers.
///
/// Returns all violations found (empty = legal).
pub fn validate(netlist: &Netlist, floorplan: &Floorplan, placement: &Placement) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (id, _) in netlist.cells() {
        if placement.location(id).is_none() {
            violations.push(Violation::Unplaced { cell: id });
        }
    }
    for row in 0..floorplan.num_rows() as u32 {
        let row_sites = floorplan.row(row as usize).num_sites;
        let mut spans: Vec<(u32, u32, Option<CellId>)> = placement
            .row_cells(row)
            .into_iter()
            .map(|(s, c, w)| (s, w, Some(c)))
            .collect();
        for f in placement.fillers().iter().filter(|f| f.row == row) {
            spans.push((f.site, f.width_sites, None));
        }
        spans.sort_unstable_by_key(|&(s, _, _)| s);
        let mut cursor = 0u32;
        for (s, w, cell) in spans {
            if s + w > row_sites {
                if let Some(c) = cell {
                    violations.push(Violation::OutsideRow { cell: c });
                }
            }
            if s < cursor {
                violations.push(Violation::Overlap { row, site: s });
            } else if s > cursor {
                violations.push(Violation::UncoveredGap {
                    row,
                    site: cursor,
                    width: s - cursor,
                });
            }
            cursor = cursor.max(s + w);
        }
        if cursor < row_sites {
            violations.push(Violation::UncoveredGap {
                row,
                site: cursor,
                width: row_sites - cursor,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill_whitespace;
    use netlist::NetlistBuilder;
    use stdcell::{CellFunction, Drive, Library};

    fn setup() -> (Netlist, Floorplan, Placement) {
        let mut b = NetlistBuilder::new("t", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let n0 = b.net("n0");
        b.cell(u, CellFunction::Inv, Drive::X1, &[a], &[n0])
            .unwrap();
        let nl = b.finish().unwrap();
        let fp = Floorplan::new(nl.library(), 15.0, 1);
        let p = Placement::new(&nl, &fp);
        (nl, fp, p)
    }

    #[test]
    fn unplaced_and_uncovered_are_reported() {
        let (nl, fp, p) = setup();
        let v = validate(&nl, &fp, &p);
        assert!(v.iter().any(|v| matches!(v, Violation::Unplaced { .. })));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::UncoveredGap { .. })));
    }

    #[test]
    fn complete_placement_is_clean() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 12);
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        assert!(validate(&nl, &fp, &p).is_empty());
    }

    #[test]
    fn missing_fillers_break_continuity() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 12);
        let v = validate(&nl, &fp, &p);
        // Gaps on both sides of the lone cell.
        let gaps = v
            .iter()
            .filter(|v| matches!(v, Violation::UncoveredGap { .. }))
            .count();
        assert_eq!(gaps, 2);
    }
}
