use geom::Rect;
use netlist::{CellId, Netlist};
use serde::{Deserialize, Serialize};

use crate::{assign_unit_regions, fill_whitespace, Floorplan, PlaceError, Placement};

/// Placer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// Target row-utilization factor ("total cell area divided by core
    /// area"). The paper's *Default* scheme lowers this to spread
    /// whitespace uniformly.
    pub utilization: f64,
    /// Fix the core width (µm) instead of deriving a square outline.
    pub fixed_core_width: Option<f64>,
    /// Fix the row count instead of deriving it from the aspect ratio.
    pub fixed_num_rows: Option<usize>,
    /// Reverse cell order on alternate rows (better row-to-row locality).
    pub serpentine: bool,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            utilization: 0.85,
            fixed_core_width: None,
            fixed_num_rows: None,
            serpentine: true,
        }
    }
}

impl PlacerConfig {
    /// Default configuration at a specific utilization.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]`.
    pub fn with_utilization(utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        PlacerConfig {
            utilization,
            ..Default::default()
        }
    }
}

/// The placer's output: floorplan, legal placement (fillers inserted) and
/// the per-unit regions used.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementResult {
    /// The sized floorplan.
    pub floorplan: Floorplan,
    /// The legal, filler-complete placement.
    pub placement: Placement,
    /// Region assigned to each unit, in unit-id order.
    pub regions: Vec<Rect>,
}

/// Region-constrained row placer.
///
/// Each unit receives a rectangular region (area-proportional slicing);
/// its cells are packed into the region's row segments in netlist order —
/// which the generators emit in bit order, so connected cells land next
/// to each other — with whitespace spread uniformly inside each row
/// segment. This mirrors what a commercial tool produces for a blocked
/// design: uniform cell density at the requested utilization.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct Placer {
    config: PlacerConfig,
}

impl Placer {
    /// Creates a placer.
    pub fn new(config: PlacerConfig) -> Self {
        Placer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Floorplans and places `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::RegionOverflow`] / [`PlaceError::CoreTooSmall`]
    /// when the utilization target leaves insufficient space.
    pub fn place(&self, netlist: &Netlist) -> Result<PlacementResult, PlaceError> {
        let lib = netlist.library();
        let cell_area = netlist.total_cell_area_um2();
        let mut floorplan = match (self.config.fixed_core_width, self.config.fixed_num_rows) {
            (Some(w), Some(r)) => Floorplan::new(lib, w, r),
            (Some(w), None) => {
                let h = cell_area / self.config.utilization / w;
                let rows = (h / lib.row_height_um()).ceil().max(1.0) as usize;
                Floorplan::new(lib, w, rows)
            }
            (None, Some(r)) => {
                let w = cell_area / self.config.utilization / (r as f64 * lib.row_height_um());
                Floorplan::new(lib, w, r)
            }
            (None, None) => Floorplan::for_cell_area(lib, cell_area, self.config.utilization),
        };
        // Tiny designs can derive a core narrower than their widest cell;
        // widen to keep every row usable (a min-width floorplan rule).
        let widest_um = netlist
            .cells()
            .map(|(_, c)| lib.cell_width_um(c.master()))
            .fold(0.0f64, f64::max);
        if self.config.fixed_core_width.is_none() && floorplan.core().width() < widest_um * 2.0 {
            let width = widest_um * 2.0;
            let rows = (cell_area / self.config.utilization / (width * lib.row_height_um()))
                .ceil()
                .max(1.0) as usize;
            floorplan = Floorplan::new(lib, width, rows);
        }
        let site_area = lib.site_width_um() * lib.row_height_um();
        let needed_sites = (cell_area / site_area).ceil() as u64;
        if needed_sites > floorplan.total_sites() {
            return Err(PlaceError::CoreTooSmall {
                needed_sites,
                capacity_sites: floorplan.total_sites(),
            });
        }
        let regions = assign_unit_regions(netlist, floorplan.core());
        let mut placement = Placement::new(netlist, &floorplan);
        for (unit, _) in netlist.units() {
            let cells = netlist.unit_cells(unit);
            place_unit_into_region(
                netlist,
                &floorplan,
                &mut placement,
                &cells,
                regions[unit.index()],
                self.config.serpentine,
            )
            .map_err(|e| match e {
                PlaceError::RegionOverflow {
                    needed_sites,
                    capacity_sites,
                    ..
                } => PlaceError::RegionOverflow {
                    unit: netlist.unit(unit).name().to_string(),
                    needed_sites,
                    capacity_sites,
                },
                other => other,
            })?;
        }
        fill_whitespace(netlist, &floorplan, &mut placement)?;
        Ok(PlacementResult {
            floorplan,
            placement,
            regions,
        })
    }
}

/// Spreads `cells` (in the given order) uniformly into `region`,
/// distributing whitespace evenly inside each row segment — the
/// re-spreading primitive of the paper's hotspot wrapper. The cells must
/// already be removed from the placement.
///
/// # Errors
///
/// Returns [`PlaceError::RegionOverflow`] when the cells do not fit.
pub fn spread_into_region(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &mut Placement,
    cells: &[CellId],
    region: Rect,
) -> Result<(), PlaceError> {
    place_unit_into_region(netlist, floorplan, placement, cells, region, true)
}

/// Row segments of `region`: `(row, site_lo, site_hi)` for every row whose
/// center lies inside the region's vertical span.
pub fn region_row_segments(floorplan: &Floorplan, region: Rect) -> Vec<(u32, u32, u32)> {
    let mut segments = Vec::new();
    for r in 0..floorplan.num_rows() {
        let row_rect = floorplan.row_rect(r);
        let cy = (row_rect.lly + row_rect.ury) / 2.0;
        if cy < region.lly || cy >= region.ury {
            continue;
        }
        let row = floorplan.row(r);
        let sw = floorplan.site_width();
        let lo = ((region.llx - row.origin_x) / sw).ceil().max(0.0) as u32;
        let hi_f = ((region.urx - row.origin_x) / sw).floor();
        let hi = (hi_f.max(0.0) as u32).min(row.num_sites);
        if hi > lo {
            segments.push((r as u32, lo, hi));
        }
    }
    segments
}

/// Packs `cells` (in order) into the region's row segments with uniform
/// whitespace distribution.
pub(crate) fn place_unit_into_region(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &mut Placement,
    cells: &[CellId],
    region: Rect,
    serpentine: bool,
) -> Result<(), PlaceError> {
    let lib = netlist.library();
    let widths: Vec<u32> = cells
        .iter()
        .map(|&c| lib.cell(netlist.cell(c).master()).width_sites())
        .collect();
    let needed: u64 = widths.iter().map(|&w| w as u64).sum();
    let segments = region_row_segments(floorplan, region);
    let capacity: u64 = segments.iter().map(|&(_, lo, hi)| (hi - lo) as u64).sum();
    if needed > capacity {
        return Err(PlaceError::RegionOverflow {
            unit: String::new(),
            needed_sites: needed,
            capacity_sites: capacity,
        });
    }
    let mut idx = 0usize; // next unplaced cell
    let mut placed_sites: u64 = 0;
    let mut seen_sites: u64 = 0;
    for (seg_no, &(row, lo, hi)) in segments.iter().enumerate() {
        if idx >= cells.len() {
            break;
        }
        let seg_sites = (hi - lo) as u64;
        seen_sites += seg_sites;
        // Proportional target: by the end of this segment we should have
        // placed `needed × seen/capacity` sites worth of cells.
        let target: u64 = if seg_no + 1 == segments.len() {
            needed
        } else {
            needed * seen_sites / capacity
        };
        let mut batch: Vec<usize> = Vec::new();
        let mut batch_width: u64 = 0;
        while idx < cells.len()
            && placed_sites + batch_width < target
            && batch_width + widths[idx] as u64 <= seg_sites
        {
            batch_width += widths[idx] as u64;
            batch.push(idx);
            idx += 1;
        }
        if batch.is_empty() {
            continue;
        }
        if serpentine && seg_no % 2 == 1 {
            batch.reverse();
        }
        // Uniform gaps before each cell; the row segment ends flush.
        let free = seg_sites - batch_width;
        let n = batch.len() as u64;
        let gap_each = free / n;
        let extra = free % n;
        let mut cursor = lo as u64;
        for (i, &ci) in batch.iter().enumerate() {
            cursor += gap_each + u64::from((i as u64) < extra);
            placement.place(netlist, floorplan, cells[ci], row, cursor as u32);
            cursor += widths[ci] as u64;
        }
        placed_sites += batch_width;
    }
    if idx < cells.len() {
        // Proportional batching under-filled (can happen when one cell is
        // wider than a segment's leftover): sweep again, first-fit.
        for &(row, lo, hi) in &segments {
            if idx >= cells.len() {
                break;
            }
            let mut site = lo;
            while idx < cells.len() && site + widths[idx] <= hi {
                if placement.fits(row, site, widths[idx]) {
                    placement.place(netlist, floorplan, cells[idx], row, site);
                    site += widths[idx];
                    idx += 1;
                } else {
                    site += 1;
                }
            }
        }
    }
    if idx < cells.len() {
        return Err(PlaceError::RegionOverflow {
            unit: String::new(),
            needed_sites: needed,
            capacity_sites: capacity,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arithgen::{build_benchmark, BenchmarkConfig};

    #[test]
    fn benchmark_places_fully_at_default_utilization() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let result = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        assert!(result.placement.is_fully_placed(&nl));
        assert!(crate::validate(&nl, &result.floorplan, &result.placement).is_empty());
    }

    #[test]
    fn cells_land_in_their_unit_region() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let result = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        let mut misplaced = 0;
        for (id, cell) in nl.cells() {
            let region = result.regions[cell.unit().index()];
            let center = result
                .placement
                .cell_center(&nl, &result.floorplan, id)
                .unwrap();
            // Row quantization can push boundary cells slightly out.
            if !region
                .expand(result.floorplan.row_height())
                .contains(center)
            {
                misplaced += 1;
            }
        }
        assert_eq!(misplaced, 0, "{misplaced} cells far outside their region");
    }

    #[test]
    fn lower_utilization_grows_the_core() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let tight = Placer::new(PlacerConfig::with_utilization(0.9))
            .place(&nl)
            .unwrap();
        let loose = Placer::new(PlacerConfig::with_utilization(0.6))
            .place(&nl)
            .unwrap();
        assert!(loose.floorplan.core().area() > tight.floorplan.core().area() * 1.4);
    }

    #[test]
    fn utilization_one_is_infeasible_or_tight() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        // At u = 1.0 there is zero slack; region quantization makes this
        // either barely succeed or overflow — both acceptable, never panic.
        match Placer::new(PlacerConfig::with_utilization(1.0)).place(&nl) {
            Ok(r) => assert!(r.placement.is_fully_placed(&nl)),
            Err(e) => assert!(matches!(
                e,
                PlaceError::RegionOverflow { .. } | PlaceError::CoreTooSmall { .. }
            )),
        }
    }

    #[test]
    fn fixed_outline_is_respected() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let cfg = PlacerConfig {
            fixed_core_width: Some(335.0),
            utilization: 0.7,
            ..Default::default()
        };
        let result = Placer::new(cfg).place(&nl).unwrap();
        assert!((result.floorplan.core().width() - 334.8).abs() < 0.5);
    }
}
