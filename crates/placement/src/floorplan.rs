use geom::{Rect, Um};
use serde::{Deserialize, Serialize};
use stdcell::Library;

/// One layout row: a horizontal strip of placement sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Bottom edge of the row in microns.
    pub y: Um,
    /// Left edge of the first site in microns.
    pub origin_x: Um,
    /// Number of placement sites.
    pub num_sites: u32,
}

/// The core outline and its layout rows.
///
/// All rows share the library's row height and site width; rows stack
/// bottom-up with no gaps (row `r` spans `y = r · pitch`). The paper's
/// empty-row-insertion technique grows this structure vertically — see
/// [`Floorplan::with_rows_inserted`].
///
/// # Examples
///
/// ```
/// use placement::Floorplan;
/// use stdcell::Library;
///
/// let lib = Library::c65();
/// let fp = Floorplan::new(&lib, 100.0, 10);
/// assert_eq!(fp.num_rows(), 10);
/// assert!((fp.core().height() - 27.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    core: Rect,
    row_height: Um,
    site_width: Um,
    rows: Vec<Row>,
}

impl Floorplan {
    /// Creates a floorplan of `num_rows` full-width rows over a core of
    /// the given width, using the library's row/site geometry.
    ///
    /// # Panics
    ///
    /// Panics if `core_width` is not positive or `num_rows` is zero.
    pub fn new(library: &Library, core_width: Um, num_rows: usize) -> Self {
        assert!(core_width > 0.0, "core width must be positive");
        assert!(num_rows > 0, "need at least one row");
        let site_width = library.site_width_um();
        let row_height = library.row_height_um();
        let sites = (core_width / site_width).floor() as u32;
        assert!(sites > 0, "core width below one site");
        let width = sites as f64 * site_width;
        let rows = (0..num_rows)
            .map(|r| Row {
                y: r as f64 * row_height,
                origin_x: 0.0,
                num_sites: sites,
            })
            .collect();
        Floorplan {
            core: Rect::new(0.0, 0.0, width, num_rows as f64 * row_height),
            row_height,
            site_width,
            rows,
        }
    }

    /// Sizes a roughly square floorplan for `cell_area_um2` of standard
    /// cells at the given row-utilization factor ("total cell area divided
    /// by core area", as the paper defines it).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]` or the area is not
    /// positive.
    pub fn for_cell_area(library: &Library, cell_area_um2: f64, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        assert!(cell_area_um2 > 0.0, "cell area must be positive");
        let core_area = cell_area_um2 / utilization;
        let side = core_area.sqrt();
        let num_rows = (side / library.row_height_um()).round().max(1.0) as usize;
        // Recompute the width so the area target is met despite row
        // quantization.
        let width = core_area / (num_rows as f64 * library.row_height_um());
        Floorplan::new(library, width.max(library.site_width_um()), num_rows)
    }

    /// The core outline.
    pub fn core(&self) -> Rect {
        self.core
    }

    /// Row pitch (= row height) in microns.
    pub fn row_height(&self) -> Um {
        self.row_height
    }

    /// Site width in microns.
    pub fn site_width(&self) -> Um {
        self.site_width
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The row at index `r` (0 = bottom).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &Row {
        &self.rows[r]
    }

    /// All rows, bottom-up.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The x coordinate of the left edge of `site` in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range.
    pub fn site_x(&self, r: usize, site: u32) -> Um {
        self.rows[r].origin_x + site as f64 * self.site_width
    }

    /// The rectangle of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range.
    pub fn row_rect(&self, r: usize) -> Rect {
        let row = &self.rows[r];
        Rect::new(
            row.origin_x,
            row.y,
            row.origin_x + row.num_sites as f64 * self.site_width,
            row.y + self.row_height,
        )
    }

    /// The row index whose strip contains `y`, if inside the core.
    pub fn row_at(&self, y: Um) -> Option<usize> {
        if y < self.core.lly || y > self.core.ury {
            return None;
        }
        Some(((y / self.row_height) as usize).min(self.rows.len() - 1))
    }

    /// Total placement capacity in sites.
    pub fn total_sites(&self) -> u64 {
        self.rows.iter().map(|r| r.num_sites as u64).sum()
    }

    /// Achieved utilization for `cell_area_um2` of placed cells.
    pub fn utilization(&self, cell_area_um2: f64) -> f64 {
        cell_area_um2 / self.core.area()
    }

    /// Returns a taller floorplan with *empty* rows inserted **below** the
    /// given (current) row indices; a row index may repeat to insert
    /// several empty rows at the same place. Returns the new floorplan
    /// together with the mapping `old row index → new row index`.
    ///
    /// This is the geometric half of the paper's empty-row-insertion
    /// technique: "we can easily move rows of cells upward by an offset of
    /// a few rows depending on how many empty rows have already been
    /// inserted." The die outline grows by `positions.len()` row pitches,
    /// as in Table I (335×389 µm² for 20 rows on a 335×335 µm² base).
    ///
    /// # Panics
    ///
    /// Panics if any position exceeds `num_rows()` (inserting at
    /// `num_rows()` appends above the top row).
    pub fn with_rows_inserted(&self, positions: &[usize]) -> (Floorplan, Vec<usize>) {
        let n = self.rows.len();
        let mut shift = vec![0usize; n];
        for &p in positions {
            assert!(p <= n, "insertion position out of range");
            for (r, s) in shift.iter_mut().enumerate() {
                if r >= p {
                    *s += 1;
                }
            }
        }
        let new_count = n + positions.len();
        let sites = self.rows[0].num_sites;
        let origin_x = self.rows[0].origin_x;
        let rows: Vec<Row> = (0..new_count)
            .map(|r| Row {
                y: r as f64 * self.row_height,
                origin_x,
                num_sites: sites,
            })
            .collect();
        let mapping: Vec<usize> = (0..n).map(|r| r + shift[r]).collect();
        let fp = Floorplan {
            core: Rect::new(
                self.core.llx,
                self.core.lly,
                self.core.urx,
                self.core.lly + new_count as f64 * self.row_height,
            ),
            row_height: self.row_height,
            site_width: self.site_width,
            rows,
        };
        (fp, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::c65()
    }

    #[test]
    fn for_cell_area_hits_target_utilization() {
        let lib = lib();
        let fp = Floorplan::for_cell_area(&lib, 100_000.0, 0.8);
        let u = fp.utilization(100_000.0);
        assert!((u - 0.8).abs() < 0.02, "got utilization {u}");
        // Roughly square.
        let ar = fp.core().height() / fp.core().width();
        assert!((0.8..1.25).contains(&ar), "aspect {ar}");
    }

    #[test]
    fn rows_tile_the_core() {
        let fp = Floorplan::new(&lib(), 90.0, 12);
        let mut area = 0.0;
        for r in 0..fp.num_rows() {
            area += fp.row_rect(r).area();
        }
        assert!((area - fp.core().area()).abs() < 1e-6);
    }

    #[test]
    fn row_at_maps_coordinates() {
        let fp = Floorplan::new(&lib(), 90.0, 12);
        assert_eq!(fp.row_at(0.0), Some(0));
        assert_eq!(fp.row_at(2.8), Some(1));
        assert_eq!(fp.row_at(fp.core().ury), Some(11));
        assert_eq!(fp.row_at(-1.0), None);
    }

    #[test]
    fn row_insertion_shifts_upper_rows() {
        let fp = Floorplan::new(&lib(), 90.0, 10);
        let (grown, mapping) = fp.with_rows_inserted(&[4, 4, 8]);
        assert_eq!(grown.num_rows(), 13);
        // Rows below the first insertion keep their index.
        assert_eq!(mapping[0], 0);
        assert_eq!(mapping[3], 3);
        // Rows 4..7 shift by 2, rows 8+ by 3.
        assert_eq!(mapping[4], 6);
        assert_eq!(mapping[7], 9);
        assert_eq!(mapping[8], 11);
        assert_eq!(mapping[9], 12);
        // Outline grows by exactly 3 pitches (Table I geometry).
        let dh = grown.core().height() - fp.core().height();
        assert!((dh - 3.0 * fp.row_height()).abs() < 1e-9);
        assert!((grown.core().width() - fp.core().width()).abs() < 1e-9);
    }

    #[test]
    fn table1_area_overheads_reproduce() {
        // Base ~335 µm tall: 124 rows × 2.7 µm = 334.8 µm.
        let fp = Floorplan::new(&lib(), 335.0, 124);
        let (eri20, _) = fp.with_rows_inserted(&[60; 20]);
        let overhead20 = eri20.core().area() / fp.core().area() - 1.0;
        assert!((overhead20 - 0.161).abs() < 0.005, "got {overhead20}");
        let (eri40, _) = fp.with_rows_inserted(&[60; 40]);
        let overhead40 = eri40.core().area() / fp.core().area() - 1.0;
        assert!((overhead40 - 0.322).abs() < 0.005, "got {overhead40}");
    }
}
