//! Whitespace filling with dummy cells.
//!
//! The paper: "the available area overhead is filled with dummy cells
//! which do not contain active transistors and consume zero power. They
//! can guarantee the electrical continuity of power and ground rails in
//! each layout row." Filling every gap completely is therefore a hard
//! invariant, checked by [`crate::validate`].

use netlist::Netlist;

use crate::{FillerInst, Floorplan, PlaceError, Placement};

/// Tiles every free gap of every row with filler cells (greedy, widest
/// first). Replaces the placement's existing filler list.
///
/// # Errors
///
/// Returns [`PlaceError::UnfillableGap`] if a gap cannot be tiled — which
/// cannot happen with the `c65` library's 1-site filler.
pub fn fill_whitespace(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &mut Placement,
) -> Result<(), PlaceError> {
    let lib = netlist.library();
    let masters = lib.fillers();
    let mut fillers = Vec::new();
    for row in 0..floorplan.num_rows() as u32 {
        for (start, width) in placement.row_gaps(floorplan, row) {
            let mut site = start;
            let mut remaining = width;
            while remaining > 0 {
                let master = masters
                    .iter()
                    .copied()
                    .find(|&m| lib.cell(m).width_sites() <= remaining)
                    .ok_or(PlaceError::UnfillableGap {
                        row,
                        site,
                        width: remaining,
                    })?;
                let w = lib.cell(master).width_sites();
                fillers.push(FillerInst {
                    master,
                    row,
                    site,
                    width_sites: w,
                });
                site += w;
                remaining -= w;
            }
        }
    }
    placement.set_fillers(fillers);
    Ok(())
}

/// Splits `total_free` whitespace sites over weighted gap slots by
/// largest remainder: slot `j` receives `total_free · w[j] / Σw` sites,
/// rounded so the allocation sums exactly to `total_free`. The integer
/// half of temperature-driven whitespace shaping — callers derive the
/// weights (e.g. from a thermal profile) and re-pack the row with
/// [`respread_row`].
///
/// Non-finite or negative weights count as zero; if every weight is
/// zero the split is uniform.
pub fn weighted_row_gaps(total_free: u32, weights: &[f64]) -> Vec<u32> {
    if weights.is_empty() {
        return Vec::new();
    }
    let clean: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    let total: f64 = clean.iter().sum();
    let shares: Vec<f64> = if total > 0.0 {
        clean
            .iter()
            .map(|w| total_free as f64 * w / total)
            .collect()
    } else {
        vec![total_free as f64 / clean.len() as f64; clean.len()]
    };
    let mut gaps: Vec<u32> = shares.iter().map(|s| s.floor() as u32).collect();
    let assigned: u32 = gaps.iter().sum();
    // Hand the remainder to the largest fractional parts (ties by
    // position, for determinism).
    let mut order: Vec<usize> = (0..gaps.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &j in order.iter().take((total_free - assigned) as usize) {
        gaps[j] += 1;
    }
    gaps
}

/// Re-packs one row's cells left-to-right with the given gap widths
/// (`gaps[i]` sites of whitespace before the `i`-th cell, in site
/// order): the cells keep their row and relative order, only the
/// whitespace between them moves. Existing fillers are dropped — re-pour
/// with [`fill_whitespace`] after the last row.
///
/// # Panics
///
/// Panics if `gaps` is shorter than the row's cell count or the gaps
/// plus cell widths overflow the row.
pub fn respread_row(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &mut Placement,
    row: u32,
    gaps: &[u32],
) {
    let cells = placement.row_cells(row);
    assert!(
        gaps.len() >= cells.len(),
        "need one gap per cell: {} < {}",
        gaps.len(),
        cells.len()
    );
    for &(_, id, _) in &cells {
        placement.remove(id);
    }
    let mut cursor = 0u32;
    for (i, &(_, id, width)) in cells.iter().enumerate() {
        cursor += gaps[i];
        placement.place(netlist, floorplan, id, row, cursor);
        cursor += width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{CellId, NetlistBuilder};
    use stdcell::{CellFunction, Drive, Library};

    fn setup() -> (Netlist, Floorplan, Placement) {
        let mut b = NetlistBuilder::new("t", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let n0 = b.net("n0");
        let n1 = b.net("n1");
        b.cell(u, CellFunction::Inv, Drive::X1, &[a], &[n0])
            .unwrap();
        b.cell(u, CellFunction::Inv, Drive::X1, &[n0], &[n1])
            .unwrap();
        let nl = b.finish().unwrap();
        let fp = Floorplan::new(nl.library(), 30.0, 2); // 100 sites/row
        let p = Placement::new(&nl, &fp);
        (nl, fp, p)
    }

    #[test]
    fn fillers_cover_every_free_site() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 37);
        p.place(&nl, &fp, CellId::new(1), 1, 0);
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        let filler_sites: u32 = p.fillers().iter().map(|f| f.width_sites).sum();
        let cell_sites = 4; // two 2-site inverters
        assert_eq!(filler_sites + cell_sites, fp.total_sites() as u32);
    }

    #[test]
    fn fillers_do_not_overlap_cells_or_each_other() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 37);
        p.place(&nl, &fp, CellId::new(1), 0, 61);
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        // Reconstruct per-row coverage and require exact tiling.
        for row in 0..fp.num_rows() as u32 {
            let mut spans: Vec<(u32, u32)> = p
                .row_cells(row)
                .into_iter()
                .map(|(s, _, w)| (s, w))
                .chain(
                    p.fillers()
                        .iter()
                        .filter(|f| f.row == row)
                        .map(|f| (f.site, f.width_sites)),
                )
                .collect();
            spans.sort_unstable();
            let mut cursor = 0;
            for (s, w) in spans {
                assert_eq!(s, cursor, "gap or overlap at row {row} site {s}");
                cursor = s + w;
            }
            assert_eq!(cursor, fp.row(row as usize).num_sites);
        }
    }

    #[test]
    fn weighted_gaps_sum_exactly_and_follow_weights() {
        let gaps = weighted_row_gaps(10, &[1.0, 3.0, 1.0]);
        assert_eq!(gaps.iter().sum::<u32>(), 10);
        assert!(gaps[1] > gaps[0] && gaps[1] > gaps[2], "{gaps:?}");
        // Zero/degenerate weights fall back to a uniform split.
        let flat = weighted_row_gaps(9, &[0.0, f64::NAN, -1.0]);
        assert_eq!(flat.iter().sum::<u32>(), 9);
        assert_eq!(flat, vec![3, 3, 3]);
        assert!(weighted_row_gaps(5, &[]).is_empty());
    }

    #[test]
    fn respread_keeps_order_and_tiles_after_refill() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 10);
        p.place(&nl, &fp, CellId::new(1), 0, 40);
        let used = 4; // two 2-site inverters
        let free = fp.row(0).num_sites - used;
        // All whitespace before the first cell, none between.
        let gaps = [free, 0, 0];
        respread_row(&nl, &fp, &mut p, 0, &gaps[..]);
        let cells = p.row_cells(0);
        assert_eq!(cells[0].1, CellId::new(0), "order preserved");
        assert_eq!(cells[0].0, free, "first cell pushed right");
        assert_eq!(cells[1].0, free + 2, "second cell packed against it");
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        let filler_sites: u32 = p.fillers().iter().map(|f| f.width_sites).sum();
        assert_eq!(filler_sites + used, fp.total_sites() as u32);
    }

    #[test]
    fn refilling_after_a_move_stays_consistent() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 10);
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        assert!(!p.fillers().is_empty());
        // Moving a cell clears fillers (they may now overlap).
        p.place(&nl, &fp, CellId::new(0), 1, 10);
        assert!(p.fillers().is_empty());
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        let filler_sites: u32 = p.fillers().iter().map(|f| f.width_sites).sum();
        assert_eq!(filler_sites + 2, fp.total_sites() as u32);
    }
}
