//! Whitespace filling with dummy cells.
//!
//! The paper: "the available area overhead is filled with dummy cells
//! which do not contain active transistors and consume zero power. They
//! can guarantee the electrical continuity of power and ground rails in
//! each layout row." Filling every gap completely is therefore a hard
//! invariant, checked by [`crate::validate`].

use netlist::Netlist;

use crate::{FillerInst, Floorplan, PlaceError, Placement};

/// Tiles every free gap of every row with filler cells (greedy, widest
/// first). Replaces the placement's existing filler list.
///
/// # Errors
///
/// Returns [`PlaceError::UnfillableGap`] if a gap cannot be tiled — which
/// cannot happen with the `c65` library's 1-site filler.
pub fn fill_whitespace(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &mut Placement,
) -> Result<(), PlaceError> {
    let lib = netlist.library();
    let masters = lib.fillers();
    let mut fillers = Vec::new();
    for row in 0..floorplan.num_rows() as u32 {
        for (start, width) in placement.row_gaps(floorplan, row) {
            let mut site = start;
            let mut remaining = width;
            while remaining > 0 {
                let master = masters
                    .iter()
                    .copied()
                    .find(|&m| lib.cell(m).width_sites() <= remaining)
                    .ok_or(PlaceError::UnfillableGap {
                        row,
                        site,
                        width: remaining,
                    })?;
                let w = lib.cell(master).width_sites();
                fillers.push(FillerInst {
                    master,
                    row,
                    site,
                    width_sites: w,
                });
                site += w;
                remaining -= w;
            }
        }
    }
    placement.set_fillers(fillers);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{CellId, NetlistBuilder};
    use stdcell::{CellFunction, Drive, Library};

    fn setup() -> (Netlist, Floorplan, Placement) {
        let mut b = NetlistBuilder::new("t", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let n0 = b.net("n0");
        let n1 = b.net("n1");
        b.cell(u, CellFunction::Inv, Drive::X1, &[a], &[n0])
            .unwrap();
        b.cell(u, CellFunction::Inv, Drive::X1, &[n0], &[n1])
            .unwrap();
        let nl = b.finish().unwrap();
        let fp = Floorplan::new(nl.library(), 30.0, 2); // 100 sites/row
        let p = Placement::new(&nl, &fp);
        (nl, fp, p)
    }

    #[test]
    fn fillers_cover_every_free_site() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 37);
        p.place(&nl, &fp, CellId::new(1), 1, 0);
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        let filler_sites: u32 = p.fillers().iter().map(|f| f.width_sites).sum();
        let cell_sites = 4; // two 2-site inverters
        assert_eq!(filler_sites + cell_sites, fp.total_sites() as u32);
    }

    #[test]
    fn fillers_do_not_overlap_cells_or_each_other() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 37);
        p.place(&nl, &fp, CellId::new(1), 0, 61);
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        // Reconstruct per-row coverage and require exact tiling.
        for row in 0..fp.num_rows() as u32 {
            let mut spans: Vec<(u32, u32)> = p
                .row_cells(row)
                .into_iter()
                .map(|(s, _, w)| (s, w))
                .chain(
                    p.fillers()
                        .iter()
                        .filter(|f| f.row == row)
                        .map(|f| (f.site, f.width_sites)),
                )
                .collect();
            spans.sort_unstable();
            let mut cursor = 0;
            for (s, w) in spans {
                assert_eq!(s, cursor, "gap or overlap at row {row} site {s}");
                cursor = s + w;
            }
            assert_eq!(cursor, fp.row(row as usize).num_sites);
        }
    }

    #[test]
    fn refilling_after_a_move_stays_consistent() {
        let (nl, fp, mut p) = setup();
        p.place(&nl, &fp, CellId::new(0), 0, 10);
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        assert!(!p.fillers().is_empty());
        // Moving a cell clears fillers (they may now overlap).
        p.place(&nl, &fp, CellId::new(0), 1, 10);
        assert!(p.fillers().is_empty());
        fill_whitespace(&nl, &fp, &mut p).unwrap();
        let filler_sites: u32 = p.fillers().iter().map(|f| f.width_sites).sum();
        assert_eq!(filler_sites + 2, fp.total_sites() as u32);
    }
}
