//! Unit-region assignment: a slicing floorplan of the core.
//!
//! The paper's benchmark is "composed of nine arithmetic units of various
//! sizes" placed as blocks; workloads then light up individual blocks to
//! form hotspots. We reproduce that structure by slicing the core into one
//! rectangular region per unit: units are balanced into columns by area,
//! and each column is sliced vertically in proportion to its units' areas.

use geom::Rect;
use netlist::{Netlist, NetlistStats};

/// Assigns one core region per unit, in unit-id order.
///
/// Regions tile the core exactly: column widths are proportional to the
/// summed cell area of the units in each column, and each unit's height
/// share is proportional to its cell area within the column.
///
/// # Panics
///
/// Panics if the netlist has no units or a unit has zero cell area.
pub fn assign_unit_regions(netlist: &Netlist, core: Rect) -> Vec<Rect> {
    let stats = NetlistStats::of(netlist);
    let n = stats.units.len();
    assert!(n > 0, "netlist has no units");
    for u in &stats.units {
        assert!(u.cell_area_um2 > 0.0, "unit {} has no cells", u.name);
    }
    // Balance units into up to 3 columns by greedy largest-first.
    let ncols = n.min(3);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        stats.units[b]
            .cell_area_um2
            .total_cmp(&stats.units[a].cell_area_um2)
    });
    let mut columns: Vec<Vec<usize>> = vec![Vec::new(); ncols];
    let mut col_area = vec![0.0f64; ncols];
    for u in order {
        let lightest = (0..ncols)
            .min_by(|&a, &b| col_area[a].total_cmp(&col_area[b]))
            .expect("ncols > 0");
        columns[lightest].push(u);
        col_area[lightest] += stats.units[u].cell_area_um2;
    }
    // Keep unit order stable within a column (deterministic layout).
    for c in &mut columns {
        c.sort_unstable();
    }
    let total_area: f64 = col_area.iter().sum();
    let mut regions = vec![Rect::default(); n];
    let mut x = core.llx;
    for (ci, col) in columns.iter().enumerate() {
        let w = core.width() * col_area[ci] / total_area;
        let mut y = core.lly;
        for &u in col {
            let h = core.height() * stats.units[u].cell_area_um2 / col_area[ci];
            regions[u] = Rect::new(x, y, x + w, y + h);
            y += h;
        }
        // Snap the last region in the column to the core edge.
        if let Some(&last) = col.last() {
            regions[last].ury = core.ury;
        }
        x += w;
    }
    // Snap the right edge of the last column.
    for col in columns.iter().rev().take(1) {
        for &u in col {
            regions[u].urx = core.urx;
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use arithgen::{build_benchmark, BenchmarkConfig};

    #[test]
    fn regions_tile_the_core() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let core = Rect::new(0.0, 0.0, 300.0, 300.0);
        let regions = assign_unit_regions(&nl, core);
        assert_eq!(regions.len(), 9);
        let total: f64 = regions.iter().map(Rect::area).sum();
        assert!(
            (total - core.area()).abs() < core.area() * 1e-9,
            "regions must tile the core: {total} vs {}",
            core.area()
        );
        for (i, a) in regions.iter().enumerate() {
            assert!(core.contains_rect(a), "region {i} leaves the core");
            for (j, b) in regions.iter().enumerate().skip(i + 1) {
                assert!(!a.intersects(b), "regions {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn region_area_tracks_unit_area() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let core = Rect::new(0.0, 0.0, 300.0, 300.0);
        let regions = assign_unit_regions(&nl, core);
        let stats = netlist::NetlistStats::of(&nl);
        let total_cells: f64 = stats.units.iter().map(|u| u.cell_area_um2).sum();
        for u in &stats.units {
            let share = u.cell_area_um2 / total_cells;
            let got = regions[u.unit.index()].area() / core.area();
            // Slicing guarantees proportionality within column granularity.
            assert!(
                (got - share).abs() < 0.08,
                "{}: region share {got:.3} vs area share {share:.3}",
                u.name
            );
        }
    }
}
