//! RUDY-style routing-demand estimation.
//!
//! The paper notes a by-product of empty-row insertion: "it increases the
//! distance between rows of cells, thus reducing routing congestion in
//! the hotspot regions". This estimator lets the benches quantify that
//! claim: each net spreads `hpwl / bbox_area` of wire demand uniformly
//! over its bounding box (Spindler & Johannes' RUDY).

use geom::{Grid2d, Rect};
use netlist::{NetDriver, Netlist};

use crate::{Floorplan, Placement};

/// Summary of a congestion map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionStats {
    /// Peak bin demand (µm of wire per µm² of bin, dimensionless density).
    pub max: f64,
    /// Mean bin demand.
    pub mean: f64,
}

/// Computes the RUDY demand map at `nx`×`ny` over the core.
pub fn congestion_map(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &Placement,
    nx: usize,
    ny: usize,
) -> (Grid2d<f64>, CongestionStats) {
    let mut demand = Grid2d::new(nx, ny, floorplan.core(), 0.0);
    for (id, _) in netlist.nets() {
        let hpwl = crate::net_hpwl(netlist, floorplan, placement, id);
        if hpwl <= 0.0 {
            continue;
        }
        let mut bbox: Option<Rect> = None;
        let collect = |cell, bbox: &mut Option<Rect>| {
            if let Some(c) = placement.cell_center(netlist, floorplan, cell) {
                let r = Rect::new(c.x, c.y, c.x, c.y);
                *bbox = Some(match *bbox {
                    None => r,
                    Some(b) => b.union(&r),
                });
            }
        };
        let net = netlist.net(id);
        if let NetDriver::Pin(pin) = net.driver() {
            collect(netlist.pin(pin).cell(), &mut bbox);
        }
        for &sink in net.sinks() {
            collect(netlist.pin(sink).cell(), &mut bbox);
        }
        let b = bbox.expect("hpwl > 0 implies endpoints");
        let spread = Rect::new(b.llx, b.lly, b.urx.max(b.llx + 1.0), b.ury.max(b.lly + 1.0));
        demand.splat(&spread, hpwl);
    }
    // Normalize per bin area → wire density.
    let bin_area = demand.bin_width() * demand.bin_height();
    for v in demand.values_mut() {
        *v /= bin_area;
    }
    let max = demand.max_bin().map(|(_, v)| v).unwrap_or(0.0);
    let mean = demand.mean();
    (demand, CongestionStats { max, mean })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Placer, PlacerConfig};
    use arithgen::{build_benchmark, BenchmarkConfig};

    #[test]
    fn congestion_is_positive_and_peaks_above_mean() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let r = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        let (map, stats) = congestion_map(&nl, &r.floorplan, &r.placement, 16, 16);
        assert_eq!(map.nx(), 16);
        assert!(stats.max > 0.0);
        assert!(stats.max >= stats.mean);
    }

    #[test]
    fn spreading_cells_lowers_peak_congestion() {
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let dense = Placer::new(PlacerConfig::with_utilization(0.9))
            .place(&nl)
            .unwrap();
        let sparse = Placer::new(PlacerConfig::with_utilization(0.5))
            .place(&nl)
            .unwrap();
        let (_, d) = congestion_map(&nl, &dense.floorplan, &dense.placement, 16, 16);
        let (_, s) = congestion_map(&nl, &sparse.floorplan, &sparse.placement, 16, 16);
        assert!(s.max < d.max, "sparse {:.3} vs dense {:.3}", s.max, d.max);
    }
}
