//! Half-perimeter wirelength, the placer's quality metric and the wire
//! model feeding the timing analyzer.

use geom::Rect;
use netlist::{NetDriver, NetId, Netlist};

use crate::{Floorplan, Placement};

/// Half-perimeter wirelength of one net (µm): the half-perimeter of the
/// bounding box of its placed pins (pins are approximated by their cell
/// centers; port-driven endpoints are skipped). Nets with fewer than two
/// placed endpoints have zero length.
///
/// # Panics
///
/// Panics if `net` is out of range.
pub fn net_hpwl(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &Placement,
    net: NetId,
) -> f64 {
    let mut bbox: Option<Rect> = None;
    let mut endpoints = 0;
    let mut extend = |cell| {
        if let Some(c) = placement.cell_center(netlist, floorplan, cell) {
            let r = Rect::new(c.x, c.y, c.x, c.y);
            bbox = Some(match bbox {
                None => r,
                Some(b) => b.union(&r),
            });
            endpoints += 1;
        }
    };
    if let NetDriver::Pin(pin) = netlist.net(net).driver() {
        extend(netlist.pin(pin).cell());
    }
    for &sink in netlist.net(net).sinks() {
        extend(netlist.pin(sink).cell());
    }
    match bbox {
        Some(b) if endpoints >= 2 => b.width() + b.height(),
        _ => 0.0,
    }
}

/// Total half-perimeter wirelength over all nets (µm).
pub fn total_hpwl(netlist: &Netlist, floorplan: &Floorplan, placement: &Placement) -> f64 {
    netlist
        .nets()
        .map(|(id, _)| net_hpwl(netlist, floorplan, placement, id))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Placer, PlacerConfig};
    use arithgen::{build_benchmark, BenchmarkConfig};
    use netlist::{CellId, NetlistBuilder};
    use stdcell::{CellFunction, Drive, Library};

    #[test]
    fn two_pin_net_hpwl_is_manhattan_distance_of_centers() {
        let mut b = NetlistBuilder::new("t", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let n0 = b.net("n0");
        let n1 = b.net("n1");
        b.cell(u, CellFunction::Inv, Drive::X1, &[a], &[n0])
            .unwrap();
        b.cell(u, CellFunction::Inv, Drive::X1, &[n0], &[n1])
            .unwrap();
        let nl = b.finish().unwrap();
        let fp = Floorplan::new(nl.library(), 30.0, 2);
        let mut p = Placement::new(&nl, &fp);
        p.place(&nl, &fp, CellId::new(0), 0, 0);
        p.place(&nl, &fp, CellId::new(1), 1, 10);
        let mid = nl.nets().find(|(_, n)| n.name() == "n0").unwrap().0;
        let c0 = p.cell_center(&nl, &fp, CellId::new(0)).unwrap();
        let c1 = p.cell_center(&nl, &fp, CellId::new(1)).unwrap();
        assert!((net_hpwl(&nl, &fp, &p, mid) - c0.manhattan_to(c1)).abs() < 1e-9);
    }

    #[test]
    fn region_placement_keeps_wirelength_local() {
        // The region-ordered placer should beat a deliberately scrambled
        // placement by a wide margin on total HPWL.
        let nl = build_benchmark(&BenchmarkConfig::small()).unwrap();
        let good = Placer::new(PlacerConfig::default()).place(&nl).unwrap();
        let good_hpwl = total_hpwl(&nl, &good.floorplan, &good.placement);

        // Scrambled: place cells round-robin across rows, ignoring units.
        let fp = good.floorplan.clone();
        let mut bad = Placement::new(&nl, &fp);
        let mut cursors: Vec<u32> = vec![0; fp.num_rows()];
        for (i, (id, cell)) in nl.cells().enumerate() {
            let w = nl.library().cell(cell.master()).width_sites();
            let mut row = i % fp.num_rows();
            while cursors[row] + w > fp.row(row).num_sites {
                row = (row + 1) % fp.num_rows();
            }
            bad.place(&nl, &fp, id, row as u32, cursors[row]);
            cursors[row] += w;
        }
        let bad_hpwl = total_hpwl(&nl, &fp, &bad);
        assert!(
            good_hpwl * 2.0 < bad_hpwl,
            "good {good_hpwl:.0} vs scrambled {bad_hpwl:.0}"
        );
    }
}
