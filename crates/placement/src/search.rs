//! Slot search used by post-placement transformations: find legal free
//! space for a cell near a target point, optionally avoiding regions.

use geom::{Point, Rect};
use netlist::{CellId, Netlist};

use crate::{Floorplan, Placement};

/// Finds the free slot for `cell` nearest to `origin` (Manhattan distance
/// between cell center and origin) whose footprint does not intersect any
/// `forbidden` rectangle. Returns `(row, site)`.
///
/// Rows are scanned outward from the origin's row; the search stops as
/// soon as remaining rows cannot beat the best candidate.
pub fn nearest_slot_outside(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &Placement,
    cell: CellId,
    origin: Point,
    forbidden: &[Rect],
) -> Option<(u32, u32)> {
    let lib = netlist.library();
    let width = lib.cell(netlist.cell(cell).master()).width_sites();
    let width_um = width as f64 * floorplan.site_width();
    let mut best: Option<(f64, u32, u32)> = None;
    // Rows ordered by vertical distance from the origin.
    let origin_row = floorplan
        .row_at(origin.y.clamp(floorplan.core().lly, floorplan.core().ury))
        .unwrap_or(0) as i64;
    let n_rows = floorplan.num_rows() as i64;
    let row_order = (0..n_rows).map(|k| {
        // 0, +1, -1, +2, -2, …
        let step = (k + 1) / 2;
        if k % 2 == 1 {
            origin_row + step
        } else {
            origin_row - step
        }
    });
    for r in row_order {
        if r < 0 || r >= n_rows {
            continue;
        }
        let r = r as usize;
        let row_rect = floorplan.row_rect(r);
        let y_center = (row_rect.lly + row_rect.ury) / 2.0;
        let dy = (y_center - origin.y).abs();
        if let Some((best_d, _, _)) = best {
            if dy >= best_d {
                continue; // this row cannot beat the current best
            }
        }
        for (gap_start, gap_width) in placement.row_gaps(floorplan, r as u32) {
            if gap_width < width {
                continue;
            }
            // Candidate site closest to origin.x within the gap.
            let sw = floorplan.site_width();
            let ideal_x = origin.x - width_um / 2.0;
            let ideal_site = ((ideal_x - floorplan.row(r).origin_x) / sw).round();
            let lo = gap_start as f64;
            let hi = (gap_start + gap_width - width) as f64;
            let site = ideal_site.clamp(lo, hi) as u32;
            let x = floorplan.site_x(r, site);
            let rect = Rect::new(x, row_rect.lly, x + width_um, row_rect.ury);
            if forbidden.iter().any(|f| f.intersects(&rect)) {
                // Try both gap extremes as fallbacks around a forbidden zone.
                let mut placed = false;
                for alt in [lo as u32, hi as u32] {
                    let ax = floorplan.site_x(r, alt);
                    let arect = Rect::new(ax, row_rect.lly, ax + width_um, row_rect.ury);
                    if !forbidden.iter().any(|f| f.intersects(&arect)) {
                        let d = arect.center().manhattan_to(origin);
                        if best.is_none_or(|(bd, _, _)| d < bd) {
                            best = Some((d, r as u32, alt));
                        }
                        placed = true;
                    }
                }
                if placed {
                    continue;
                }
                continue;
            }
            let d = rect.center().manhattan_to(origin);
            if best.is_none_or(|(bd, _, _)| d < bd) {
                best = Some((d, r as u32, site));
            }
        }
    }
    best.map(|(_, r, s)| (r, s))
}

/// Inserts `cell` into `row` by re-spreading the whole row uniformly —
/// the "shove aside" fallback used when no single gap is wide enough for
/// the cell. Existing row cells keep their left-to-right order; the new
/// cell is inserted at the position matching `target_x`.
///
/// Returns `false` (placement untouched) when the row lacks the total
/// free width.
///
/// # Panics
///
/// Panics if `row` is out of range.
pub fn squeeze_into_row(
    netlist: &Netlist,
    floorplan: &Floorplan,
    placement: &mut Placement,
    cell: CellId,
    row: u32,
    target_x: f64,
) -> bool {
    let lib = netlist.library();
    let width = lib.cell(netlist.cell(cell).master()).width_sites();
    let occupants = placement.row_cells(row);
    let used: u32 = occupants.iter().map(|&(_, _, w)| w).sum();
    if used + width > floorplan.row(row as usize).num_sites {
        return false;
    }
    // Build the new order: existing cells by site, new cell by target x.
    let sw = floorplan.site_width();
    let target_site = ((target_x - floorplan.row(row as usize).origin_x) / sw) as u32;
    let mut order: Vec<CellId> = Vec::with_capacity(occupants.len() + 1);
    let mut inserted = false;
    for &(site, c, _) in &occupants {
        if !inserted && site >= target_site {
            order.push(cell);
            inserted = true;
        }
        order.push(c);
    }
    if !inserted {
        order.push(cell);
    }
    for &c in &order {
        placement.remove(c);
    }
    let region = floorplan.row_rect(row as usize);
    crate::spread_into_region(netlist, floorplan, placement, &order, region)
        .expect("row capacity was checked");
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;
    use stdcell::{CellFunction, Drive, Library};

    fn setup() -> (Netlist, Floorplan, Placement) {
        let mut b = NetlistBuilder::new("t", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let mut prev = a;
        for i in 0..3 {
            let n = b.net(format!("n{i}"));
            b.cell(u, CellFunction::Inv, Drive::X1, &[prev], &[n])
                .unwrap();
            prev = n;
        }
        let nl = b.finish().unwrap();
        let fp = Floorplan::new(nl.library(), 30.0, 4);
        let p = Placement::new(&nl, &fp);
        (nl, fp, p)
    }

    #[test]
    fn finds_slot_at_origin_when_empty() {
        let (nl, fp, p) = setup();
        // y = 5.4 sits exactly on the row-1/row-2 boundary: both rows'
        // centers are equidistant, either is a correct nearest slot.
        let origin = Point::new(15.0, 5.4);
        let (row, site) = nearest_slot_outside(&nl, &fp, &p, CellId::new(0), origin, &[]).unwrap();
        assert!(row == 1 || row == 2, "row {row}");
        // 15 µm = site 50; cell is 2 sites wide → starts at ~49.
        assert!((48..=50).contains(&site));
    }

    #[test]
    fn avoids_forbidden_regions() {
        let (nl, fp, p) = setup();
        let origin = Point::new(15.0, 5.4);
        // Forbid the two middle rows entirely.
        let forbidden = [Rect::new(0.0, 2.7, 30.0, 8.1)];
        let (row, _) =
            nearest_slot_outside(&nl, &fp, &p, CellId::new(0), origin, &forbidden).unwrap();
        assert!(
            row == 0 || row == 3,
            "row {row} is inside the forbidden band"
        );
    }

    #[test]
    fn skips_occupied_space() {
        let (nl, fp, mut p) = setup();
        // Fill row 1 completely with cell 1 … can't (2 sites); instead
        // occupy the target area.
        p.place(&nl, &fp, CellId::new(1), 1, 48);
        let origin = Point::new(14.7, 2.8); // row 1, site ~48
        let (row, site) = nearest_slot_outside(&nl, &fp, &p, CellId::new(0), origin, &[]).unwrap();
        let rect = {
            let x = fp.site_x(row as usize, site);
            Rect::new(
                x,
                fp.row(row as usize).y,
                x + 0.6,
                fp.row(row as usize).y + 2.7,
            )
        };
        let occupied = p.cell_rect(&nl, &fp, CellId::new(1)).unwrap();
        assert!(!rect.intersects(&occupied));
    }

    #[test]
    fn returns_none_when_everything_is_forbidden() {
        let (nl, fp, p) = setup();
        let forbidden = [fp.core()];
        assert!(nearest_slot_outside(
            &nl,
            &fp,
            &p,
            CellId::new(0),
            Point::new(1.0, 1.0),
            &forbidden
        )
        .is_none());
    }
}
