/// Errors reported by the placer and whitespace filler.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// A unit's cells do not fit in its assigned region at the requested
    /// utilization.
    RegionOverflow {
        /// The unit's name.
        unit: String,
        /// Sites required by the unit's cells.
        needed_sites: u64,
        /// Sites available in the region.
        capacity_sites: u64,
    },
    /// The floorplan cannot hold the design at all.
    CoreTooSmall {
        /// Sites required.
        needed_sites: u64,
        /// Sites available.
        capacity_sites: u64,
    },
    /// A whitespace gap could not be tiled with the library's fillers
    /// (impossible with a 1-site filler present; indicates a broken
    /// library).
    UnfillableGap {
        /// Row index.
        row: u32,
        /// Gap start site.
        site: u32,
        /// Gap width in sites.
        width: u32,
    },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::RegionOverflow {
                unit,
                needed_sites,
                capacity_sites,
            } => write!(
                f,
                "unit {unit} needs {needed_sites} sites but its region holds {capacity_sites}"
            ),
            PlaceError::CoreTooSmall {
                needed_sites,
                capacity_sites,
            } => write!(
                f,
                "design needs {needed_sites} sites but the core holds {capacity_sites}"
            ),
            PlaceError::UnfillableGap { row, site, width } => write!(
                f,
                "cannot tile {width}-site gap at row {row}, site {site} with filler cells"
            ),
        }
    }
}

impl std::error::Error for PlaceError {}
