//! Row-based standard-cell placement: floorplanning, region-constrained
//! placement, legalization, filler (dummy-cell) insertion and wirelength /
//! congestion metrics — the workspace's substitute for the paper's
//! Synopsys IC Compiler flow.
//!
//! The post-placement techniques of the paper manipulate exactly the
//! objects modelled here:
//!
//! * a [`Floorplan`] of uniform layout rows made of placement sites
//!   (the paper's row pitch is 2.7 µm — Table I's geometry);
//! * a [`Placement`] binding each netlist cell to a `(row, site)` slot;
//! * [`fill_whitespace`], which pours zero-power filler cells into every
//!   gap so each row's power rails stay electrically continuous;
//! * [`Placer`], which produces an initial legal placement at a target
//!   row-utilization factor (the knob the paper's *Default* scheme
//!   relaxes), placing each unit into its own region of the core.
//!
//! # Examples
//!
//! ```
//! use arithgen::{build_benchmark, BenchmarkConfig};
//! use placement::{Placer, PlacerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = build_benchmark(&BenchmarkConfig::small())?;
//! let result = Placer::new(PlacerConfig::default()).place(&nl)?;
//! assert!(result.placement.is_fully_placed(&nl));
//! # Ok(())
//! # }
//! ```

mod congestion;
mod db;
mod error;
mod fillers;
mod floorplan;
mod hpwl;
mod place;
mod regions;
mod search;
mod validate;

pub use congestion::{congestion_map, CongestionStats};
pub use db::{FillerInst, PlacedCell, Placement};
pub use error::PlaceError;
pub use fillers::{fill_whitespace, respread_row, weighted_row_gaps};
pub use floorplan::{Floorplan, Row};
pub use hpwl::{net_hpwl, total_hpwl};
pub use place::{region_row_segments, spread_into_region, PlacementResult, Placer, PlacerConfig};
pub use regions::assign_unit_regions;
pub use search::{nearest_slot_outside, squeeze_into_row};
pub use validate::{validate, Violation};
