use std::collections::BTreeMap;

use geom::{Point, Rect};
use netlist::{CellId, Netlist};
use serde::{Deserialize, Serialize};
use stdcell::LibCellId;

use crate::Floorplan;

/// A cell's placement slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedCell {
    /// Row index (0 = bottom).
    pub row: u32,
    /// Leftmost occupied site within the row.
    pub site: u32,
}

/// A placed filler (dummy) cell. Fillers are placement artifacts, not
/// netlist content: zero power, zero pins, rail continuity only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FillerInst {
    /// The filler master in the library.
    pub master: LibCellId,
    /// Row index.
    pub row: u32,
    /// Leftmost occupied site.
    pub site: u32,
    /// Width in sites (cached from the master).
    pub width_sites: u32,
}

/// The placement database: a slot per netlist cell plus per-row occupancy
/// indexes for fast gap queries, and the filler list.
///
/// # Examples
///
/// ```
/// use arithgen::{build_benchmark, BenchmarkConfig};
/// use placement::{Placer, PlacerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = build_benchmark(&BenchmarkConfig::small())?;
/// let result = Placer::new(PlacerConfig::default()).place(&nl)?;
/// let (cell, _) = nl.cells().next().expect("non-empty design");
/// let rect = result.placement.cell_rect(&nl, &result.floorplan, cell);
/// assert!(result.floorplan.core().contains_rect(&rect.expect("placed")));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    slots: Vec<Option<PlacedCell>>,
    fillers: Vec<FillerInst>,
    /// Per-row map `site → (cell, width_sites)` for occupancy queries.
    row_index: Vec<BTreeMap<u32, (CellId, u32)>>,
}

impl Placement {
    /// An empty placement for `netlist` over `floorplan`.
    pub fn new(netlist: &Netlist, floorplan: &Floorplan) -> Self {
        Placement {
            slots: vec![None; netlist.cell_count()],
            fillers: Vec::new(),
            row_index: vec![BTreeMap::new(); floorplan.num_rows()],
        }
    }

    /// Width of `cell` in sites.
    fn width_of(netlist: &Netlist, cell: CellId) -> u32 {
        netlist
            .library()
            .cell(netlist.cell(cell).master())
            .width_sites()
    }

    /// Places (or moves) `cell` at `(row, site)`. Clears any fillers — the
    /// caller refills whitespace after a batch of moves.
    ///
    /// # Panics
    ///
    /// Panics if the slot would overlap another cell or leave the row.
    pub fn place(
        &mut self,
        netlist: &Netlist,
        floorplan: &Floorplan,
        cell: CellId,
        row: u32,
        site: u32,
    ) {
        let width = Self::width_of(netlist, cell);
        assert!(
            (row as usize) < floorplan.num_rows(),
            "row {row} out of range"
        );
        assert!(
            site + width <= floorplan.row(row as usize).num_sites,
            "cell {cell} leaves row {row} (site {site} width {width})"
        );
        assert!(
            self.fits(row, site, width),
            "cell {cell} overlaps at row {row} site {site}"
        );
        self.remove(cell);
        self.slots[cell.index()] = Some(PlacedCell { row, site });
        self.row_index[row as usize].insert(site, (cell, width));
        self.fillers.clear();
    }

    /// Removes `cell` from the placement (no-op when unplaced).
    pub fn remove(&mut self, cell: CellId) {
        if let Some(pc) = self.slots[cell.index()].take() {
            self.row_index[pc.row as usize].remove(&pc.site);
            self.fillers.clear();
        }
    }

    /// Whether `[site, site+width)` in `row` is free of placed cells.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn fits(&self, row: u32, site: u32, width: u32) -> bool {
        let index = &self.row_index[row as usize];
        // Previous occupant must end at or before `site`…
        if let Some((&s, &(_, w))) = index.range(..=site).next_back() {
            if s + w > site {
                return false;
            }
        }
        // …and the next must start at or after the end.
        if let Some((&s, _)) = index.range(site..).next() {
            if s < site + width {
                return false;
            }
        }
        true
    }

    /// The slot of `cell`, if placed.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn location(&self, cell: CellId) -> Option<PlacedCell> {
        self.slots[cell.index()]
    }

    /// Whether every netlist cell is placed.
    pub fn is_fully_placed(&self, netlist: &Netlist) -> bool {
        netlist
            .cells()
            .all(|(id, _)| self.slots[id.index()].is_some())
    }

    /// The physical footprint of `cell`, if placed.
    pub fn cell_rect(
        &self,
        netlist: &Netlist,
        floorplan: &Floorplan,
        cell: CellId,
    ) -> Option<Rect> {
        let pc = self.slots[cell.index()]?;
        let width = Self::width_of(netlist, cell) as f64 * floorplan.site_width();
        let x = floorplan.site_x(pc.row as usize, pc.site);
        let y = floorplan.row(pc.row as usize).y;
        Some(Rect::new(x, y, x + width, y + floorplan.row_height()))
    }

    /// The center point of `cell`, if placed.
    pub fn cell_center(
        &self,
        netlist: &Netlist,
        floorplan: &Floorplan,
        cell: CellId,
    ) -> Option<Point> {
        self.cell_rect(netlist, floorplan, cell).map(|r| r.center())
    }

    /// Cells occupying `row`, in site order, as `(site, cell, width)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_cells(&self, row: u32) -> Vec<(u32, CellId, u32)> {
        self.row_index[row as usize]
            .iter()
            .map(|(&s, &(c, w))| (s, c, w))
            .collect()
    }

    /// Free gaps in `row` as `(site, width)` pairs, in site order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_gaps(&self, floorplan: &Floorplan, row: u32) -> Vec<(u32, u32)> {
        let total = floorplan.row(row as usize).num_sites;
        let mut gaps = Vec::new();
        let mut cursor = 0u32;
        for (&site, &(_, width)) in &self.row_index[row as usize] {
            if site > cursor {
                gaps.push((cursor, site - cursor));
            }
            cursor = site + width;
        }
        if cursor < total {
            gaps.push((cursor, total - cursor));
        }
        gaps
    }

    /// Fraction of `row`'s sites occupied by placed cells.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_utilization(&self, floorplan: &Floorplan, row: u32) -> f64 {
        let used: u32 = self.row_index[row as usize].values().map(|&(_, w)| w).sum();
        used as f64 / floorplan.row(row as usize).num_sites as f64
    }

    /// The placed fillers.
    pub fn fillers(&self) -> &[FillerInst] {
        &self.fillers
    }

    /// Replaces the filler list (used by [`crate::fill_whitespace`]).
    pub fn set_fillers(&mut self, fillers: Vec<FillerInst>) {
        self.fillers = fillers;
    }

    /// Iterates over placed cells as `(cell, slot)`.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, PlacedCell)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|pc| (CellId::new(i), pc)))
    }

    /// Rebuilds this placement onto a grown floorplan produced by
    /// [`Floorplan::with_rows_inserted`], shifting each cell's row by the
    /// supplied mapping. Fillers are dropped (refill afterwards).
    ///
    /// # Panics
    ///
    /// Panics if the mapping is shorter than the occupied rows require.
    pub fn remap_rows(&self, floorplan_new: &Floorplan, mapping: &[usize]) -> Placement {
        let mut out = Placement {
            slots: vec![None; self.slots.len()],
            fillers: Vec::new(),
            row_index: vec![BTreeMap::new(); floorplan_new.num_rows()],
        };
        for (cell, pc) in self.iter() {
            let new_row = mapping[pc.row as usize] as u32;
            out.slots[cell.index()] = Some(PlacedCell {
                row: new_row,
                site: pc.site,
            });
            let width = self.row_index[pc.row as usize]
                .get(&pc.site)
                .expect("indexed cell")
                .1;
            out.row_index[new_row as usize].insert(pc.site, (cell, width));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;
    use stdcell::{CellFunction, Drive, Library};

    fn tiny() -> (Netlist, Floorplan) {
        let mut b = NetlistBuilder::new("t", Library::c65());
        let u = b.add_unit("u");
        let a = b.input_port("a", u);
        let mut prev = a;
        for i in 0..4 {
            let n = b.net(format!("n{i}"));
            b.cell(u, CellFunction::Inv, Drive::X1, &[prev], &[n])
                .unwrap();
            prev = n;
        }
        let nl = b.finish().unwrap();
        let fp = Floorplan::new(nl.library(), 30.0, 3);
        (nl, fp)
    }

    #[test]
    fn place_and_query_roundtrip() {
        let (nl, fp) = tiny();
        let mut p = Placement::new(&nl, &fp);
        let cell = CellId::new(0);
        p.place(&nl, &fp, cell, 1, 10);
        assert_eq!(p.location(cell), Some(PlacedCell { row: 1, site: 10 }));
        let rect = p.cell_rect(&nl, &fp, cell).unwrap();
        assert!((rect.llx - 3.0).abs() < 1e-9); // 10 sites × 0.3 µm
        assert!((rect.lly - 2.7).abs() < 1e-9);
    }

    #[test]
    fn overlap_detection() {
        let (nl, fp) = tiny();
        let mut p = Placement::new(&nl, &fp);
        p.place(&nl, &fp, CellId::new(0), 0, 10); // INV = 2 sites → [10,12)
        assert!(!p.fits(0, 11, 2));
        assert!(!p.fits(0, 9, 2));
        assert!(p.fits(0, 12, 2));
        assert!(p.fits(0, 8, 2));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_place_panics() {
        let (nl, fp) = tiny();
        let mut p = Placement::new(&nl, &fp);
        p.place(&nl, &fp, CellId::new(0), 0, 10);
        p.place(&nl, &fp, CellId::new(1), 0, 11);
    }

    #[test]
    fn moving_a_cell_frees_its_old_slot() {
        let (nl, fp) = tiny();
        let mut p = Placement::new(&nl, &fp);
        let cell = CellId::new(0);
        p.place(&nl, &fp, cell, 0, 10);
        p.place(&nl, &fp, cell, 2, 0);
        assert!(p.fits(0, 10, 2), "old slot is free again");
        assert_eq!(p.row_cells(0).len(), 0);
        assert_eq!(p.row_cells(2).len(), 1);
    }

    #[test]
    fn gaps_cover_unoccupied_sites() {
        let (nl, fp) = tiny();
        let mut p = Placement::new(&nl, &fp);
        p.place(&nl, &fp, CellId::new(0), 0, 10);
        p.place(&nl, &fp, CellId::new(1), 0, 20);
        let gaps = p.row_gaps(&fp, 0);
        let total_sites = fp.row(0).num_sites;
        let gap_sites: u32 = gaps.iter().map(|&(_, w)| w).sum();
        assert_eq!(gap_sites + 4, total_sites); // two 2-site cells
        assert_eq!(gaps[0], (0, 10));
    }

    #[test]
    fn remap_rows_moves_cells_up() {
        let (nl, fp) = tiny();
        let mut p = Placement::new(&nl, &fp);
        p.place(&nl, &fp, CellId::new(0), 0, 0);
        p.place(&nl, &fp, CellId::new(1), 2, 6);
        let (fp2, mapping) = fp.with_rows_inserted(&[1]);
        let p2 = p.remap_rows(&fp2, &mapping);
        assert_eq!(p2.location(CellId::new(0)).unwrap().row, 0);
        assert_eq!(p2.location(CellId::new(1)).unwrap().row, 3);
    }
}
