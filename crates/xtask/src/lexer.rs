//! A minimal Rust lexer: just enough token structure to lint reliably.
//!
//! The lexer understands every construct that could hide a false match
//! from a text-based scan — line and (nested) block comments, string and
//! byte-string literals with escapes, raw strings with hash fences, char
//! literals versus lifetimes, raw identifiers, and the float-versus-
//! integer distinction (`1..2`, `1.max(2)`, `1e-6`, `0x1f`, `1f64`) —
//! while ignoring everything a linter does not need (keywords, operator
//! precedence, syntax trees).

/// A significant token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `unsafe`). Raw identifiers
    /// (`r#unsafe`) are marked `raw` so rules can skip them.
    Ident { name: String, raw: bool },
    /// `'a`, `'static`, `'_`.
    Lifetime,
    /// Integer literal, including hex/octal/binary and suffixed forms.
    Int,
    /// Float literal (`1.5`, `1.`, `1e-6`, `1f64`).
    Float,
    /// Any string-like literal: `"…"`, `b"…"`, `c"…"`, `r#"…"#`, `br"…"`.
    Str,
    /// Char or byte-char literal: `'a'`, `'\u{1F600}'`, `b'\n'`.
    Char,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// Any other single punctuation character.
    Punct(char),
}

impl Token {
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident { name: n, raw: false } if n == name)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment (line or block) with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    /// Text after `//` (line) or between `/*` and `*/` (block).
    pub text: String,
}

pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs are closed at end of input —
/// the linter degrades gracefully on malformed files instead of failing.
pub fn lex(src: &str) -> LexOutput {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, n: usize) -> Option<char> {
        self.chars.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string(self.line);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else if is_ident_start(c) {
                if !self.raw_or_prefixed_literal() {
                    self.ident(false);
                }
            } else {
                let line = self.line;
                self.bump();
                let kind = match c {
                    '=' if self.peek(0) == Some('=') => {
                        self.bump();
                        TokenKind::EqEq
                    }
                    '!' if self.peek(0) == Some('=') => {
                        self.bump();
                        TokenKind::Ne
                    }
                    _ => TokenKind::Punct(c),
                };
                self.tokens.push(Token { kind, line });
            }
        }
        LexOutput {
            tokens: self.tokens,
            comments: self.comments,
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match self.peek(0) {
                None => break,
                Some('/') if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek(1) == Some('/') => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                Some(c) => {
                    if depth == 1 {
                        text.push(c);
                    }
                    self.bump();
                }
            }
        }
        self.comments.push(Comment { line, text });
    }

    /// Consumes a `"…"` literal whose opening quote is at the cursor.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Str,
            line,
        });
    }

    /// Handles `r#ident`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`,
    /// `cr"…"`, and `b'…'`. Returns false if the cursor is a plain
    /// identifier after all (e.g. `break`, or `r` used as a variable).
    fn raw_or_prefixed_literal(&mut self) -> bool {
        let line = self.line;
        let Some(c0) = self.peek(0) else { return false };
        // r#ident — raw identifier (but r#" is a raw string, checked below).
        if c0 == 'r' && self.peek(1) == Some('#') {
            if let Some(c2) = self.peek(2) {
                if is_ident_start(c2) {
                    self.bump();
                    self.bump();
                    self.ident(true);
                    return true;
                }
            }
        }
        let (plen, raw) = match c0 {
            'r' => (1usize, true),
            'b' | 'c' if self.peek(1) == Some('r') => (2, true),
            'b' | 'c' => (1, false),
            _ => return false,
        };
        if raw {
            let mut i = plen;
            while self.peek(i) == Some('#') {
                i += 1;
            }
            if self.peek(i) != Some('"') {
                return false;
            }
            let hashes = i - plen;
            for _ in 0..=i {
                self.bump(); // prefix, hash fence, opening quote
            }
            self.raw_string_body(hashes, line);
            return true;
        }
        match self.peek(plen) {
            Some('"') => {
                for _ in 0..plen {
                    self.bump();
                }
                self.string(line);
                true
            }
            Some('\'') if c0 == 'b' => {
                for _ in 0..plen {
                    self.bump();
                }
                self.char_or_lifetime();
                true
            }
            _ => false,
        }
    }

    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut n = 0;
                    while n < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        n += 1;
                    }
                    if n == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Str,
            line,
        });
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a quote followed
    /// by an identifier char is a lifetime unless the char after that is
    /// the closing quote.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                self.bump();
                if let Some(e) = self.bump() {
                    if e == 'u' && self.peek(0) == Some('{') {
                        while let Some(c) = self.bump() {
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.tokens.push(Token {
                    kind: TokenKind::Char,
                    line,
                });
            }
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                self.bump();
                while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                    self.bump();
                }
                self.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    line,
                });
            }
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.tokens.push(Token {
                    kind: TokenKind::Char,
                    line,
                });
            }
            None => {}
        }
    }

    fn number(&mut self) {
        let line = self.line;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
            self.tokens.push(Token {
                kind: TokenKind::Int,
                line,
            });
            return;
        }
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        let mut float = false;
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    self.bump();
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                    float = true;
                }
                Some('.') => {}                    // range: `1..2`
                Some(c) if is_ident_start(c) => {} // method call: `1.max(2)`
                _ => {
                    // trailing-dot float: `1.`
                    self.bump();
                    float = true;
                }
            }
        }
        if matches!(self.peek(0), Some('e' | 'E')) {
            let exp = match self.peek(1) {
                Some(c) if c.is_ascii_digit() => true,
                Some('+') | Some('-') => {
                    matches!(self.peek(2), Some(c) if c.is_ascii_digit())
                }
                _ => false,
            };
            if exp {
                self.bump();
                if matches!(self.peek(0), Some('+' | '-')) {
                    self.bump();
                }
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
                float = true;
            }
        }
        let mut suffix = String::new();
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            if let Some(c) = self.bump() {
                suffix.push(c);
            }
        }
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        self.tokens.push(Token {
            kind: if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            line,
        });
    }

    fn ident(&mut self, raw: bool) {
        let line = self.line;
        let mut name = String::new();
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            if let Some(c) = self.bump() {
                name.push(c);
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Ident { name, raw },
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_do_not_emit_tokens() {
        let out = lex("a // panic!\n/* .unwrap() /* nested */ */ b");
        assert_eq!(out.tokens.len(), 2);
        assert!(out.tokens[0].is_ident("a"));
        assert!(out.tokens[1].is_ident("b"));
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].text, " panic!");
    }

    #[test]
    fn strings_swallow_lint_bait() {
        for src in [
            r#"let s = "call .unwrap() now";"#,
            r##"let s = r#"panic!("embedded ""quote"")"#;"##,
            r#"let s = b"todo!()";"#,
            r#"let s = br"dbg!()";"#,
        ] {
            let toks = kinds(src);
            assert!(
                toks.iter().all(|k| !matches!(
                    k,
                    TokenKind::Ident { name, .. }
                        if name == "unwrap" || name == "panic" || name == "todo" || name == "dbg"
                )),
                "leaked ident from {src}: {toks:?}"
            );
            assert!(toks.contains(&TokenKind::Str), "no Str token in {src}");
        }
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0], TokenKind::Str);
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\''"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\u{1F600}'"), vec![TokenKind::Char]);
        assert_eq!(kinds("b'x'"), vec![TokenKind::Char]);
        let toks = kinds("&'a str");
        assert_eq!(
            toks,
            vec![
                TokenKind::Punct('&'),
                TokenKind::Lifetime,
                TokenKind::Ident {
                    name: "str".into(),
                    raw: false
                }
            ]
        );
        assert_eq!(kinds("'_")[0], TokenKind::Lifetime);
        assert_eq!(kinds("'_'")[0], TokenKind::Char);
    }

    #[test]
    fn raw_identifiers_are_marked() {
        let toks = kinds("r#unsafe");
        assert_eq!(
            toks,
            vec![TokenKind::Ident {
                name: "unsafe".into(),
                raw: true
            }]
        );
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(kinds("1"), vec![TokenKind::Int]);
        assert_eq!(kinds("1.5"), vec![TokenKind::Float]);
        assert_eq!(kinds("1."), vec![TokenKind::Float]);
        assert_eq!(kinds("1e-6"), vec![TokenKind::Float]);
        assert_eq!(kinds("1.5e+3"), vec![TokenKind::Float]);
        assert_eq!(kinds("1f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("1u32"), vec![TokenKind::Int]);
        assert_eq!(kinds("0x1f"), vec![TokenKind::Int]);
        assert_eq!(kinds("0b1010"), vec![TokenKind::Int]);
        assert_eq!(kinds("1_000_000"), vec![TokenKind::Int]);
        // `1..2` is int, range, int — not a float.
        assert_eq!(
            kinds("1..2"),
            vec![
                TokenKind::Int,
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::Int
            ]
        );
        // `1.max(2)` is a method call on an integer.
        assert_eq!(kinds("1.max(2)")[0], TokenKind::Int);
    }

    #[test]
    fn comparison_operators_merge() {
        assert_eq!(kinds("a == b")[1], TokenKind::EqEq);
        assert_eq!(kinds("a != b")[1], TokenKind::Ne);
        // `<=` must not absorb into a stray EqEq.
        let toks = kinds("a <= b");
        assert_eq!(toks[1], TokenKind::Punct('<'));
        assert_eq!(toks[2], TokenKind::Punct('='));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let out = lex("let a = \"x\ny\";\n/* b\nc */\nfoo");
        let foo = out
            .tokens
            .iter()
            .find(|t| t.is_ident("foo"))
            .map(|t| t.line);
        assert_eq!(foo, Some(5));
    }
}
