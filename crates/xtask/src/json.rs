//! Minimal JSON reader/writer for the ratchet baseline file. Objects
//! preserve insertion order so renders are deterministic and diffs stay
//! readable.

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if n.is_finite() && *n >= 0.0 && n.trunc() == *n => Some(*n as usize),
            _ => None,
        }
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() && n.trunc() == *n && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_newline_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                push_newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_newline_indent(out, indent + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                push_newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing content at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn push_newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            other => Err(format!(
                "expected `{want}` at offset {}, found {other:?}",
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect_char(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_char('{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(entries)),
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_baseline_shape() {
        let text = "{\"schema\": 1, \"files\": {\"a/b.rs\": {\"no-panic\": 3}}, \"list\": [1, 2.5, true, null, \"s\"]}";
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("files")
                .and_then(|f| f.get("a/b.rs"))
                .and_then(|f| f.get("no-panic"))
                .and_then(Json::as_usize),
            Some(3)
        );
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "{\"a\" 1}", "[1,]", "nul", "\"unterminated", "{}x"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
