//! The ratchet baseline: per-file, per-rule violation counts that may
//! only decrease. New code must be clean; legacy debt is absorbed here
//! and paid down over time. The `seed` section freezes the library
//! panic-site counts measured when the linter first landed, so later
//! reductions can be stated against a fixed reference.

use std::collections::BTreeMap;

use crate::json::Json;

#[derive(Debug, Default)]
pub struct Baseline {
    /// Library `no-panic` site count per crate at the time the linter
    /// was introduced (before any cleanup). Immutable once recorded.
    pub seed: BTreeMap<String, usize>,
    /// file → rule → allowed count.
    pub files: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Baseline {
    pub fn allowance(&self, file: &str, rule: &str) -> usize {
        self.files
            .get(file)
            .and_then(|rules| rules.get(rule))
            .copied()
            .unwrap_or(0)
    }

    pub fn parse(text: &str) -> Result<Baseline, String> {
        let root = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        match root.get("schema").and_then(Json::as_usize) {
            Some(1) => {}
            other => return Err(format!("unsupported baseline schema {other:?}")),
        }
        let mut seed = BTreeMap::new();
        if let Some(entries) = root
            .get("seed")
            .and_then(|s| s.get("no-panic"))
            .and_then(Json::as_obj)
        {
            for (krate, count) in entries {
                let n = count
                    .as_usize()
                    .ok_or_else(|| format!("seed count for `{krate}` is not a count"))?;
                seed.insert(krate.clone(), n);
            }
        }
        let mut files = BTreeMap::new();
        let file_entries = root
            .get("files")
            .and_then(Json::as_obj)
            .ok_or("baseline is missing the `files` object")?;
        for (path, rules) in file_entries {
            let rule_entries = rules
                .as_obj()
                .ok_or_else(|| format!("baseline entry for `{path}` is not an object"))?;
            let mut per_rule = BTreeMap::new();
            for (rule, count) in rule_entries {
                let n = count.as_usize().ok_or_else(|| {
                    format!("baseline count for `{path}`/`{rule}` is not a count")
                })?;
                per_rule.insert(rule.clone(), n);
            }
            files.insert(path.clone(), per_rule);
        }
        Ok(Baseline { seed, files })
    }

    pub fn render(&self) -> String {
        let seed_obj = Json::Obj(vec![(
            "no-panic".to_string(),
            Json::Obj(
                self.seed
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        )]);
        let files_obj = Json::Obj(
            self.files
                .iter()
                .filter(|(_, rules)| rules.values().any(|&n| n > 0))
                .map(|(path, rules)| {
                    (
                        path.clone(),
                        Json::Obj(
                            rules
                                .iter()
                                .filter(|(_, &n)| n > 0)
                                .map(|(rule, &n)| (rule.clone(), Json::Num(n as f64)))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        let root = Json::Obj(vec![
            ("schema".to_string(), Json::Num(1.0)),
            ("tool".to_string(), Json::Str("xtask lint".to_string())),
            (
                "comment".to_string(),
                Json::Str(
                    "Per-file lint ratchet: counts may only decrease. Regenerate with \
                     `cargo run -p xtask -- lint --update-baseline`."
                        .to_string(),
                ),
            ),
            ("seed".to_string(), seed_obj),
            ("files".to_string(), files_obj),
        ]);
        let mut text = root.render();
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.seed.insert("core".to_string(), 20);
        b.files
            .entry("crates/core/src/sweep.rs".to_string())
            .or_default()
            .insert("no-panic".to_string(), 12);
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(again.seed.get("core"), Some(&20));
        assert_eq!(again.allowance("crates/core/src/sweep.rs", "no-panic"), 12);
        assert_eq!(again.allowance("crates/core/src/sweep.rs", "float-eq"), 0);
        assert_eq!(again.allowance("other.rs", "no-panic"), 0);
    }

    #[test]
    fn zero_count_entries_are_dropped_on_render() {
        let mut b = Baseline::default();
        b.files
            .entry("a.rs".to_string())
            .or_default()
            .insert("no-panic".to_string(), 0);
        let again = Baseline::parse(&b.render()).unwrap();
        assert!(again.files.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"schema\": 2, \"files\": {}}").is_err());
        assert!(Baseline::parse("{\"schema\": 1}").is_err());
        assert!(
            Baseline::parse("{\"schema\": 1, \"files\": {\"a.rs\": {\"no-panic\": -3}}}").is_err()
        );
    }
}
