//! Workspace-native static analysis.
//!
//! `cargo run -p xtask -- lint` walks every library source file under
//! `crates/`, lexes it with a real Rust lexer, applies the repo's lint
//! rules, and compares the per-file violation counts against the
//! checked-in ratchet baseline (`ci/lint-baseline.json`). The run fails
//! if any file's count rises; falling counts are reported so the
//! baseline can be tightened with `--update-baseline`.
//!
//! `cargo run -p xtask -- waivers` audits the lint waivers instead:
//! it lists every `lint: allow(…)` site with its documented reason,
//! flags stale waivers whose debt has since been paid, and fails if a
//! strict crate (one required to carry zero baselined lint debt, such
//! as the service crate) has ratcheted violations or baseline entries.
//!
//! Exit codes: 0 = clean, 1 = lint/audit failures, 2 = usage or I/O
//! error.

mod baseline;
mod json;
mod lexer;
mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use baseline::Baseline;
use rules::{check_file, RULE_NO_PANIC};

/// Crates whose library panic-site totals are tracked against the seed
/// counts recorded in the baseline.
const SEED_CRATES: [&str; 3] = ["spicenet", "core", "timan"];

/// Crates required to carry ZERO baselined lint debt: every rule hit in
/// their library code must be fixed or explicitly waived with a reason.
/// The `waivers` audit fails if one of these crates has a ratcheted
/// violation or a `ci/lint-baseline.json` entry — so no new unwaivered
/// panic site can land in the service crate behind the baseline.
const STRICT_CRATES: [&str; 1] = ["coolserved"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("xtask: error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- <lint|waivers> [--update-baseline] \
                     [--baseline <path>] [--root <path>]";

fn run(args: &[String]) -> Result<bool, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    if command != "lint" && command != "waivers" {
        return Err(format!("unknown command `{command}`; {USAGE}"));
    }
    let mut update = false;
    let mut baseline_rel = "ci/lint-baseline.json".to_string();
    let mut root = default_root();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-baseline" if command == "lint" => update = true,
            "--baseline" => {
                baseline_rel = it
                    .next()
                    .ok_or_else(|| format!("--baseline needs a path; {USAGE}"))?
                    .clone();
            }
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| format!("--root needs a path; {USAGE}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`; {USAGE}")),
        }
    }
    if command == "waivers" {
        audit_waivers(&root, &baseline_rel)
    } else {
        lint(&root, &baseline_rel, update)
    }
}

/// The workspace root, resolved from this crate's manifest directory so
/// the tool works from any cwd.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

struct FileOutcome {
    rel_path: String,
    violations: Vec<rules::Violation>,
    waived: usize,
}

fn lint(root: &Path, baseline_rel: &str, update: bool) -> Result<bool, String> {
    let crates_dir = root.join("crates");
    let mut sources = Vec::new();
    collect_rust_sources(&crates_dir, &mut sources)
        .map_err(|e| format!("walking {}: {e}", crates_dir.display()))?;
    sources.sort();

    let mut outcomes = Vec::new();
    let mut scanned = 0usize;
    for path in &sources {
        let rel_path = relative_to(path, root);
        if is_exempt_path(&rel_path) {
            continue;
        }
        scanned += 1;
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let report = check_file(&rel_path, &src);
        outcomes.push(FileOutcome {
            rel_path,
            violations: report.violations,
            waived: report.waived,
        });
    }

    // Per-file, per-rule current counts.
    let mut current: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    for o in &outcomes {
        let per_rule = current.entry(o.rel_path.clone()).or_default();
        for v in &o.violations {
            *per_rule.entry(v.rule.to_string()).or_insert(0) += 1;
        }
    }

    // Library panic-site totals per tracked crate, for the seed ratchet.
    let mut crate_panics: BTreeMap<String, usize> = BTreeMap::new();
    for name in SEED_CRATES {
        crate_panics.insert(name.to_string(), 0);
    }
    for o in &outcomes {
        if let Some(krate) = crate_of(&o.rel_path) {
            if let Some(slot) = crate_panics.get_mut(krate) {
                *slot += o
                    .violations
                    .iter()
                    .filter(|v| v.rule == RULE_NO_PANIC)
                    .count();
            }
        }
    }

    let baseline_path = root.join(baseline_rel);
    let old = if baseline_path.exists() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
    } else {
        Baseline::default()
    };

    let total_waived: usize = outcomes.iter().map(|o| o.waived).sum();
    let total_violations: usize = outcomes.iter().map(|o| o.violations.len()).sum();

    if update {
        let seed = if old.seed.is_empty() {
            // First generation: freeze today's counts as the reference.
            crate_panics.clone()
        } else {
            old.seed.clone()
        };
        let next = Baseline {
            seed,
            files: current,
        };
        std::fs::write(&baseline_path, next.render())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "xtask lint: baseline updated ({scanned} files scanned, \
             {total_violations} baselined violations, {total_waived} waived)"
        );
        print_seed_progress(&next.seed, &crate_panics);
        return Ok(true);
    }

    // Ratchet comparison: fail on any file/rule count above its allowance.
    let mut failed = false;
    let mut improvable = 0usize;
    for o in &outcomes {
        let mut by_rule: BTreeMap<&'static str, Vec<&rules::Violation>> = BTreeMap::new();
        for v in &o.violations {
            by_rule.entry(v.rule).or_default().push(v);
        }
        for (rule, list) in &by_rule {
            let allowed = old.allowance(&o.rel_path, rule);
            if list.len() > allowed {
                failed = true;
                eprintln!(
                    "{}: {} `{rule}` violation(s), baseline allows {allowed}:",
                    o.rel_path,
                    list.len()
                );
                for v in list {
                    eprintln!("  {}:{}: {}", o.rel_path, v.line, v.message);
                }
            } else if list.len() < allowed {
                improvable += 1;
            }
        }
    }
    // Files whose baselined debt is now below allowance (including gone
    // entirely) are worth tightening.
    for (path, per_rule) in &old.files {
        for (rule, &allowed) in per_rule {
            let now = current.get(path).and_then(|r| r.get(rule)).copied();
            if allowed > 0 && now.is_none() {
                improvable += 1;
            }
        }
    }

    println!(
        "xtask lint: {scanned} files scanned, {total_violations} baselined violation(s), \
         {total_waived} waived site(s)"
    );
    print_seed_progress(&old.seed, &crate_panics);
    if improvable > 0 && !failed {
        println!(
            "note: {improvable} file/rule count(s) are below the baseline; \
             run `cargo run -p xtask -- lint --update-baseline` to tighten the ratchet"
        );
    }
    if failed {
        eprintln!("xtask lint: FAILED — new violations above the ratchet baseline");
    } else {
        println!("xtask lint: OK");
    }
    Ok(!failed)
}

/// The `waivers` subcommand: lists every `lint: allow(…)` site with its
/// documented reason, flags stale waivers, and enforces the strict-crate
/// invariant — a strict crate's lint debt must be zero outside of
/// reasoned waivers, with no `ci/lint-baseline.json` entries to hide
/// behind.
fn audit_waivers(root: &Path, baseline_rel: &str) -> Result<bool, String> {
    let crates_dir = root.join("crates");
    let mut sources = Vec::new();
    collect_rust_sources(&crates_dir, &mut sources)
        .map_err(|e| format!("walking {}: {e}", crates_dir.display()))?;
    sources.sort();

    let mut rows: Vec<(String, rules::WaiverSite)> = Vec::new();
    let mut strict_hits: Vec<(String, rules::Violation)> = Vec::new();
    for path in &sources {
        let rel_path = relative_to(path, root);
        if is_exempt_path(&rel_path) {
            continue;
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let report = check_file(&rel_path, &src);
        if crate_of(&rel_path).is_some_and(|k| STRICT_CRATES.contains(&k)) {
            strict_hits.extend(
                report
                    .violations
                    .iter()
                    .cloned()
                    .map(|v| (rel_path.clone(), v)),
            );
        }
        rows.extend(report.waivers.into_iter().map(|w| (rel_path.clone(), w)));
    }

    let stale = rows.iter().filter(|(_, w)| !w.used).count();
    println!(
        "xtask waivers: {} waived site(s), {stale} stale",
        rows.len()
    );
    for (path, w) in &rows {
        let mark = if w.used {
            ""
        } else {
            "  [stale: no matching site]"
        };
        println!("  {path}:{} {} — {}{mark}", w.line, w.rule, w.reason);
    }

    let mut failed = false;
    let baseline_path = root.join(baseline_rel);
    if baseline_path.exists() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        let old =
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        for (file, per_rule) in &old.files {
            if !crate_of(file).is_some_and(|k| STRICT_CRATES.contains(&k)) {
                continue;
            }
            for (rule, &count) in per_rule {
                if count > 0 {
                    failed = true;
                    eprintln!(
                        "{file}: {count} baselined `{rule}` entr{} — strict crates must \
                         fix or waive, never ratchet",
                        if count == 1 { "y" } else { "ies" }
                    );
                }
            }
        }
    }
    for (path, v) in &strict_hits {
        failed = true;
        eprintln!(
            "{path}:{}: unwaivered `{}` in a strict crate: {}",
            v.line, v.rule, v.message
        );
    }
    if failed {
        eprintln!("xtask waivers: FAILED — strict crates carry unwaivered or baselined lint debt");
    } else {
        println!("xtask waivers: OK — strict crates are baseline-free and fully waived");
    }
    Ok(!failed)
}

fn print_seed_progress(seed: &BTreeMap<String, usize>, current: &BTreeMap<String, usize>) {
    for (krate, &was) in seed {
        let now = current.get(krate).copied().unwrap_or(0);
        if was == 0 {
            continue;
        }
        let cut = 100.0 * (was.saturating_sub(now) as f64) / (was as f64);
        println!("  {krate}: {now} library panic site(s), seed {was} ({cut:.0}% reduced)");
    }
}

/// Workspace-relative path with `/` separators.
fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// `crates/<name>/…` → `<name>`.
fn crate_of(rel_path: &str) -> Option<&str> {
    let mut parts = rel_path.split('/');
    (parts.next() == Some("crates"))
        .then(|| parts.next())
        .flatten()
}

/// Test, example, and bench trees are exempt from the library rules.
fn is_exempt_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|part| matches!(part, "tests" | "examples" | "benches"))
}

fn collect_rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemptions_cover_test_trees_only() {
        assert!(is_exempt_path("crates/core/tests/props.rs"));
        assert!(is_exempt_path("crates/coolplace/examples/pareto.rs"));
        assert!(is_exempt_path("crates/bench/benches/sweep.rs"));
        assert!(!is_exempt_path("crates/core/src/sweep.rs"));
        assert!(!is_exempt_path("crates/core/src/test_support.rs"));
    }

    #[test]
    fn crate_names_come_from_the_path() {
        assert_eq!(crate_of("crates/core/src/sweep.rs"), Some("core"));
        assert_eq!(crate_of("crates/spicenet/src/factor.rs"), Some("spicenet"));
        assert_eq!(crate_of("vendor/serde/src/lib.rs"), None);
    }

    /// End-to-end: the real workspace must lint clean against the real
    /// committed baseline. This is the same check CI runs.
    #[test]
    fn workspace_lints_clean_against_committed_baseline() {
        let root = default_root();
        if !root.join("ci/lint-baseline.json").exists() {
            return; // freshly bootstrapped tree; CI runs the binary anyway
        }
        let ok = lint(&root, "ci/lint-baseline.json", false).expect("lint run");
        assert!(
            ok,
            "workspace has lint violations above the ratchet baseline"
        );
    }

    /// End-to-end: the strict crates (the service crate) must pass the
    /// waiver audit — no baselined debt, no unwaivered panic sites.
    #[test]
    fn strict_crates_pass_the_waiver_audit() {
        let root = default_root();
        if !root.join("crates/coolserved").exists() {
            return; // freshly bootstrapped tree
        }
        let ok = audit_waivers(&root, "ci/lint-baseline.json").expect("audit run");
        assert!(ok, "strict crates carry unwaivered or baselined lint debt");
    }
}
