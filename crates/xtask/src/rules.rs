//! The rule engine: walks the token stream of one source file and
//! reports violations of the repo invariants.
//!
//! Rules:
//! - `no-panic` — no `.unwrap()` / `.expect(…)` / `panic!` / `todo!` /
//!   `unimplemented!` / `dbg!` in library code.
//! - `float-eq` — no `==` / `!=` directly against a float literal.
//! - `unsafe-code` — `unsafe` only in files on an explicit allowlist.
//! - `waiver-syntax` — `// lint:` comments must be well-formed waivers.
//!
//! Exemptions: files under `tests/`, `examples/`, `benches/` are skipped
//! entirely by the driver; `#[cfg(test)]` / `#[test]` items inside
//! library files are masked out here. Individual sites are waived with
//!
//! ```text
//! // lint: allow(no-panic, reason = "grid ids are validated at construction")
//! ```
//!
//! placed on the offending line or the line directly above it. The
//! reason is mandatory and must be non-empty: every surviving panic site
//! carries a documented invariant.

use crate::lexer::{lex, Comment, Token, TokenKind};

pub const RULE_NO_PANIC: &str = "no-panic";
pub const RULE_FLOAT_EQ: &str = "float-eq";
pub const RULE_UNSAFE: &str = "unsafe-code";
pub const RULE_WAIVER: &str = "waiver-syntax";

pub const ALL_RULES: [&str; 4] = [RULE_NO_PANIC, RULE_FLOAT_EQ, RULE_UNSAFE, RULE_WAIVER];

/// Workspace-relative paths (with `/` separators) where `unsafe` blocks
/// are permitted. Deliberately empty: the workspace also carries
/// `#![forbid]`-grade `unsafe_code = "deny"`, and any future exception
/// must land here with a review, not ad hoc.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// Outcome of linting one file.
pub struct FileReport {
    /// Violations that survive waivers and test-code masking.
    pub violations: Vec<Violation>,
    /// Sites that matched a rule but were covered by a valid waiver.
    pub waived: usize,
    /// Every well-formed waiver comment in the file, for auditing.
    pub waivers: Vec<WaiverSite>,
}

/// One well-formed `lint: allow(…)` waiver, with its documented reason
/// and whether it actually covered a rule hit on its line (a stale
/// waiver — `used == false` — marks debt that has since been paid).
#[derive(Debug, Clone)]
pub struct WaiverSite {
    pub line: u32,
    pub rule: String,
    pub reason: String,
    pub used: bool,
}

/// Lints one library source file. `rel_path` is workspace-relative with
/// `/` separators (used for the unsafe allowlist).
pub fn check_file(rel_path: &str, src: &str) -> FileReport {
    let out = lex(src);
    let (waivers, mut violations) = parse_waivers(&out.comments);
    let mask = test_exempt_mask(&out.tokens);
    let unsafe_allowed = UNSAFE_ALLOWLIST.contains(&rel_path);
    let raw = scan_tokens(&out.tokens, &mask, unsafe_allowed);

    let mut waived = 0usize;
    let mut used = vec![false; waivers.len()];
    for v in raw {
        let hit = waivers
            .iter()
            .position(|w| w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line));
        if let Some(i) = hit {
            used[i] = true;
            waived += 1;
        } else {
            violations.push(v);
        }
    }
    violations.sort_by_key(|v| (v.line, v.rule));
    let waivers = waivers
        .into_iter()
        .zip(used)
        .map(|(w, used)| WaiverSite {
            line: w.line,
            rule: w.rule,
            reason: w.reason,
            used,
        })
        .collect();
    FileReport {
        violations,
        waived,
        waivers,
    }
}

struct Waiver {
    line: u32,
    rule: String,
    reason: String,
}

/// Extracts `lint: allow(<rule>, reason = "…")` waivers from comments.
/// A comment that starts with `lint:` but does not parse is itself a
/// violation — silent typos must not mint accidental permissions.
fn parse_waivers(comments: &[Comment]) -> (Vec<Waiver>, Vec<Violation>) {
    let mut waivers = Vec::new();
    let mut violations = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => waivers.push(Waiver {
                line: c.line,
                rule,
                reason,
            }),
            Err(why) => violations.push(Violation {
                rule: RULE_WAIVER,
                line: c.line,
                message: why,
            }),
        }
    }
    (waivers, violations)
}

fn parse_allow(s: &str) -> Result<(String, String), String> {
    const SHAPE: &str = "expected `lint: allow(<rule>, reason = \"…\")`";
    let body = s
        .strip_prefix("allow(")
        .and_then(|b| b.strip_suffix(')'))
        .ok_or_else(|| SHAPE.to_string())?;
    let (rule, reason_part) = body
        .split_once(',')
        .ok_or_else(|| format!("waiver is missing a `reason` clause; {SHAPE}"))?;
    let rule = rule.trim();
    if !ALL_RULES.contains(&rule) {
        return Err(format!(
            "unknown rule `{rule}` in waiver (known: {})",
            ALL_RULES.join(", ")
        ));
    }
    let reason = reason_part
        .trim()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("malformed `reason` clause; {SHAPE}"))?;
    if reason.trim().is_empty() {
        return Err("waiver reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Marks tokens that belong to `#[cfg(test)]` / `#[test]` items so the
/// panic rules skip test code embedded in library files. An attribute
/// counts as a test gate when it mentions the bare ident `test` without
/// a `not(…)` (so `#[cfg(not(test))]` stays linted).
fn test_exempt_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let open = if inner { i + 2 } else { i + 1 };
        if !tokens.get(open).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, open, '[', ']') else {
            break;
        };
        let body = &tokens[open + 1..close];
        let gates_test =
            body.iter().any(|t| t.is_ident("test")) && !body.iter().any(|t| t.is_ident("not"));
        if !gates_test {
            i = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]` applies to the enclosing scope; from a
            // file-level linter's view that is the rest of the file.
            for m in mask.iter_mut().skip(i) {
                *m = true;
            }
            return mask;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = close + 1;
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(tokens, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let end = item_end(tokens, j);
        let stop = end.min(tokens.len().saturating_sub(1));
        for m in mask.iter_mut().take(stop + 1).skip(i) {
            *m = true;
        }
        i = stop + 1;
    }
    mask
}

/// Index of the delimiter matching `tokens[open]`.
fn matching(tokens: &[Token], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the last token of the item starting at `start`: either a
/// `;` at top level or the `}` closing the item's body.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut paren = 0usize;
    let mut bracket = 0usize;
    let mut k = start;
    while k < tokens.len() {
        match &tokens[k].kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren = paren.saturating_sub(1),
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
            TokenKind::Punct(';') if paren == 0 && bracket == 0 => return k,
            TokenKind::Punct('{') if paren == 0 && bracket == 0 => {
                return matching(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
            }
            _ => {}
        }
        k += 1;
    }
    tokens.len().saturating_sub(1)
}

const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "dbg"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

fn scan_tokens(tokens: &[Token], mask: &[bool], unsafe_allowed: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        match &t.kind {
            TokenKind::Ident { name, raw: false } => {
                let name = name.as_str();
                let next_is = |c: char| tokens.get(i + 1).is_some_and(|t| t.is_punct(c));
                if PANIC_METHODS.contains(&name)
                    && i > 0
                    && tokens[i - 1].is_punct('.')
                    && next_is('(')
                {
                    out.push(Violation {
                        rule: RULE_NO_PANIC,
                        line: t.line,
                        message: format!(
                            ".{name}() in library code; return a typed error or add a waiver"
                        ),
                    });
                } else if PANIC_MACROS.contains(&name) && next_is('!') {
                    out.push(Violation {
                        rule: RULE_NO_PANIC,
                        line: t.line,
                        message: format!(
                            "{name}! in library code; return a typed error or add a waiver"
                        ),
                    });
                } else if name == "unsafe" && !unsafe_allowed {
                    out.push(Violation {
                        rule: RULE_UNSAFE,
                        line: t.line,
                        message: "unsafe code outside the allowlist".to_string(),
                    });
                }
            }
            TokenKind::EqEq | TokenKind::Ne => {
                let prev_float = i > 0 && tokens[i - 1].kind == TokenKind::Float;
                let next_float = tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Float);
                if prev_float || next_float {
                    out.push(Violation {
                        rule: RULE_FLOAT_EQ,
                        line: t.line,
                        message: "exact equality against a float literal; compare with a tolerance"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<(&'static str, u32)> {
        check_file("crates/x/src/lib.rs", src)
            .violations
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn flags_panic_sites() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n    todo!();\n    unimplemented!();\n    dbg!(z);\n}\n";
        let v = violations(src);
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|(r, _)| *r == RULE_NO_PANIC));
        assert_eq!(v[0].1, 2);
    }

    #[test]
    fn ignores_lookalikes() {
        // unwrap_or, a field named expect, should_panic, std::panic path.
        let src = "fn f() {\n    x.unwrap_or(0);\n    x.unwrap_or_else(|| 0);\n    let y = s.expect;\n    std::panic::catch_unwind(f);\n}\n#[should_panic(expected = \"x\")]\nfn t() {}\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn flags_float_eq_only_against_literals() {
        assert_eq!(
            violations("fn f() { if x == 0.0 {} }"),
            vec![(RULE_FLOAT_EQ, 1)]
        );
        assert_eq!(
            violations("fn f() { if 1e-6 != y {} }"),
            vec![(RULE_FLOAT_EQ, 1)]
        );
        assert!(violations("fn f() { if x == y {} }").is_empty());
        assert!(violations("fn f() { if x == 0 {} }").is_empty());
        assert!(violations("fn f() { if x <= 0.0 {} }").is_empty());
    }

    #[test]
    fn flags_unsafe_and_respects_raw_idents() {
        assert_eq!(violations("unsafe fn f() {}"), vec![(RULE_UNSAFE, 1)]);
        assert!(violations("fn f(r#unsafe: u8) {}").is_empty());
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(); }\n}\nfn lib2() { y.unwrap(); }\n";
        assert_eq!(violations(src), vec![(RULE_NO_PANIC, 6)]);
    }

    #[test]
    fn cfg_test_with_stacked_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { x.unwrap(); } }\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn test_attribute_exempts_single_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }\n";
        assert_eq!(violations(src), vec![(RULE_NO_PANIC, 3)]);
    }

    #[test]
    fn cfg_not_test_stays_linted() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }\n";
        assert_eq!(violations(src), vec![(RULE_NO_PANIC, 2)]);
    }

    #[test]
    fn waiver_on_previous_line_covers_site() {
        let src = "fn f() {\n    // lint: allow(no-panic, reason = \"checked above\")\n    x.unwrap();\n}\n";
        let rep = check_file("crates/x/src/lib.rs", src);
        assert!(rep.violations.is_empty());
        assert_eq!(rep.waived, 1);
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "fn f() {\n    x.unwrap(); // lint: allow(no-panic, reason = \"checked\")\n}\n";
        let rep = check_file("crates/x/src/lib.rs", src);
        assert!(rep.violations.is_empty());
        assert_eq!(rep.waived, 1);
    }

    #[test]
    fn waiver_sites_carry_reason_and_usage() {
        let src = "fn f() {\n    // lint: allow(no-panic, reason = \"checked above\")\n    x.unwrap();\n    // lint: allow(float-eq, reason = \"stale\")\n}\n";
        let rep = check_file("crates/x/src/lib.rs", src);
        assert_eq!(rep.waivers.len(), 2);
        assert_eq!(rep.waivers[0].rule, RULE_NO_PANIC);
        assert_eq!(rep.waivers[0].reason, "checked above");
        assert!(rep.waivers[0].used, "covering waiver must read as used");
        assert!(!rep.waivers[1].used, "idle waiver must read as stale");
    }

    #[test]
    fn waiver_does_not_leak_to_later_lines() {
        let src = "fn f() {\n    // lint: allow(no-panic, reason = \"only the next line\")\n    x.unwrap();\n    y.unwrap();\n}\n";
        assert_eq!(violations(src), vec![(RULE_NO_PANIC, 4)]);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_apply() {
        let src =
            "fn f() {\n    // lint: allow(float-eq, reason = \"mismatched\")\n    x.unwrap();\n}\n";
        assert_eq!(violations(src), vec![(RULE_NO_PANIC, 3)]);
    }

    #[test]
    fn malformed_waivers_are_violations() {
        for src in [
            "// lint: allow(no-panic)\n",
            "// lint: allow(no-panic, reason = \"\")\n",
            "// lint: allow(bogus-rule, reason = \"x\")\n",
            "// lint: permit(no-panic, reason = \"x\")\n",
        ] {
            assert_eq!(violations(src), vec![(RULE_WAIVER, 1)], "src: {src}");
        }
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = "fn f() -> &'static str {\n    // panic! in a comment\n    \"say panic!(x.unwrap())\"\n}\n";
        assert!(violations(src).is_empty());
    }
}
