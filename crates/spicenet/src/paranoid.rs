//! Dynamic numeric-invariant checks, compiled in only under the
//! `paranoid` cargo feature.
//!
//! The static lint pass (`cargo run -p xtask -- lint`) proves the solver
//! stack cannot *panic by accident*; this module makes it *fail loudly
//! on purpose* when a numeric invariant breaks — non-finite matvec
//! outputs, operators that are not symmetric positive definite, CG
//! iterations that diverge, or converged solutions that do not conserve
//! the injected power. Everything here costs real time per iteration,
//! so it is compiled out by default and exercised by a dedicated CI job
//! (`cargo test -p spicenet --features paranoid`, etc.). Lane- or
//! thread-parallel kernels tend to corrupt results silently rather than
//! crash; these checks are the tripwire future perf work lands on.

/// A CG iterate whose relative residual exceeds this factor is declared
/// divergent. The preconditioned residual is not strictly monotone, but
/// starting from `x0 = 0` the relative residual is 1 and a healthy
/// iteration never wanders orders of magnitude above it.
pub const CG_DIVERGENCE_FACTOR: f64 = 1e4;

/// Panics if any entry of `xs` is NaN or infinite.
///
/// # Panics
///
/// On the first non-finite entry, naming `what` and the index.
pub fn check_finite(what: &str, xs: &[f64]) {
    for (i, v) in xs.iter().enumerate() {
        assert!(
            v.is_finite(),
            "paranoid: non-finite value {v} at index {i} in {what}"
        );
    }
}

/// Panics if a relative residual has diverged past
/// [`CG_DIVERGENCE_FACTOR`] or gone non-finite.
///
/// # Panics
///
/// When `rel` is non-finite or exceeds the divergence cap.
pub fn check_residual(what: &str, iteration: usize, rel: f64) {
    assert!(
        rel.is_finite() && rel <= CG_DIVERGENCE_FACTOR,
        "paranoid: CG residual diverged in {what}: relative residual {rel} at iteration {iteration}"
    );
}

/// Power-conservation check at convergence: the residual `r = b − A·x`
/// is the *unbalanced* injection, so its net sum must vanish to within
/// the convergence tolerance (scaled by `‖b‖·√n` for the norm
/// inequality `|Σrᵢ| ≤ √n·‖r‖ < √n·tol·‖b‖`).
///
/// # Panics
///
/// When the residual sum exceeds the tolerance-implied bound by more
/// than a 10× safety margin.
pub fn check_conservation(what: &str, residual: &[f64], norm_b: f64, tol: f64) {
    check_conservation_net(what, residual.iter().sum(), residual.len(), norm_b, tol);
}

/// [`check_conservation`] for callers that have already reduced the
/// residual to its net sum — the distributed solver computes `Σrᵢ`
/// cooperatively across workers and cannot hand over one contiguous
/// residual slice.
///
/// # Panics
///
/// Same as [`check_conservation`].
pub fn check_conservation_net(what: &str, net: f64, len: usize, norm_b: f64, tol: f64) {
    let bound = 10.0 * tol * norm_b * (len.max(1) as f64).sqrt();
    assert!(
        net.abs() <= bound,
        "paranoid: converged solve does not conserve injections in {what}: \
         |Σr| = {} exceeds bound {bound}",
        net.abs()
    );
}

/// A deterministic pseudo-random probe vector with entries in `[-1, 1]`
/// (xorshift64*; no external RNG dependency, reproducible across runs).
pub fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64;
            u / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Spot-checks that the operator behind `apply` is symmetric positive
/// definite on a handful of probe vectors: `xᵀ(Ay) = yᵀ(Ax)` to
/// rounding, and `xᵀAx > 0`. Probes catch assembly bugs (a one-sided
/// coupling update, a sign slip) without the O(n²) cost of a full
/// symmetry audit.
///
/// # Panics
///
/// When a probe pair violates symmetry beyond a rounding-scaled bound
/// or a probe's quadratic form is not strictly positive.
pub fn spot_check_spd(what: &str, n: usize, mut apply: impl FnMut(&[f64]) -> Vec<f64>) {
    if n == 0 {
        return;
    }
    let probes = [
        (
            probe_vector(n, 0x9E37_79B9_7F4A_7C15),
            probe_vector(n, 0xD1B5_4A32_D192_ED03),
        ),
        (
            probe_vector(n, 0x8AF8_63C1_27F1_9B75),
            probe_vector(n, 0xC2B2_AE3D_27D4_EB4F),
        ),
    ];
    for (x, y) in &probes {
        let ax = apply(x);
        let ay = apply(y);
        check_finite("SPD probe matvec", &ax);
        let xt_ay: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
        let yt_ax: f64 = y.iter().zip(&ax).map(|(a, b)| a * b).sum();
        let scale = xt_ay.abs().max(yt_ax.abs()).max(1e-30);
        assert!(
            (xt_ay - yt_ax).abs() <= 1e-10 * scale,
            "paranoid: {what} is not symmetric: xᵀAy = {xt_ay} vs yᵀAx = {yt_ax}"
        );
        let xt_ax: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
        assert!(
            xt_ax > 0.0,
            "paranoid: {what} is not positive definite: xᵀAx = {xt_ax}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_vectors_are_deterministic_and_bounded() {
        let a = probe_vector(64, 42);
        let b = probe_vector(64, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
        // Not degenerate: entries differ.
        assert!(a.iter().any(|&v| (v - a[0]).abs() > 1e-3));
    }

    #[test]
    fn spd_spot_check_accepts_identity() {
        spot_check_spd("identity", 32, |v| v.to_vec());
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn spd_spot_check_rejects_asymmetric() {
        // A shift operator is maximally asymmetric.
        spot_check_spd("shift", 8, |v| {
            let mut out = vec![0.0; v.len()];
            out[1..].copy_from_slice(&v[..v.len() - 1]);
            out
        });
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn spd_spot_check_rejects_negated_identity() {
        spot_check_spd("negated identity", 8, |v| v.iter().map(|x| -x).collect());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn finite_check_catches_nan() {
        check_finite("unit test", &[0.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "does not conserve")]
    fn conservation_check_catches_leaks() {
        check_conservation("unit test", &[1.0, 1.0, 1.0], 1.0, 1e-9);
    }
}
