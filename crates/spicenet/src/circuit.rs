use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::CircuitError;
use crate::mna::SolveOptions;
use crate::{DcSolution, SolveError};

geom::define_id!(
    /// A named circuit node (ground is represented separately by
    /// [`NodeRef::Ground`]).
    pub struct NodeId
);

/// Reference to a circuit node or the implicit ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRef {
    /// The global reference node (0 V).
    Ground,
    /// A named node created with [`Circuit::node`].
    Node(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct Resistor {
    pub a: NodeRef,
    pub b: NodeRef,
    pub ohms: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct CurrentSource {
    /// Current is pulled out of `from`…
    pub from: NodeRef,
    /// …and injected into `to`.
    pub to: NodeRef,
    pub amps: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct VoltageSource {
    pub pos: NodeRef,
    pub neg: NodeRef,
    pub volts: f64,
}

/// A linear DC circuit: resistors, independent current sources and
/// independent voltage sources over named nodes.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Circuit {
    node_names: Vec<String>,
    #[serde(skip)]
    by_name: HashMap<String, NodeId>,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) isources: Vec<CurrentSource>,
    pub(crate) vsources: Vec<VoltageSource>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Interns a node by name, creating it on first use.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = NodeId::new(self.node_names.len());
        self.by_name.insert(name.clone(), id);
        self.node_names.push(name);
        id
    }

    /// Looks up a node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements (R + I + V).
    pub fn element_count(&self) -> usize {
        self.resistors.len() + self.isources.len() + self.vsources.len()
    }

    fn check_ref(&self, r: NodeRef) -> Result<(), CircuitError> {
        match r {
            NodeRef::Ground => Ok(()),
            NodeRef::Node(id) if id.index() < self.node_names.len() => Ok(()),
            NodeRef::Node(id) => Err(CircuitError::UnknownNode { node: id }),
        }
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance, self-loops, and
    /// references to nodes not created by this circuit.
    pub fn resistor(&mut self, a: NodeRef, b: NodeRef, ohms: f64) -> Result<(), CircuitError> {
        self.check_ref(a)?;
        self.check_ref(b)?;
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(CircuitError::InvalidValue {
                what: "resistance",
                value: ohms,
            });
        }
        if a == b {
            return Err(CircuitError::SelfLoop);
        }
        self.resistors.push(Resistor { a, b, ohms });
        Ok(())
    }

    /// Adds an independent current source pulling `amps` out of `from` and
    /// injecting it into `to`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite current, self-loops and unknown nodes.
    pub fn current_source(
        &mut self,
        from: NodeRef,
        to: NodeRef,
        amps: f64,
    ) -> Result<(), CircuitError> {
        self.check_ref(from)?;
        self.check_ref(to)?;
        if !amps.is_finite() {
            return Err(CircuitError::InvalidValue {
                what: "current",
                value: amps,
            });
        }
        if from == to {
            return Err(CircuitError::SelfLoop);
        }
        self.isources.push(CurrentSource { from, to, amps });
        Ok(())
    }

    /// Adds an independent voltage source holding `pos - neg = volts`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite voltage, self-loops and unknown nodes.
    pub fn voltage_source(
        &mut self,
        pos: NodeRef,
        neg: NodeRef,
        volts: f64,
    ) -> Result<(), CircuitError> {
        self.check_ref(pos)?;
        self.check_ref(neg)?;
        if !volts.is_finite() {
            return Err(CircuitError::InvalidValue {
                what: "voltage",
                value: volts,
            });
        }
        if pos == neg {
            return Err(CircuitError::SelfLoop);
        }
        self.vsources.push(VoltageSource { pos, neg, volts });
        Ok(())
    }

    /// Computes the DC operating point.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when the system is singular (floating
    /// subcircuits, no path to a reference), the iterative solver fails to
    /// converge, or the circuit is empty.
    pub fn solve(&self, options: SolveOptions) -> Result<DcSolution, SolveError> {
        crate::mna::solve(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning_is_idempotent() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.node_name(a), "a");
    }

    #[test]
    fn invalid_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(c.resistor(NodeRef::Node(a), NodeRef::Ground, bad).is_err());
        }
    }

    #[test]
    fn self_loop_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert_eq!(
            c.resistor(NodeRef::Node(a), NodeRef::Node(a), 1.0),
            Err(CircuitError::SelfLoop)
        );
        assert_eq!(
            c.current_source(NodeRef::Ground, NodeRef::Ground, 1.0),
            Err(CircuitError::SelfLoop)
        );
    }

    #[test]
    fn foreign_node_rejected() {
        let mut c = Circuit::new();
        let bogus = NodeId::new(5);
        assert!(matches!(
            c.resistor(NodeRef::Node(bogus), NodeRef::Ground, 1.0),
            Err(CircuitError::UnknownNode { .. })
        ));
    }
}
