//! Spectral tier-0 solver: fast cosine transforms (DCT-II / DCT-III via a
//! mixed-radix FFT) and a *direct* solver for laterally homogeneous
//! stencil stacks.
//!
//! A layered die stack whose lateral conductances are uniform within each
//! layer diagonalizes in the cosine basis: the DCT-II vectors
//! `cos(πk(2j+1)/2n)` are exactly the eigenvectors of the 1-D Neumann
//! coupling matrix `g·tridiag(−1, [1,2,…,2,1], −1)`, with eigenvalues
//! `g·(2 − 2cos(πk/n))`. Transforming the right-hand side plane by plane
//! therefore turns the 3-D solve into `nx·ny` independent vertical
//! problems — one Thomas sweep per `(kx, ky)` mode — making the solve
//! direct (exact, no iteration) at near `O(n log n)`.
//!
//! Everything here is dependency-free and, like [`crate::pool::dot_wide`],
//! uses a fixed, shape-pure butterfly/summation order: each row, column,
//! and mode is processed by identical scalar code regardless of how the
//! work is partitioned, so results are bit-identical at any thread count.
//! That contract is load-bearing — `Flow::content_key` and the coolserved
//! disk cache key results by solved bits.

use crate::stencil::{StencilOperator, StencilSystem};

/// Minimal complex scalar for the internal FFT (no external deps).
#[derive(Clone, Copy, Debug, Default)]
struct Complex {
    re: f64,
    im: f64,
}

impl Complex {
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// Reads `exp(−2πi·idx/(4n))` from the plan table, conjugated for the
/// inverse transform. The single 4n-entry table serves every recursion
/// level (all sub-sizes divide `n`) *and* the DCT post-twiddle
/// `exp(−iπk/2n)`, so forward and inverse share identical constants —
/// part of the bit-identity story.
#[inline]
fn twiddle(tw: &[Complex], idx: usize, conj: bool) -> Complex {
    let w = tw[idx];
    if conj {
        Complex {
            re: w.re,
            im: -w.im,
        }
    } else {
        w
    }
}

/// Decimation-in-time FFT of `m` points read from `src` at `stride`,
/// written to `out[0..m]`. `step` is the table stride for the current
/// sub-size (`4n/m`); odd sub-sizes fall back to a naive DFT, which
/// admits every even-composite length (20 = 4·5, 28 = 4·7, …). The
/// recursion shape depends only on `m`, never on the data or the caller's
/// threading, so the floating-point evaluation order is fixed.
fn fft_rec(
    src: &[Complex],
    stride: usize,
    out: &mut [Complex],
    m: usize,
    step: usize,
    conj: bool,
    tw: &[Complex],
) {
    if m == 1 {
        out[0] = src[0];
        return;
    }
    if m % 2 == 1 {
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = Complex::default();
            for j in 0..m {
                let w = twiddle(tw, (j * k) % m * step, conj);
                acc = acc.add(src[j * stride].mul(w));
            }
            *o = acc;
        }
        return;
    }
    let h = m / 2;
    let (lo, hi) = out.split_at_mut(h);
    fft_rec(src, stride * 2, lo, h, step * 2, conj, tw);
    fft_rec(&src[stride..], stride * 2, hi, h, step * 2, conj, tw);
    for k in 0..h {
        let w = twiddle(tw, k * step, conj);
        let t = w.mul(hi[k]);
        let e = lo[k];
        lo[k] = e.add(t);
        hi[k] = e.sub(t);
    }
}

/// Reusable FFT buffers for one transform length (grown on demand).
/// Workers allocate one per team member; none of the transform entry
/// points allocate per call once the scratch has warmed up.
#[derive(Clone, Debug, Default)]
pub struct DctScratch {
    a: Vec<Complex>,
    b: Vec<Complex>,
}

impl DctScratch {
    /// An empty scratch; buffers grow to fit the first plan that uses it.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.a.len() < n {
            self.a.resize(n, Complex::default());
            self.b.resize(n, Complex::default());
        }
    }
}

/// A fixed-length DCT-II / DCT-III plan (Makhoul's length-`n` FFT
/// formulation). Supported lengths are 1 and any even `n` — the sweep
/// mesh band (12…512) is entirely even; odd meshes simply do not qualify
/// and stay on the multigrid path.
#[derive(Clone, Debug)]
pub struct DctPlan {
    n: usize,
    /// `tw[i] = exp(−2πi·i/(4n))`, length `4n`.
    tw: Vec<Complex>,
}

impl DctPlan {
    /// Whether a transform of length `n` is available.
    pub fn supported(n: usize) -> bool {
        n == 1 || (n > 0 && n.is_multiple_of(2))
    }

    /// Builds a plan, or `None` for unsupported lengths (0 or odd > 1).
    pub fn new(n: usize) -> Option<DctPlan> {
        if !Self::supported(n) {
            return None;
        }
        let q = 4 * n;
        let tw = (0..q)
            .map(|i| {
                let ang = -2.0 * std::f64::consts::PI * i as f64 / q as f64;
                Complex {
                    re: ang.cos(),
                    im: ang.sin(),
                }
            })
            .collect();
        Some(DctPlan { n, tw })
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the trivial length-0 plan (never constructed; kept
    /// for the `len`/`is_empty` API convention).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place unnormalized DCT-II: `X[k] = Σⱼ x[j]·cos(πk(2j+1)/2n)`.
    pub fn forward(&self, x: &mut [f64], s: &mut DctScratch) {
        let n = self.n;
        debug_assert_eq!(x.len(), n);
        if n == 1 {
            return;
        }
        s.ensure(n);
        let DctScratch { a, b } = s;
        let (a, b) = (&mut a[..n], &mut b[..n]);
        // Makhoul reordering: evens ascending, odds descending.
        for j in 0..n / 2 {
            a[j] = Complex {
                re: x[2 * j],
                im: 0.0,
            };
            a[n - 1 - j] = Complex {
                re: x[2 * j + 1],
                im: 0.0,
            };
        }
        fft_rec(a, 1, b, n, 4, false, &self.tw);
        for (k, v) in x.iter_mut().enumerate() {
            let w = self.tw[k];
            *v = w.re * b[k].re - w.im * b[k].im;
        }
    }

    /// In-place scaled DCT-III, the exact inverse of [`Self::forward`]:
    /// `x[j] = (X[0] + 2·Σ_{k≥1} X[k]·cos(πk(2j+1)/2n)) / n`.
    pub fn inverse(&self, x: &mut [f64], s: &mut DctScratch) {
        let n = self.n;
        debug_assert_eq!(x.len(), n);
        if n == 1 {
            return;
        }
        s.ensure(n);
        let DctScratch { a, b } = s;
        let (a, b) = (&mut a[..n], &mut b[..n]);
        a[0] = Complex { re: x[0], im: 0.0 };
        for k in 1..n {
            let w = self.tw[k];
            let v = Complex {
                re: x[k],
                im: -x[n - k],
            };
            a[k] = Complex {
                re: w.re,
                im: -w.im,
            }
            .mul(v);
        }
        fft_rec(a, 1, b, n, 4, true, &self.tw);
        let inv_n = 1.0 / n as f64;
        for j in 0..n / 2 {
            x[2 * j] = b[j].re * inv_n;
            x[2 * j + 1] = b[n - 1 - j].re * inv_n;
        }
    }
}

/// Per-layer conductance profile of a laterally homogeneous operator.
struct LayerProfile {
    gxl: Vec<f64>,
    gyl: Vec<f64>,
    gzi: Vec<f64>,
    leak: Vec<f64>,
}

/// Extracts the layer profile iff the operator is *bitwise* laterally
/// homogeneous. Every `StencilOperator` is assembled by
/// `StencilOperator::new`, which derives `diag` and the Thomas pivots
/// from `gx/gy/gz/leak` alone — so uniformity of those four primitive
/// arrays fully determines the operator. Comparison is on bits
/// (`to_bits`) on purpose: qualification must be exact, and it sidesteps
/// float `==` while staying conservative about `-0.0`.
fn exact_profile(op: &StencilOperator) -> Option<LayerProfile> {
    let (nx, ny, nz) = (op.nx, op.ny, op.nz);
    let gxl: Vec<f64> = (0..nz)
        .map(|iz| if nx > 1 { op.gx[iz] } else { 0.0 })
        .collect();
    let gyl: Vec<f64> = (0..nz)
        .map(|iz| if ny > 1 { op.gy[iz] } else { 0.0 })
        .collect();
    let gzi: Vec<f64> = (0..nz)
        .map(|iz| if iz + 1 < nz { op.gz[iz] } else { 0.0 })
        .collect();
    let leak: Vec<f64> = op.leak[..nz].to_vec();
    for iy in 0..ny {
        for ix in 0..nx {
            let base = (iy * nx + ix) * nz;
            for iz in 0..nz {
                let i = base + iz;
                let want_gx = if ix + 1 < nx { gxl[iz] } else { 0.0 };
                let want_gy = if iy + 1 < ny { gyl[iz] } else { 0.0 };
                let want_gz = if iz + 1 < nz { gzi[iz] } else { 0.0 };
                if op.gx[i].to_bits() != want_gx.to_bits()
                    || op.gy[i].to_bits() != want_gy.to_bits()
                    || op.gz[i].to_bits() != want_gz.to_bits()
                    || op.leak[i].to_bits() != leak[iz].to_bits()
                {
                    return None;
                }
            }
        }
    }
    Some(LayerProfile {
        gxl,
        gyl,
        gzi,
        leak,
    })
}

/// Per-layer arithmetic means of the coupling arrays, accumulated in a
/// fixed index order. Used to build the *homogenized* operator behind the
/// spectral coarse-grid solver when the true operator does not qualify.
fn mean_profile(op: &StencilOperator) -> LayerProfile {
    let (nx, ny, nz) = (op.nx, op.ny, op.nz);
    let mut gxl = vec![0.0; nz];
    let mut gyl = vec![0.0; nz];
    let mut gzi = vec![0.0; nz];
    let mut leak = vec![0.0; nz];
    for iy in 0..ny {
        for ix in 0..nx {
            let base = (iy * nx + ix) * nz;
            for iz in 0..nz {
                let i = base + iz;
                if ix + 1 < nx {
                    gxl[iz] += op.gx[i];
                }
                if iy + 1 < ny {
                    gyl[iz] += op.gy[i];
                }
                if iz + 1 < nz {
                    gzi[iz] += op.gz[i];
                }
                leak[iz] += op.leak[i];
            }
        }
    }
    let cols = (nx * ny) as f64;
    let cx = ((nx.saturating_sub(1)) * ny).max(1) as f64;
    let cy = (nx * ny.saturating_sub(1)).max(1) as f64;
    for iz in 0..nz {
        gxl[iz] /= cx;
        gyl[iz] /= cy;
        gzi[iz] /= cols;
        leak[iz] /= cols;
    }
    LayerProfile {
        gxl,
        gyl,
        gzi,
        leak,
    }
}

/// Partial-pivot LU of a tiny dense system (the `(nz+1)²` border block).
#[derive(Clone, Debug)]
struct SmallLu {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl SmallLu {
    fn factor(n: usize, mut lu: Vec<f64>) -> Option<SmallLu> {
        debug_assert_eq!(lu.len(), n * n);
        let mut piv = Vec::with_capacity(n);
        for k in 0..n {
            let mut p = k;
            for i in k + 1..n {
                if lu[i * n + k].abs() > lu[p * n + k].abs() {
                    p = i;
                }
            }
            let pivot = lu[p * n + k];
            if !pivot.is_finite() || pivot.abs() <= 0.0 {
                return None;
            }
            piv.push(p);
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
            }
            for i in k + 1..n {
                let f = lu[i * n + k] / pivot;
                lu[i * n + k] = f;
                for j in k + 1..n {
                    lu[i * n + j] -= f * lu[k * n + j];
                }
            }
        }
        Some(SmallLu { n, lu, piv })
    }

    fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(b.len(), n);
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                b.swap(k, p);
            }
        }
        for i in 1..n {
            for j in 0..i {
                b[i] -= self.lu[i * n + j] * b[j];
            }
        }
        for i in (0..n).rev() {
            for j in i + 1..n {
                b[i] -= self.lu[i * n + j] * b[j];
            }
            b[i] /= self.lu[i * n + i];
        }
    }
}

/// The package-node coupling reduced to mode `(0, 0)`: the DCT-II of the
/// all-ones lateral profile is `nx·ny·δ_{k0}`, so the border couples
/// *only* into the zero mode. One tiny nonsymmetric `(nz+1)²` LU handles
/// it exactly.
#[derive(Clone, Debug)]
struct SpectralBorder {
    lu: SmallLu,
}

/// A factored spectral direct solver for a laterally homogeneous stencil
/// stack: forward DCT-II over both lateral axes, one Thomas tridiagonal
/// per `(kx, ky)` mode (division-free pivots, precomputed), inverse
/// DCT-III back. Construction fails (`None`) whenever the geometry does
/// not qualify — inhomogeneous coefficients, unsupported (odd > 1)
/// lateral sizes, or non-positive pivots — and callers fall back to
/// multigrid.
#[derive(Clone, Debug)]
pub struct SpectralSystem {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: DctPlan,
    plan_y: DctPlan,
    /// Vertical interface conductance per layer (`gzi[nz−1] == 0`).
    gzi: Vec<f64>,
    /// Division-free Thomas pivots, plane-major: `inv[iz·nx·ny + m]` for
    /// mode `m = ky·nx + kx`.
    inv: Vec<f64>,
    border: Option<SpectralBorder>,
}

impl SpectralSystem {
    /// Factors the full system (grid + optional package border node) iff
    /// the operator is bitwise laterally homogeneous.
    pub fn from_stencil(sys: &StencilSystem) -> Option<SpectralSystem> {
        let prof = exact_profile(&sys.op)?;
        let border = sys.border.as_ref().map(|b| (b.coupling, b.diag));
        Self::build(&sys.op, &prof, border)
    }

    /// Factors a bare (border-free) operator iff it qualifies exactly.
    pub fn from_operator(op: &StencilOperator) -> Option<SpectralSystem> {
        let prof = exact_profile(op)?;
        Self::build(op, &prof, None)
    }

    /// Factors the *homogenized* operator (per-layer mean coefficients).
    /// This is an approximation of `op` — exact when `op` already
    /// qualifies — used as a multigrid coarse-grid solver.
    pub fn homogenized(op: &StencilOperator) -> Option<SpectralSystem> {
        let prof = mean_profile(op);
        Self::build(op, &prof, None)
    }

    fn build(
        op: &StencilOperator,
        prof: &LayerProfile,
        border: Option<(f64, f64)>,
    ) -> Option<SpectralSystem> {
        let (nx, ny, nz) = (op.nx, op.ny, op.nz);
        let plan_x = DctPlan::new(nx)?;
        let plan_y = DctPlan::new(ny)?;
        let nxy = nx * ny;
        let pi = std::f64::consts::PI;
        let lam_x: Vec<f64> = (0..nx)
            .map(|k| 2.0 - 2.0 * (pi * k as f64 / nx as f64).cos())
            .collect();
        let lam_y: Vec<f64> = (0..ny)
            .map(|k| 2.0 - 2.0 * (pi * k as f64 / ny as f64).cos())
            .collect();
        // Vertical-only part of the modal diagonal; the lateral part is
        // `gxl·λx(kx) + gyl·λy(ky)` (zero at the zero mode, matching the
        // Neumann row sums of the assembled operator).
        let dz: Vec<f64> = (0..nz)
            .map(|iz| {
                let mut d = prof.leak[iz];
                if iz + 1 < nz {
                    d += prof.gzi[iz];
                }
                if iz > 0 {
                    d += prof.gzi[iz - 1];
                }
                d
            })
            .collect();
        let mut inv = vec![0.0; nz * nxy];
        for (ky, &ly) in lam_y.iter().enumerate() {
            for (kx, &lx) in lam_x.iter().enumerate() {
                let m = ky * nx + kx;
                let mut prev = 0.0;
                for iz in 0..nz {
                    let diag = dz[iz] + prof.gxl[iz] * lx + prof.gyl[iz] * ly;
                    let pivot = if iz == 0 {
                        diag
                    } else {
                        diag - prof.gzi[iz - 1] * prof.gzi[iz - 1] * prev
                    };
                    if !pivot.is_finite() || pivot <= 0.0 {
                        // Mode tridiagonal not SPD (e.g. a floating stack
                        // with zero leak) — refuse, callers use multigrid.
                        return None;
                    }
                    prev = 1.0 / pivot;
                    inv[iz * nxy + m] = prev;
                }
            }
        }
        let border = match border {
            None => None,
            Some((coupling, bdiag)) => {
                let nb = nz + 1;
                let mut mat = vec![0.0; nb * nb];
                for iz in 0..nz {
                    mat[iz * nb + iz] = dz[iz];
                    if iz + 1 < nz {
                        mat[iz * nb + iz + 1] = -prof.gzi[iz];
                        mat[(iz + 1) * nb + iz] = -prof.gzi[iz];
                    }
                }
                // Grid rows see the border scaled by the zero-mode mass
                // `nx·ny`; the border row sees the plain sum. Nonsymmetric,
                // hence LU rather than the Cholesky used elsewhere.
                mat[nb - 1] = -coupling * nxy as f64;
                mat[nz * nb] = -coupling;
                mat[nz * nb + nz] = bdiag;
                Some(SpectralBorder {
                    lu: SmallLu::factor(nb, mat)?,
                })
            }
        };
        Some(SpectralSystem {
            nx,
            ny,
            nz,
            plan_x,
            plan_y,
            gzi: prof.gzi.clone(),
            inv,
            border,
        })
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Unknown count including the border slot when present.
    pub fn unknowns(&self) -> usize {
        self.nx * self.ny * self.nz + usize::from(self.border.is_some())
    }

    /// Whether the factorization carries a package border node.
    pub fn has_border(&self) -> bool {
        self.border.is_some()
    }
}

/// Even worker bounds over `n` items, the same fixed partition rule the
/// SPMD multigrid solver uses (`bounds[w] = n·w/workers`).
fn even_bounds(n: usize, workers: usize) -> Vec<usize> {
    (0..=workers).map(|w| n * w / workers).collect()
}

/// Splits each plane of `planes` into per-worker disjoint element ranges:
/// `result[w][iz]` is worker `w`'s slice of plane `iz`.
fn split_planes<'a>(planes: &'a mut [Vec<f64>], bounds: &[usize]) -> Vec<Vec<&'a mut [f64]>> {
    let workers = bounds.len() - 1;
    let mut out: Vec<Vec<&'a mut [f64]>> = (0..workers)
        .map(|_| Vec::with_capacity(planes.len()))
        .collect();
    for plane in planes.iter_mut() {
        let mut rest: &mut [f64] = plane.as_mut_slice();
        for (w, slot) in out.iter_mut().enumerate() {
            let take = bounds[w + 1] - bounds[w];
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            slot.push(head);
            rest = tail;
        }
    }
    out
}

/// Splits one slice into per-worker chunks sized by `bounds`.
fn split_slices<'a, T>(mut rest: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let workers = bounds.len() - 1;
    let mut out = Vec::with_capacity(workers);
    for w in 0..workers {
        let take = bounds[w + 1] - bounds[w];
        let (head, tail) = rest.split_at_mut(take);
        out.push(head);
        rest = tail;
    }
    out
}

impl SpectralSystem {
    /// Direct solve. `rhs` covers the grid in the z-innermost stencil
    /// layout plus, when a border was factored, one trailing border slot;
    /// the returned vector has the same shape.
    ///
    /// The pipeline runs in five slab-parallel stages over the shared
    /// `pool` worker teams — forward row DCTs, forward column DCTs, the
    /// per-mode Thomas sweeps, inverse column DCTs, inverse row DCTs —
    /// with the border fix sequential in between. No stage performs a
    /// cross-thread reduction and every row/column/mode is transformed by
    /// identical scalar code whatever the partition, so the solution is
    /// bit-identical at any `threads`.
    pub fn solve(&self, rhs: &[f64], threads: usize) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let nxy = nx * ny;
        let ng = nxy * nz;
        let expect = ng + usize::from(self.border.is_some());
        assert_eq!(rhs.len(), expect, "spectral rhs length mismatch");
        let team = crate::pool::effective_threads(threads);
        let mut planes: Vec<Vec<f64>> = vec![vec![0.0; nxy]; nz];

        // Stage 1: gather x-rows out of the z-innermost RHS and DCT them.
        {
            let t = team.min(ny);
            let row_bounds = even_bounds(ny, t);
            let elem_bounds: Vec<usize> = row_bounds.iter().map(|r| r * nx).collect();
            let ctxs = split_planes(&mut planes, &elem_bounds);
            let plan_x = &self.plan_x;
            let row_bounds = &row_bounds;
            crate::pool::run(ctxs, move |w, mut slabs: Vec<&mut [f64]>| {
                let mut scratch = DctScratch::new();
                let y0 = row_bounds[w];
                let rows = row_bounds[w + 1] - y0;
                for (iz, slab) in slabs.iter_mut().enumerate() {
                    for r in 0..rows {
                        let iy = y0 + r;
                        let row = &mut slab[r * nx..(r + 1) * nx];
                        for (ix, v) in row.iter_mut().enumerate() {
                            *v = rhs[(iy * nx + ix) * nz + iz];
                        }
                        plan_x.forward(row, &mut scratch);
                    }
                }
            });
        }

        // Stage 2: forward DCT along y, whole planes per worker.
        self.column_pass(&mut planes, team, false);

        // Mode-(0,0) RHS must be captured before Thomas overwrites it:
        // the border fix re-solves that mode against the coupled block.
        let b00: Vec<f64> = planes.iter().map(|p| p[0]).collect();

        // Stage 3: one Thomas sweep per mode; workers own disjoint mode
        // ranges of every plane, marching z sequentially inside.
        {
            let t = team.min(nxy);
            let bounds = even_bounds(nxy, t);
            let ctxs = split_planes(&mut planes, &bounds);
            let inv = &self.inv;
            let gzi = &self.gzi;
            let bounds = &bounds;
            crate::pool::run(ctxs, move |w, mut slabs: Vec<&mut [f64]>| {
                let m0 = bounds[w];
                let width = bounds[w + 1] - m0;
                for iz in 0..nz {
                    let inv_plane = &inv[iz * nxy + m0..iz * nxy + m0 + width];
                    if iz == 0 {
                        for (v, piv) in slabs[0].iter_mut().zip(inv_plane) {
                            *v *= piv;
                        }
                    } else {
                        let g = gzi[iz - 1];
                        for j in 0..width {
                            let prev = slabs[iz - 1][j];
                            slabs[iz][j] = (slabs[iz][j] + g * prev) * inv_plane[j];
                        }
                    }
                }
                for iz in (0..nz.saturating_sub(1)).rev() {
                    let g = gzi[iz];
                    let inv_plane = &inv[iz * nxy + m0..iz * nxy + m0 + width];
                    for j in 0..width {
                        let nxt = slabs[iz + 1][j];
                        slabs[iz][j] += g * inv_plane[j] * nxt;
                    }
                }
            });
        }

        // Border fix (sequential): mode (0,0) couples to the package node,
        // so its Thomas result is discarded and the (nz+1)² block solved
        // exactly instead.
        let mut xb = None;
        if let Some(border) = &self.border {
            let mut v = b00;
            v.push(rhs[ng]);
            border.lu.solve(&mut v);
            for (iz, plane) in planes.iter_mut().enumerate() {
                plane[0] = v[iz];
            }
            xb = Some(v[nz]);
        }

        // Stage 4: inverse DCT along y, whole planes per worker.
        self.column_pass(&mut planes, team, true);

        // Stage 5: inverse row DCTs, scattered straight into the
        // z-innermost output layout; workers own disjoint y-row slabs of
        // the output vector.
        let mut out = vec![0.0; expect];
        {
            let t = team.min(ny);
            let row_bounds = even_bounds(ny, t);
            let slab_bounds: Vec<usize> = row_bounds.iter().map(|r| r * nx * nz).collect();
            let slabs = split_slices(&mut out[..ng], &slab_bounds);
            let planes = &planes;
            let plan_x = &self.plan_x;
            let row_bounds = &row_bounds;
            crate::pool::run(slabs, move |w, slab: &mut [f64]| {
                let mut scratch = DctScratch::new();
                let mut row = vec![0.0; nx];
                let y0 = row_bounds[w];
                let rows = row_bounds[w + 1] - y0;
                for r in 0..rows {
                    let iy = y0 + r;
                    for (iz, plane) in planes.iter().enumerate() {
                        row.copy_from_slice(&plane[iy * nx..(iy + 1) * nx]);
                        plan_x.inverse(&mut row, &mut scratch);
                        for (ix, v) in row.iter().enumerate() {
                            slab[r * nx * nz + ix * nz + iz] = *v;
                        }
                    }
                }
            });
        }
        if let Some(v) = xb {
            out[ng] = v;
        }
        #[cfg(feature = "paranoid")]
        crate::paranoid::check_finite("spectral direct solve", &out);
        out
    }

    /// Forward (`inverse == false`) or inverse column transforms, planes
    /// distributed over the worker team.
    fn column_pass(&self, planes: &mut [Vec<f64>], team: usize, inverse: bool) {
        let (nx, ny) = (self.nx, self.ny);
        let t = team.min(planes.len());
        let bounds = even_bounds(planes.len(), t);
        let chunks = split_slices(planes, &bounds);
        let plan_y = &self.plan_y;
        crate::pool::run(chunks, move |_w, chunk: &mut [Vec<f64>]| {
            let mut scratch = DctScratch::new();
            let mut col = vec![0.0; ny];
            for plane in chunk.iter_mut() {
                for ix in 0..nx {
                    for (iy, c) in col.iter_mut().enumerate() {
                        *c = plane[iy * nx + ix];
                    }
                    if inverse {
                        plan_y.inverse(&mut col, &mut scratch);
                    } else {
                        plan_y.forward(&mut col, &mut scratch);
                    }
                    for (iy, c) in col.iter().enumerate() {
                        plane[iy * nx + ix] = *c;
                    }
                }
            }
        });
    }

    /// Sequential border-free solve into a caller slice — the multigrid
    /// coarse-solver entry point. Coarse lateral sizes are ≤ 4, so the
    /// per-call allocations inside [`Self::solve`] are a handful of
    /// sub-hundred-element vectors.
    pub(crate) fn solve_grid_into(&self, b: &[f64], x: &mut [f64]) {
        debug_assert!(self.border.is_none());
        let out = self.solve(b, 1);
        x[..out.len()].copy_from_slice(&out);
    }

    /// Lane-blocked variant of [`Self::solve_grid_into`] (node-major
    /// lanes, matching `DenseSpd::solve_block_into`).
    pub(crate) fn solve_grid_block_into(&self, b: &[f64], x: &mut [f64], k: usize) {
        let n = self.nx * self.ny * self.nz;
        let mut lane = vec![0.0; n];
        for l in 0..k {
            for (i, v) in lane.iter_mut().enumerate() {
                *v = b[i * k + l];
            }
            let out = self.solve(&lane, 1);
            for (i, v) in out.iter().enumerate() {
                x[i * k + l] = *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::LinearOperator;
    use crate::stencil::LayeredStencilSpec;

    /// Deterministic pseudo-random value in `[-1, 1]` (splitmix64 hash of
    /// the index — reproducible, no RNG dependency).
    fn noise(i: usize) -> f64 {
        let mut v = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D);
        v ^= v >> 29;
        v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        v ^= v >> 32;
        (v >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    /// O(n²) textbook DCT-II, the reference the fast path must match.
    fn naive_dct2(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                x.iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        v * (std::f64::consts::PI * k as f64 * (2 * j + 1) as f64 / (2 * n) as f64)
                            .cos()
                    })
                    .sum()
            })
            .collect()
    }

    fn assert_bits_eq(what: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{what}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{what}: bit drift at {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn dct2_matches_the_naive_reference_elementwise() {
        for &n in &[
            1usize, 2, 4, 6, 8, 10, 12, 16, 20, 28, 32, 40, 64, 80, 128, 256, 512,
        ] {
            let plan = DctPlan::new(n).unwrap();
            let mut x: Vec<f64> = (0..n).map(|i| noise(i + 31 * n)).collect();
            let want = naive_dct2(&x);
            let mut s = DctScratch::new();
            plan.forward(&mut x, &mut s);
            let scale = want.iter().fold(1.0f64, |a, v| a.max(v.abs()));
            for (k, (g, w)) in x.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-11 * scale,
                    "n={n} k={k}: fast {g} vs naive {w}"
                );
            }
        }
    }

    #[test]
    fn round_trips_are_exact_to_1e12_for_every_even_size_up_to_512() {
        let mut s = DctScratch::new();
        for n in (8..=512usize).filter(|n| n % 2 == 0) {
            let plan = DctPlan::new(n).unwrap();
            let orig: Vec<f64> = (0..n).map(|i| noise(i + 7 * n)).collect();
            let mut x = orig.clone();
            plan.forward(&mut x, &mut s);
            plan.inverse(&mut x, &mut s);
            let scale = orig.iter().fold(1.0f64, |a, v| a.max(v.abs()));
            for (j, (g, w)) in x.iter().zip(&orig).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-12 * scale,
                    "n={n} j={j}: round trip {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn odd_sizes_beyond_one_are_unsupported() {
        for &n in &[0usize, 3, 5, 7, 9, 15, 33, 511] {
            assert!(!DctPlan::supported(n), "n={n}");
            assert!(DctPlan::new(n).is_none(), "n={n}");
        }
        for &n in &[1usize, 2, 6, 14, 20, 256] {
            assert!(DctPlan::supported(n), "n={n}");
        }
    }

    #[test]
    fn small_lu_solves_a_nonsymmetric_system() {
        // A = [[0, 2, 1], [3, 1, 0], [1, 0, 4]] forces a pivot swap.
        let mat = vec![0.0, 2.0, 1.0, 3.0, 1.0, 0.0, 1.0, 0.0, 4.0];
        let lu = SmallLu::factor(3, mat).unwrap();
        let x_true = [1.5, -2.0, 0.25];
        let mut b = [
            2.0 * x_true[1] + x_true[2],
            3.0 * x_true[0] + x_true[1],
            x_true[0] + 4.0 * x_true[2],
        ];
        lu.solve(&mut b);
        for (g, w) in b.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
        // Singular matrices are refused, not mis-factored.
        assert!(SmallLu::factor(2, vec![1.0, 2.0, 2.0, 4.0]).is_none());
    }

    /// The test stack: same contrastive layer values as the stencil
    /// suite's fixture, nx≠ny on purpose.
    fn layered(nx: usize, ny: usize, package_resistance: f64) -> StencilSystem {
        StencilSystem::layered(&LayeredStencilSpec {
            nx,
            ny,
            gx_layers: &[6e-5, 4.8e-4, 4.8e-4, 2.4e-5],
            gy_layers: &[6e-5, 5.2e-4, 5.2e-4, 3.0e-5],
            gz_interfaces: &[1.2e-4, 2.6e-3, 3.1e-4],
            g_bottom: 7e-7,
            g_top: 4e-9,
            ambient: 25.0,
            package_resistance,
        })
    }

    fn check_direct_solve(sys: &StencilSystem) {
        let sp = SpectralSystem::from_stencil(sys).expect("homogeneous stack qualifies");
        assert_eq!(sp.unknowns(), sys.unknowns());
        let rhs: Vec<f64> = (0..sys.unknowns()).map(|i| noise(i + 101)).collect();
        let x = sp.solve(&rhs, 1);
        let mut ax = vec![0.0; sys.unknowns()];
        sys.apply_into(&x, &mut ax);
        let norm_b = rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        let norm_r = rhs
            .iter()
            .zip(&ax)
            .map(|(b, a)| (b - a) * (b - a))
            .sum::<f64>()
            .sqrt();
        assert!(
            norm_r <= 1e-9 * norm_b,
            "direct solve residual {:.3e} (‖b‖ {:.3e})",
            norm_r,
            norm_b
        );
    }

    #[test]
    fn direct_solve_is_exact_with_a_border_node() {
        check_direct_solve(&layered(20, 12, 157.0));
    }

    #[test]
    fn direct_solve_is_exact_without_a_border_node() {
        check_direct_solve(&layered(12, 16, 0.0));
    }

    #[test]
    fn direct_solve_handles_degenerate_lateral_sizes() {
        check_direct_solve(&layered(1, 8, 157.0));
        check_direct_solve(&layered(8, 1, 0.0));
        check_direct_solve(&layered(1, 1, 157.0));
    }

    #[test]
    fn threaded_solves_are_bit_identical_across_thread_counts() {
        let sys = layered(20, 12, 157.0);
        let sp = SpectralSystem::from_stencil(&sys).unwrap();
        let rhs: Vec<f64> = (0..sys.unknowns()).map(|i| noise(i + 55)).collect();
        let baseline = sp.solve(&rhs, 1);
        for threads in [2usize, 4] {
            let got = sp.solve(&rhs, threads);
            assert_bits_eq(
                &format!("spectral solve at {threads} threads"),
                &got,
                &baseline,
            );
        }
    }

    #[test]
    fn inhomogeneous_operators_do_not_qualify() {
        let (nx, ny, nz) = (8usize, 8usize, 3usize);
        let n = nx * ny * nz;
        let mut gx = vec![0.0; n];
        let mut gy = vec![0.0; n];
        let mut gz = vec![0.0; n];
        let leak = vec![1e-6; n];
        for iy in 0..ny {
            for ix in 0..nx {
                let base = (iy * nx + ix) * nz;
                for iz in 0..nz {
                    gx[base + iz] = 4e-4;
                    gy[base + iz] = 5e-4;
                    if iz + 1 < nz {
                        gz[base + iz] = 2e-3;
                    }
                }
            }
        }
        let uniform =
            StencilOperator::new(nx, ny, nz, gx.clone(), gy.clone(), gz.clone(), leak.clone());
        assert!(SpectralSystem::from_operator(&uniform).is_some());
        // A wrapper-ring-style lateral perturbation disqualifies the
        // direct path bit-for-bit…
        gx[(3 * nx + 3) * nz + 1] *= 1.5;
        let ring = StencilOperator::new(nx, ny, nz, gx, gy, gz, leak);
        assert!(SpectralSystem::from_operator(&ring).is_none());
        // …while the homogenized coarse-solver factorization still exists.
        assert!(SpectralSystem::homogenized(&ring).is_some());
    }

    #[test]
    fn homogenized_agrees_with_exact_on_an_already_homogeneous_operator() {
        let sys = layered(8, 8, 0.0);
        let exact = SpectralSystem::from_operator(sys.operator()).unwrap();
        let mean = SpectralSystem::homogenized(sys.operator()).unwrap();
        let rhs: Vec<f64> = (0..sys.operator().len()).map(|i| noise(i + 9)).collect();
        let a = exact.solve(&rhs, 1);
        let b = mean.solve(&rhs, 1);
        let scale = a.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for (g, w) in a.iter().zip(&b) {
            assert!((g - w).abs() <= 1e-9 * scale, "{g} vs {w}");
        }
    }
}
