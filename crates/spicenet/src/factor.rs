//! Re-usable factorization of a circuit's resistive pattern.
//!
//! The conductance matrix of a Dirichlet-reducible circuit (every voltage
//! source ideal-to-ground) depends only on the resistors and the pinned
//! voltages — not on the current sources. [`Circuit::factorize`] performs
//! the reduction, assembles the sparse SPD system and computes an
//! incomplete-Cholesky preconditioner **once**; the resulting
//! [`FactorizedCircuit`] is then re-solved against many injection vectors
//! at a fraction of the per-solve cost. This is the engine behind
//! `thermalsim::FactorizedThermalModel`, which amortizes the thermal
//! network over every candidate placement sharing a die geometry.

use crate::circuit::{Circuit, NodeId};
use crate::mna::{dirichlet_map, reduce, ReducedSystem, SolveOptions};
use crate::sparse::{preconditioned_cg, preconditioned_cg_block_grouped, Preconditioner};
use crate::{SolveError, SolveStats};

/// A circuit reduced, assembled and preconditioned once, ready to be
/// solved against many current-injection patterns.
///
/// The factorization captures the resistors, the pinned voltages and the
/// circuit's *own* current sources (as a static RHS), so
/// `factorize(c)?.solve_injections(&[])` matches `c.solve(...)` voltages
/// to within solver tolerance. Additional per-solve injections are passed
/// to [`FactorizedCircuit::solve_injections`].
///
/// The struct is plain data (`Send + Sync`), so one factorization can be
/// shared across worker threads.
///
/// # Examples
///
/// ```
/// use spicenet::{Circuit, NodeRef, SolveOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// c.resistor(NodeRef::Node(a), NodeRef::Ground, 100.0)?;
/// let f = c.factorize(SolveOptions::default())?;
/// // Re-solve the same pattern for two different injections.
/// let v1 = f.solve_injections(&[(a, 0.01)])?;
/// let v2 = f.solve_injections(&[(a, 0.03)])?;
/// assert!((v1[a.index()] - 1.0).abs() < 1e-9);
/// assert!((v2[a.index()] - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FactorizedCircuit {
    sys: ReducedSystem,
    precond: Preconditioner,
    /// Fixed couplings plus the circuit's own current sources.
    static_rhs: Vec<f64>,
    tolerance: f64,
    max_iterations: usize,
    threads: usize,
}

impl Circuit {
    /// Reduces, assembles and preconditions the circuit once, for
    /// repeated solves against varying current injections.
    ///
    /// Only `tolerance`, `max_iterations` and `threads` of `options` are
    /// honoured; the factorized path always uses the reduced sparse
    /// system. `threads` parallelizes the blocked (multi-RHS) solves
    /// over lane groups — results stay bit-identical at any thread
    /// count (see [`crate::pool`]).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::EmptyCircuit`] for an empty circuit and
    /// [`SolveError::Singular`] when a voltage source is not
    /// ideal-to-ground (no Dirichlet reduction exists) or a node has no
    /// resistive path.
    pub fn factorize(&self, options: SolveOptions) -> Result<FactorizedCircuit, SolveError> {
        if self.node_count() == 0 || self.element_count() == 0 {
            return Err(SolveError::EmptyCircuit);
        }
        let fixed = dirichlet_map(self)?.ok_or_else(|| SolveError::Singular {
            detail: "factorization requires all voltage sources grounded".to_string(),
        })?;
        let sys = reduce(self, fixed)?;
        let mut static_rhs = sys.fixed_rhs.clone();
        sys.isource_rhs_into(self, &mut static_rhs);
        let precond = Preconditioner::best(&sys.a);
        let n_red = sys.a.n();
        Ok(FactorizedCircuit {
            sys,
            precond,
            static_rhs,
            tolerance: options.tolerance,
            max_iterations: options.max_iterations.unwrap_or(20 * n_red + 100),
            threads: crate::pool::effective_threads(options.threads),
        })
    }
}

impl FactorizedCircuit {
    /// Dimension of the reduced (unknown-node) system.
    pub fn reduced_dim(&self) -> usize {
        self.sys.a.n()
    }

    /// Stored non-zeros of the reduced conductance matrix.
    pub fn nnz(&self) -> usize {
        self.sys.a.nnz()
    }

    /// Solves for per-node voltages with `injections` added on top of the
    /// circuit's own sources. Each entry injects the given current (amps,
    /// positive into the node) from ground into `node`; injections into
    /// pinned nodes are absorbed by their voltage source and ignored.
    ///
    /// Returns the full voltage vector indexed by [`NodeId::index`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotConverged`] or [`SolveError::Singular`]
    /// from the iterative solve, and [`SolveError::UnknownNode`] if an
    /// injection names a node that does not belong to the factorized
    /// circuit.
    pub fn solve_injections(&self, injections: &[(NodeId, f64)]) -> Result<Vec<f64>, SolveError> {
        self.solve_injections_stats(injections).map(|(v, _)| v)
    }

    /// Like [`FactorizedCircuit::solve_injections`], additionally
    /// returning the [`SolveStats`] of the re-solve — diagnostics for
    /// preconditioner quality.
    ///
    /// # Errors
    ///
    /// Same as [`FactorizedCircuit::solve_injections`].
    pub fn solve_injections_stats(
        &self,
        injections: &[(NodeId, f64)],
    ) -> Result<(Vec<f64>, SolveStats), SolveError> {
        let mut rhs = self.static_rhs.clone();
        for &(node, amps) in injections {
            let slot = self
                .sys
                .reduced
                .get(node.index())
                .ok_or(SolveError::UnknownNode { node })?;
            if let Some(ri) = *slot {
                rhs[ri] += amps;
            }
        }
        if self.sys.a.n() == 0 {
            let stats = SolveStats {
                iterations: 0,
                relative_residual: 0.0,
            };
            return Ok((self.sys.expand(&[]), stats));
        }
        let (x, iterations, residual) = preconditioned_cg(
            &self.sys.a,
            &rhs,
            self.tolerance,
            self.max_iterations,
            &self.precond,
        )
        .map_err(|(iterations, residual)| {
            if residual.is_infinite() {
                SolveError::Singular {
                    detail: "conductance matrix is not positive definite \
                             (floating subcircuit?)"
                        .to_string(),
                }
            } else {
                SolveError::NotConverged {
                    iterations,
                    residual,
                }
            }
        })?;
        let stats = SolveStats {
            iterations,
            relative_residual: residual,
        };
        Ok((self.sys.expand(&x), stats))
    }

    /// Solves a whole batch of injection patterns against the one
    /// factorization, amortizing every triangular sweep and matrix
    /// traversal across the batch (blocked conjugate gradients — see
    /// `preconditioned_cg_block`). Each entry behaves exactly like a
    /// [`FactorizedCircuit::solve_injections`] call; results come back in
    /// batch order.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotConverged`] / [`SolveError::Singular`]
    /// if any system of the batch fails, and [`SolveError::UnknownNode`]
    /// if an injection names a node that does not belong to the
    /// factorized circuit.
    pub fn solve_many(&self, batches: &[Vec<(NodeId, f64)>]) -> Result<Vec<Vec<f64>>, SolveError> {
        let k = batches.len();
        let n = self.sys.a.n();
        if k == 0 {
            return Ok(Vec::new());
        }
        if n == 0 {
            return Ok((0..k).map(|_| self.sys.expand(&[])).collect());
        }
        let mut block = vec![0.0f64; n * k];
        for (j, injections) in batches.iter().enumerate() {
            for (i, &s) in self.static_rhs.iter().enumerate() {
                block[i * k + j] = s;
            }
            for &(node, amps) in injections {
                let slot = self
                    .sys
                    .reduced
                    .get(node.index())
                    .ok_or(SolveError::UnknownNode { node })?;
                if let Some(ri) = *slot {
                    block[ri * k + j] += amps;
                }
            }
        }
        let (x, _) = self.run_block(&block, k)?;
        Ok((0..k)
            .map(|j| {
                let xj: Vec<f64> = (0..n).map(|i| x[i * k + j]).collect();
                self.sys.expand(&xj)
            })
            .collect())
    }

    /// Materializes selected columns of the inverse conductance matrix
    /// `G⁻¹`: column `c` is the per-node *response* (volts, or kelvin in
    /// the thermal analogy) to a **unit** current injection at node `c`,
    /// with every pinned node contributing zero. By superposition, the
    /// effect of any sparse injection change `Δp` on the solution is
    /// `Σ Δp_c · column(c)` — the engine behind
    /// `thermalsim::DeltaThermalModel`.
    ///
    /// All requested columns are solved as one blocked batch. Injections
    /// into pinned nodes are absorbed by their voltage source, so those
    /// columns are all-zero.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotConverged`] / [`SolveError::Singular`]
    /// if the blocked solve fails.
    ///
    /// # Panics
    ///
    /// Panics if a node does not belong to the factorized circuit.
    pub fn influence_columns(&self, nodes: &[NodeId]) -> Result<Vec<Vec<f64>>, SolveError> {
        self.influence_columns_with(nodes, self.tolerance)
    }

    /// Like [`FactorizedCircuit::influence_columns`] at an explicit
    /// relative tolerance. Influence columns weight *corrections* — small
    /// injection deltas on top of a fully-converged baseline — so callers
    /// superposing them can afford a much looser tolerance than the
    /// baseline solve: a `1e-6`-relative column error scales with the
    /// (small) delta and lands orders of magnitude under any physical
    /// acceptance bound, while cutting a third of the CG iterations.
    ///
    /// # Errors
    ///
    /// Same as [`FactorizedCircuit::influence_columns`].
    ///
    /// # Panics
    ///
    /// Same as [`FactorizedCircuit::influence_columns`].
    pub fn influence_columns_with(
        &self,
        nodes: &[NodeId],
        tolerance: f64,
    ) -> Result<Vec<Vec<f64>>, SolveError> {
        Ok(self
            .influence_columns_seeded(nodes, tolerance, &[])?
            .into_iter()
            .map(|(column, _)| column)
            .collect())
    }

    /// Like [`FactorizedCircuit::influence_columns_with`], additionally
    /// warm-starting each column's CG iteration from a caller-supplied
    /// seed and reporting the per-column iteration count.
    ///
    /// Influence columns of neighbouring injection points are nearly
    /// identical fields, so seeding a column from an already-materialized
    /// neighbour starts the solve at a small residual and saves a
    /// substantial fraction of the iterations (measured in the bench
    /// pipeline's `delta` section). Each seed is a full per-node vector
    /// as returned by this method; `seeds` is either empty (no seeding)
    /// or one entry per requested node.
    ///
    /// # Errors
    ///
    /// Same as [`FactorizedCircuit::influence_columns`], plus
    /// [`SolveError::UnknownNode`] for a node that does not belong to
    /// the factorized circuit.
    ///
    /// # Panics
    ///
    /// Panics if a seed's length does not match the node count.
    pub fn influence_columns_seeded(
        &self,
        nodes: &[NodeId],
        tolerance: f64,
        seeds: &[Option<&[f64]>],
    ) -> Result<Vec<(Vec<f64>, usize)>, SolveError> {
        let k = nodes.len();
        let n = self.sys.a.n();
        assert!(
            seeds.is_empty() || seeds.len() == k,
            "one seed slot per requested column"
        );
        if k == 0 {
            return Ok(Vec::new());
        }
        if n == 0 {
            return Ok((0..k).map(|_| (self.sys.expand_delta(&[]), 0)).collect());
        }
        let mut block = vec![0.0f64; n * k];
        for (j, &node) in nodes.iter().enumerate() {
            let slot = self
                .sys
                .reduced
                .get(node.index())
                .ok_or(SolveError::UnknownNode { node })?;
            if let Some(ri) = *slot {
                block[ri * k + j] = 1.0;
            }
        }
        // Compress node-space seeds into a reduced node-major x0 block.
        let x0 = if seeds.iter().any(Option::is_some) {
            let mut x0 = vec![0.0f64; n * k];
            for (j, seed) in seeds.iter().enumerate() {
                let Some(seed) = seed else { continue };
                assert_eq!(seed.len(), self.sys.reduced.len(), "seed length");
                for (i, slot) in self.sys.reduced.iter().enumerate() {
                    if let Some(ri) = *slot {
                        x0[ri * k + j] = seed[i];
                    }
                }
            }
            Some(x0)
        } else {
            None
        };
        let (x, stats) = self.run_block_seeded(&block, k, tolerance, x0.as_deref())?;
        Ok((0..k)
            .map(|j| {
                let xj: Vec<f64> = (0..n).map(|i| x[i * k + j]).collect();
                (self.sys.expand_delta(&xj), stats[j].0)
            })
            .collect())
    }

    /// Runs the blocked solver on a packed node-major RHS block and maps
    /// failures onto [`SolveError`].
    fn run_block(
        &self,
        block: &[f64],
        k: usize,
    ) -> Result<crate::sparse::BlockSolution, SolveError> {
        self.run_block_seeded(block, k, self.tolerance, None)
    }

    fn run_block_seeded(
        &self,
        block: &[f64],
        k: usize,
        tolerance: f64,
        x0: Option<&[f64]>,
    ) -> Result<crate::sparse::BlockSolution, SolveError> {
        preconditioned_cg_block_grouped(
            &self.sys.a,
            block,
            k,
            tolerance,
            self.max_iterations,
            &self.precond,
            x0,
            self.threads,
        )
        .map_err(|(iterations, residual)| {
            if residual.is_infinite() {
                SolveError::Singular {
                    detail: "conductance matrix is not positive definite \
                             (floating subcircuit?)"
                        .to_string(),
                }
            } else {
                SolveError::NotConverged {
                    iterations,
                    residual,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{Circuit, NodeRef, SolveOptions};

    /// Pinned ladder with taps, mirroring the shape of the thermal mesh.
    fn ladder(n: usize) -> (Circuit, Vec<crate::NodeId>) {
        let mut c = Circuit::new();
        let nodes: Vec<_> = (0..n).map(|i| c.node(format!("n{i}"))).collect();
        c.voltage_source(NodeRef::Node(nodes[0]), NodeRef::Ground, 25.0)
            .unwrap();
        for w in nodes.windows(2) {
            c.resistor(NodeRef::Node(w[0]), NodeRef::Node(w[1]), 10.0)
                .unwrap();
        }
        (c, nodes)
    }

    #[test]
    fn factorized_matches_direct_solve_with_own_sources() {
        let (mut c, nodes) = ladder(12);
        c.current_source(NodeRef::Ground, NodeRef::Node(nodes[7]), 0.02)
            .unwrap();
        let direct = c.solve(SolveOptions::default()).unwrap();
        let f = c.factorize(SolveOptions::default()).unwrap();
        let v = f.solve_injections(&[]).unwrap();
        for (i, (a, b)) in v.iter().zip(direct.voltages()).enumerate() {
            assert!((a - b).abs() < 1e-8, "node {i}: {a} vs {b}");
        }
    }

    #[test]
    fn injections_add_onto_static_sources() {
        let (mut c, nodes) = ladder(8);
        c.current_source(NodeRef::Ground, NodeRef::Node(nodes[3]), 0.01)
            .unwrap();
        let f = c.factorize(SolveOptions::default()).unwrap();
        // Reference: a sibling circuit carrying both sources directly.
        let (mut c2, nodes2) = ladder(8);
        c2.current_source(NodeRef::Ground, NodeRef::Node(nodes2[3]), 0.01)
            .unwrap();
        c2.current_source(NodeRef::Ground, NodeRef::Node(nodes2[6]), 0.05)
            .unwrap();
        let direct = c2.solve(SolveOptions::default()).unwrap();
        let v = f.solve_injections(&[(nodes[6], 0.05)]).unwrap();
        for (a, b) in v.iter().zip(direct.voltages()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn injection_into_pinned_node_is_absorbed() {
        let (c, nodes) = ladder(4);
        let f = c.factorize(SolveOptions::default()).unwrap();
        let base = f.solve_injections(&[]).unwrap();
        let with = f.solve_injections(&[(nodes[0], 1.0)]).unwrap();
        assert_eq!(base, with, "pinned node absorbs any injection");
    }

    #[test]
    fn non_grounded_source_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.resistor(NodeRef::Node(a), NodeRef::Ground, 1.0).unwrap();
        c.resistor(NodeRef::Node(b), NodeRef::Ground, 1.0).unwrap();
        c.voltage_source(NodeRef::Node(a), NodeRef::Node(b), 1.0)
            .unwrap();
        assert!(c.factorize(SolveOptions::default()).is_err());
    }

    #[test]
    fn empty_circuit_is_rejected() {
        assert!(Circuit::new().factorize(SolveOptions::default()).is_err());
    }

    #[test]
    fn solve_many_matches_sequential_solves() {
        let (mut c, nodes) = ladder(16);
        c.current_source(NodeRef::Ground, NodeRef::Node(nodes[2]), 0.004)
            .unwrap();
        let f = c.factorize(SolveOptions::default()).unwrap();
        let batches: Vec<Vec<(crate::NodeId, f64)>> = vec![
            vec![],
            vec![(nodes[5], 0.01)],
            vec![(nodes[5], 0.01), (nodes[11], -0.002)],
            vec![(nodes[15], 0.05)],
        ];
        let many = f.solve_many(&batches).unwrap();
        assert_eq!(many.len(), batches.len());
        for (batch, got) in batches.iter().zip(&many) {
            let want = f.solve_injections(batch).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-7, "{a} vs {b}");
            }
        }
        assert!(f.solve_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn influence_columns_superpose_onto_the_static_solution() {
        let (mut c, nodes) = ladder(12);
        c.current_source(NodeRef::Ground, NodeRef::Node(nodes[4]), 0.01)
            .unwrap();
        let f = c.factorize(SolveOptions::default()).unwrap();
        let base = f.solve_injections(&[]).unwrap();
        let cols = f
            .influence_columns(&[nodes[6], nodes[9], nodes[0]])
            .unwrap();
        // The pinned node's column is identically zero.
        assert!(cols[2].iter().all(|&v| v.abs() < 1e-12));
        // base + 0.02·col(6) − 0.003·col(9) must equal a direct re-solve.
        let direct = f
            .solve_injections(&[(nodes[6], 0.02), (nodes[9], -0.003)])
            .unwrap();
        for i in 0..base.len() {
            let superposed = base[i] + 0.02 * cols[0][i] - 0.003 * cols[1][i];
            assert!(
                (superposed - direct[i]).abs() < 1e-6,
                "node {i}: {superposed} vs {}",
                direct[i]
            );
        }
    }

    #[test]
    fn factorization_is_reusable_and_linear() {
        let (c, nodes) = ladder(10);
        let f = c.factorize(SolveOptions::default()).unwrap();
        let v1 = f.solve_injections(&[(nodes[5], 0.01)]).unwrap();
        let v2 = f.solve_injections(&[(nodes[5], 0.02)]).unwrap();
        // Rise above the 25 V pin doubles with the injection.
        for (a, b) in v1.iter().zip(&v2) {
            assert!(((b - 25.0) - 2.0 * (a - 25.0)).abs() < 1e-7);
        }
    }
}
