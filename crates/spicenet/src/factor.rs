//! Re-usable factorization of a circuit's resistive pattern.
//!
//! The conductance matrix of a Dirichlet-reducible circuit (every voltage
//! source ideal-to-ground) depends only on the resistors and the pinned
//! voltages — not on the current sources. [`Circuit::factorize`] performs
//! the reduction, assembles the sparse SPD system and computes an
//! incomplete-Cholesky preconditioner **once**; the resulting
//! [`FactorizedCircuit`] is then re-solved against many injection vectors
//! at a fraction of the per-solve cost. This is the engine behind
//! `thermalsim::FactorizedThermalModel`, which amortizes the thermal
//! network over every candidate placement sharing a die geometry.

use crate::circuit::{Circuit, NodeId};
use crate::mna::{dirichlet_map, reduce, ReducedSystem, SolveOptions};
use crate::sparse::{preconditioned_cg, Preconditioner};
use crate::SolveError;

/// A circuit reduced, assembled and preconditioned once, ready to be
/// solved against many current-injection patterns.
///
/// The factorization captures the resistors, the pinned voltages and the
/// circuit's *own* current sources (as a static RHS), so
/// `factorize(c)?.solve_injections(&[])` matches `c.solve(...)` voltages
/// to within solver tolerance. Additional per-solve injections are passed
/// to [`FactorizedCircuit::solve_injections`].
///
/// The struct is plain data (`Send + Sync`), so one factorization can be
/// shared across worker threads.
///
/// # Examples
///
/// ```
/// use spicenet::{Circuit, NodeRef, SolveOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// c.resistor(NodeRef::Node(a), NodeRef::Ground, 100.0)?;
/// let f = c.factorize(SolveOptions::default())?;
/// // Re-solve the same pattern for two different injections.
/// let v1 = f.solve_injections(&[(a, 0.01)])?;
/// let v2 = f.solve_injections(&[(a, 0.03)])?;
/// assert!((v1[a.index()] - 1.0).abs() < 1e-9);
/// assert!((v2[a.index()] - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FactorizedCircuit {
    sys: ReducedSystem,
    precond: Preconditioner,
    /// Fixed couplings plus the circuit's own current sources.
    static_rhs: Vec<f64>,
    tolerance: f64,
    max_iterations: usize,
}

impl Circuit {
    /// Reduces, assembles and preconditions the circuit once, for
    /// repeated solves against varying current injections.
    ///
    /// Only `tolerance` and `max_iterations` of `options` are honoured;
    /// the factorized path always uses the reduced sparse system.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::EmptyCircuit`] for an empty circuit and
    /// [`SolveError::Singular`] when a voltage source is not
    /// ideal-to-ground (no Dirichlet reduction exists) or a node has no
    /// resistive path.
    pub fn factorize(&self, options: SolveOptions) -> Result<FactorizedCircuit, SolveError> {
        if self.node_count() == 0 || self.element_count() == 0 {
            return Err(SolveError::EmptyCircuit);
        }
        let fixed = dirichlet_map(self)?.ok_or_else(|| SolveError::Singular {
            detail: "factorization requires all voltage sources grounded".to_string(),
        })?;
        let sys = reduce(self, fixed)?;
        let mut static_rhs = sys.fixed_rhs.clone();
        sys.isource_rhs_into(self, &mut static_rhs);
        let precond = Preconditioner::best(&sys.a);
        let n_red = sys.a.n();
        Ok(FactorizedCircuit {
            sys,
            precond,
            static_rhs,
            tolerance: options.tolerance,
            max_iterations: options.max_iterations.unwrap_or(20 * n_red + 100),
        })
    }
}

impl FactorizedCircuit {
    /// Dimension of the reduced (unknown-node) system.
    pub fn reduced_dim(&self) -> usize {
        self.sys.a.n()
    }

    /// Stored non-zeros of the reduced conductance matrix.
    pub fn nnz(&self) -> usize {
        self.sys.a.nnz()
    }

    /// Solves for per-node voltages with `injections` added on top of the
    /// circuit's own sources. Each entry injects the given current (amps,
    /// positive into the node) from ground into `node`; injections into
    /// pinned nodes are absorbed by their voltage source and ignored.
    ///
    /// Returns the full voltage vector indexed by [`NodeId::index`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotConverged`] or [`SolveError::Singular`]
    /// from the iterative solve.
    ///
    /// # Panics
    ///
    /// Panics if an injection names a node that does not belong to the
    /// factorized circuit.
    pub fn solve_injections(&self, injections: &[(NodeId, f64)]) -> Result<Vec<f64>, SolveError> {
        self.solve_injections_stats(injections).map(|(v, _, _)| v)
    }

    /// Like [`FactorizedCircuit::solve_injections`], additionally
    /// returning `(iterations, relative_residual)` of the re-solve —
    /// diagnostics for preconditioner quality.
    ///
    /// # Errors
    ///
    /// Same as [`FactorizedCircuit::solve_injections`].
    ///
    /// # Panics
    ///
    /// Same as [`FactorizedCircuit::solve_injections`].
    pub fn solve_injections_stats(
        &self,
        injections: &[(NodeId, f64)],
    ) -> Result<(Vec<f64>, usize, f64), SolveError> {
        let mut rhs = self.static_rhs.clone();
        for &(node, amps) in injections {
            let slot = self
                .sys
                .reduced
                .get(node.index())
                .expect("injection into a foreign node");
            if let Some(ri) = *slot {
                rhs[ri] += amps;
            }
        }
        if self.sys.a.n() == 0 {
            return Ok((self.sys.expand(&[]), 0, 0.0));
        }
        let (x, iterations, residual) = preconditioned_cg(
            &self.sys.a,
            &rhs,
            self.tolerance,
            self.max_iterations,
            &self.precond,
        )
        .map_err(|(iterations, residual)| {
            if residual.is_infinite() {
                SolveError::Singular {
                    detail: "conductance matrix is not positive definite \
                             (floating subcircuit?)"
                        .to_string(),
                }
            } else {
                SolveError::NotConverged {
                    iterations,
                    residual,
                }
            }
        })?;
        Ok((self.sys.expand(&x), iterations, residual))
    }
}

#[cfg(test)]
mod tests {
    use crate::{Circuit, NodeRef, SolveOptions};

    /// Pinned ladder with taps, mirroring the shape of the thermal mesh.
    fn ladder(n: usize) -> (Circuit, Vec<crate::NodeId>) {
        let mut c = Circuit::new();
        let nodes: Vec<_> = (0..n).map(|i| c.node(format!("n{i}"))).collect();
        c.voltage_source(NodeRef::Node(nodes[0]), NodeRef::Ground, 25.0)
            .unwrap();
        for w in nodes.windows(2) {
            c.resistor(NodeRef::Node(w[0]), NodeRef::Node(w[1]), 10.0)
                .unwrap();
        }
        (c, nodes)
    }

    #[test]
    fn factorized_matches_direct_solve_with_own_sources() {
        let (mut c, nodes) = ladder(12);
        c.current_source(NodeRef::Ground, NodeRef::Node(nodes[7]), 0.02)
            .unwrap();
        let direct = c.solve(SolveOptions::default()).unwrap();
        let f = c.factorize(SolveOptions::default()).unwrap();
        let v = f.solve_injections(&[]).unwrap();
        for (i, (a, b)) in v.iter().zip(direct.voltages()).enumerate() {
            assert!((a - b).abs() < 1e-8, "node {i}: {a} vs {b}");
        }
    }

    #[test]
    fn injections_add_onto_static_sources() {
        let (mut c, nodes) = ladder(8);
        c.current_source(NodeRef::Ground, NodeRef::Node(nodes[3]), 0.01)
            .unwrap();
        let f = c.factorize(SolveOptions::default()).unwrap();
        // Reference: a sibling circuit carrying both sources directly.
        let (mut c2, nodes2) = ladder(8);
        c2.current_source(NodeRef::Ground, NodeRef::Node(nodes2[3]), 0.01)
            .unwrap();
        c2.current_source(NodeRef::Ground, NodeRef::Node(nodes2[6]), 0.05)
            .unwrap();
        let direct = c2.solve(SolveOptions::default()).unwrap();
        let v = f.solve_injections(&[(nodes[6], 0.05)]).unwrap();
        for (a, b) in v.iter().zip(direct.voltages()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn injection_into_pinned_node_is_absorbed() {
        let (c, nodes) = ladder(4);
        let f = c.factorize(SolveOptions::default()).unwrap();
        let base = f.solve_injections(&[]).unwrap();
        let with = f.solve_injections(&[(nodes[0], 1.0)]).unwrap();
        assert_eq!(base, with, "pinned node absorbs any injection");
    }

    #[test]
    fn non_grounded_source_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.resistor(NodeRef::Node(a), NodeRef::Ground, 1.0).unwrap();
        c.resistor(NodeRef::Node(b), NodeRef::Ground, 1.0).unwrap();
        c.voltage_source(NodeRef::Node(a), NodeRef::Node(b), 1.0)
            .unwrap();
        assert!(c.factorize(SolveOptions::default()).is_err());
    }

    #[test]
    fn empty_circuit_is_rejected() {
        assert!(Circuit::new().factorize(SolveOptions::default()).is_err());
    }

    #[test]
    fn factorization_is_reusable_and_linear() {
        let (c, nodes) = ladder(10);
        let f = c.factorize(SolveOptions::default()).unwrap();
        let v1 = f.solve_injections(&[(nodes[5], 0.01)]).unwrap();
        let v2 = f.solve_injections(&[(nodes[5], 0.02)]).unwrap();
        // Rise above the 25 V pin doubles with the injection.
        for (a, b) in v1.iter().zip(&v2) {
            assert!(((b - 25.0) - 2.0 * (a - 25.0)).abs() < 1e-7);
        }
    }
}
