//! Dense LU with partial pivoting — the fallback path for full MNA systems
//! (voltage sources between arbitrary nodes) and a cross-check for the
//! sparse iterative path in tests.

/// Solves `A·x = b` in place via LU with partial pivoting.
///
/// `a` is row-major `n`×`n`. Returns `None` when a pivot underflows
/// (singular matrix).
pub(crate) fn lu_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    const PIVOT_EPS: f64 = 1e-13;
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_mag) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))?;
        if pivot_mag < PIVOT_EPS {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        for r in col + 1..n {
            let factor = a[r][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            let (upper_rows, lower_rows) = a.split_at_mut(r);
            for (elim, upper) in lower_rows[0][col..].iter_mut().zip(&upper_rows[col][col..]) {
                *elim -= factor * upper;
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in r + 1..n {
            acc -= a[r][c] * x[c];
        }
        x[r] = acc / a[r][r];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        // x + y = 3; x - y = 1  →  x = 2, y = 1.
        let a = vec![vec![1.0, 1.0], vec![1.0, -1.0]];
        let x = lu_solve(a, vec![3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = lu_solve(a, vec![5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(lu_solve(a, vec![1.0, 2.0]).is_none());
    }
}
