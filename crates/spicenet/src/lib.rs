//! A linear DC circuit solver — the workspace's stand-in for SPICE.
//!
//! The thermal model of the paper (from Liu et al., PATMOS'09) converts the
//! steady-state heat equation into "a netlist of resistors, current sources
//! and voltage sources" and hands it to SPICE. This crate implements
//! exactly that feature set:
//!
//! * [`Circuit`] — build a netlist of **R** / **I** / **V** elements over
//!   named nodes plus an implicit ground;
//! * [`Circuit::solve`] — a DC operating-point analysis via modified nodal
//!   analysis (MNA). Circuits whose voltage sources are all ideal-to-ground
//!   (the thermal case: ambient-temperature boundaries) are reduced by
//!   Dirichlet elimination to a symmetric positive-definite system and
//!   solved with Jacobi-preconditioned conjugate gradients; everything
//!   else falls back to a dense LU factorization of the full MNA system;
//! * [`Circuit::factorize`] — the same reduction assembled and
//!   preconditioned (incomplete Cholesky) **once**, returning a
//!   [`FactorizedCircuit`] that is re-solved against many
//!   current-injection patterns at a fraction of the per-solve cost.
//!
//! # Examples
//!
//! A 10 V source across two 1 kΩ resistors in series (voltage divider):
//!
//! ```
//! use spicenet::{Circuit, NodeRef, SolveOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Circuit::new();
//! let top = c.node("top");
//! let mid = c.node("mid");
//! c.voltage_source(NodeRef::Node(top), NodeRef::Ground, 10.0)?;
//! c.resistor(NodeRef::Node(top), NodeRef::Node(mid), 1000.0)?;
//! c.resistor(NodeRef::Node(mid), NodeRef::Ground, 1000.0)?;
//! let sol = c.solve(SolveOptions::default())?;
//! assert!((sol.voltage(NodeRef::Node(mid)) - 5.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod circuit;
mod dense;
mod error;
mod factor;
mod mna;
#[cfg(feature = "paranoid")]
pub mod paranoid;
pub mod pool;
mod solution;
mod sparse;
mod spectral;
mod stencil;

pub use circuit::{Circuit, NodeId, NodeRef};
pub use error::{CircuitError, SolveError};
pub use factor::FactorizedCircuit;
pub use mna::{Method, SolveOptions};
pub use solution::{DcSolution, SolveStats};
pub use sparse::CsrMatrix;
pub use spectral::{DctPlan, DctScratch, SpectralSystem};
pub use stencil::{
    FactorizedStencil, LayeredStencilSpec, MgWorkspace, MultigridPreconditioner, StencilFactorMeta,
    StencilOperator, StencilSystem,
};
