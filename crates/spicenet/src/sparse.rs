/// A symmetric positive-definite operator the conjugate-gradient solvers
/// can iterate against: a dimension plus single- and blocked
/// matrix-vector products. Implemented by [`CsrMatrix`] (general sparse
/// patterns) and by the structured-stencil path
/// (`crate::stencil::StencilSystem`), so both ride the same CG loop.
pub(crate) trait LinearOperator {
    /// Operator dimension.
    fn dim(&self) -> usize;
    /// `y = A·x`.
    fn apply_into(&self, x: &[f64], y: &mut [f64]);
    /// `Y = A·X` for `k` node-major vectors (`x[i*k + j]` is entry `i`
    /// of vector `j`).
    fn apply_block_into(&self, x: &[f64], y: &mut [f64], k: usize);
}

/// A symmetric positive-definite preconditioner for [`LinearOperator`]s.
///
/// Some preconditioners (the multigrid V-cycle) need mutable scratch
/// space; the CG driver allocates one [`Preconditioning::Workspace`] per
/// solve and threads it through every application, so the preconditioner
/// itself stays `&self` (and thus freely shareable across threads).
pub(crate) trait Preconditioning {
    /// Per-solve scratch state.
    type Workspace;
    /// Allocates scratch for a block of `k` right-hand sides.
    fn workspace(&self, k: usize) -> Self::Workspace;
    /// `z ≈ A⁻¹·r`.
    fn precondition_into(&self, r: &[f64], z: &mut [f64], ws: &mut Self::Workspace);
    /// Blocked `z ≈ A⁻¹·r` over `k` node-major residuals.
    fn precondition_block_into(&self, r: &[f64], z: &mut [f64], k: usize, ws: &mut Self::Workspace);
}

/// A compressed-sparse-row matrix, built from coordinate triplets.
///
/// Only what the conjugate-gradient solver needs: assembly with duplicate
/// summing, matrix-vector products, and diagonal extraction.
///
/// # Examples
///
/// ```
/// use spicenet::CsrMatrix;
///
/// // [2 -1; -1 2]
/// let m = CsrMatrix::from_triplets(2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)]);
/// let y = m.mul_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles an `n`×`n` matrix from `(row, col, value)` triplets,
    /// summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(r, c, _) in triplets {
            assert!(r < n && c < n, "triplet index out of range");
            counts[r + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0.0f64; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let k = cursor[r];
            col_idx[k] = c;
            values[k] = v;
            cursor[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_row_ptr = vec![0usize; n + 1];
        let mut out_cols = Vec::with_capacity(triplets.len());
        let mut out_vals = Vec::with_capacity(triplets.len());
        for r in 0..n {
            let lo = counts[r];
            let hi = counts[r + 1];
            let mut row: Vec<(usize, f64)> = col_idx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(c, _)| c);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for (c, v) in row {
                match merged.last_mut() {
                    Some((lc, lv)) if *lc == c => *lv += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                out_cols.push(c);
                out_vals.push(v);
            }
            out_row_ptr[r + 1] = out_cols.len();
        }
        CsrMatrix {
            n,
            row_ptr: out_row_ptr,
            col_idx: out_cols,
            values: out_vals,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// `y = A·x` into a caller-provided buffer (the CG hot loop calls
    /// this once per iteration — no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n` or `y.len() != n`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        assert_eq!(y.len(), self.n, "dimension mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// `Y = A·X` for a block of `k` vectors stored node-major
    /// (`x[i*k + j]` is entry `i` of vector `j`). One traversal of the
    /// matrix serves the whole block, which is what lets the multi-RHS
    /// solver amortize memory traffic across a batch.
    ///
    /// # Panics
    ///
    /// Panics if the block sizes do not match `n·k`.
    pub fn mul_block_into(&self, x: &[f64], y: &mut [f64], k: usize) {
        assert_eq!(x.len(), self.n * k, "dimension mismatch");
        assert_eq!(y.len(), self.n * k, "dimension mismatch");
        for (r, yr) in y.chunks_exact_mut(k).enumerate() {
            yr.fill(0.0);
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                let v = self.values[idx];
                let xc = &x[self.col_idx[idx] * k..self.col_idx[idx] * k + k];
                for (yj, xj) in yr.iter_mut().zip(xc) {
                    *yj += v * xj;
                }
            }
        }
    }

    /// The main diagonal (zeros where unstored).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (r, dr) in d.iter_mut().enumerate() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == r {
                    *dr = self.values[k];
                }
            }
        }
        d
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vec_into(x, y);
    }

    fn apply_block_into(&self, x: &[f64], y: &mut [f64], k: usize) {
        self.mul_block_into(x, y, k);
    }
}

/// Zero-fill incomplete Cholesky factor `L` (lower triangular, diagonal
/// included) of a symmetric positive-definite [`CsrMatrix`], stored
/// row-wise with columns ascending.
///
/// For the M-matrices produced by Dirichlet-reduced resistive meshes the
/// factorization is guaranteed to exist (Meijerink–van der Vorst); for
/// general SPD input it may break down, in which case [`factor`] returns
/// `None` and callers fall back to Jacobi.
///
/// [`factor`]: IncompleteCholesky::factor
#[derive(Debug, Clone)]
pub(crate) struct IncompleteCholesky {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Fraction of dropped fill lumped back into the diagonals (relaxed
/// modified IC). 1.0 is classical MIC; values slightly below avoid the
/// near-singular factors full compensation produces on meshes with
/// strong coefficient contrast (thin-layer stacks).
const MIC_RELAXATION: f64 = 0.97;

impl IncompleteCholesky {
    /// Modified IC(0) (Gustafsson): dropped fill is lumped into the
    /// diagonals of both rows it touches, preserving row sums. On mesh
    /// Laplacians this improves the preconditioned condition number from
    /// `O(h⁻²)` to `O(h⁻¹)`, roughly halving-again the iteration count
    /// of plain IC(0). Returns `None` on pivot breakdown (MIC gives up
    /// more easily than IC — callers fall back).
    ///
    /// Left-looking column algorithm. Because `a` is symmetric, the
    /// sparsity of column `j`'s lower triangle is row `j`'s upper
    /// triangle, so everything is read straight from the CSR rows.
    pub(crate) fn factor_modified(a: &CsrMatrix) -> Option<Self> {
        Self::factor_relaxed(a, MIC_RELAXATION)
    }

    pub(crate) fn factor_relaxed(a: &CsrMatrix, omega: f64) -> Option<Self> {
        let n = a.n;
        // Column-major L: column j holds rows i >= j with A[i][j] != 0.
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for j in 0..n {
            for k in a.row_ptr[j]..a.row_ptr[j + 1] {
                if a.col_idx[k] >= j {
                    row_idx.push(a.col_idx[k]);
                    values.push(a.values[k]);
                }
            }
            col_ptr.push(row_idx.len());
        }
        // Sparse accumulator for the active column + future-diagonal
        // compensation from dropped fill.
        let mut w = vec![0.0f64; n];
        let mut in_pattern = vec![usize::MAX; n];
        let mut diag_comp = vec![0.0f64; n];
        for j in 0..n {
            let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
            if hi == lo || row_idx[lo] != j {
                return None; // structurally missing diagonal
            }
            for k in lo..hi {
                let i = row_idx[k];
                w[i] = values[k];
                in_pattern[i] = j;
            }
            w[j] += diag_comp[j];
            // Columns k < j coupling into row j: the strict lower part of
            // CSR row j (pattern unchanged by zero-fill).
            for rk in a.row_ptr[j]..a.row_ptr[j + 1] {
                let k = a.col_idx[rk];
                if k >= j {
                    break; // row columns are ascending
                }
                let (klo, khi) = (col_ptr[k], col_ptr[k + 1]);
                // Find L[j][k] and the tail i >= j of column k.
                let Ok(pos) = row_idx[klo..khi].binary_search(&j) else {
                    continue;
                };
                let ljk = values[klo + pos];
                for kk in klo + pos..khi {
                    let i = row_idx[kk];
                    let update = ljk * values[kk];
                    if in_pattern[i] == j {
                        w[i] -= update;
                    } else {
                        // Dropped fill at (i, j): preserve row sums by
                        // lumping (a relaxed fraction of) it into both
                        // diagonals.
                        w[j] -= omega * update;
                        diag_comp[i] -= omega * update;
                    }
                }
            }
            let pivot = w[j];
            if pivot <= 0.0 || !pivot.is_finite() {
                return None;
            }
            let d = pivot.sqrt();
            values[lo] = d;
            for k in lo + 1..hi {
                values[k] = w[row_idx[k]] / d;
            }
        }
        // Transpose the column-major factor into the row-major lower
        // layout `apply_into` expects (columns ascending, diagonal last).
        let mut counts = vec![0usize; n + 1];
        for &i in &row_idx {
            counts[i + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut out_cols = vec![0usize; row_idx.len()];
        let mut out_vals = vec![0.0f64; row_idx.len()];
        let mut cursor = counts.clone();
        for j in 0..n {
            for k in col_ptr[j]..col_ptr[j + 1] {
                let i = row_idx[k];
                out_cols[cursor[i]] = j;
                out_vals[cursor[i]] = values[k];
                cursor[i] += 1;
            }
        }
        Some(IncompleteCholesky {
            n,
            row_ptr: counts,
            col_idx: out_cols,
            values: out_vals,
        })
    }

    /// Factors the lower triangle of `a` in its own sparsity pattern.
    /// Returns `None` when a pivot is non-positive (breakdown).
    pub(crate) fn factor(a: &CsrMatrix) -> Option<Self> {
        let n = a.n;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..n {
            for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                if a.col_idx[k] <= r {
                    col_idx.push(a.col_idx[k]);
                    values.push(a.values[k]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        // Sparse dot of rows `i` and `j` over columns < `cut`, both sorted.
        let row_dot = |values: &[f64],
                       (ilo, ihi): (usize, usize),
                       (jlo, jhi): (usize, usize),
                       cut: usize,
                       cols: &[usize]| {
            let (mut p, mut q, mut acc) = (ilo, jlo, 0.0);
            while p < ihi && q < jhi && cols[p] < cut && cols[q] < cut {
                match cols[p].cmp(&cols[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        acc += values[p] * values[q];
                        p += 1;
                        q += 1;
                    }
                }
            }
            acc
        };
        let mut diag_at = vec![usize::MAX; n];
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            for k in lo..hi {
                let j = col_idx[k];
                if j < i {
                    let s = row_dot(&values, (lo, hi), (row_ptr[j], row_ptr[j + 1]), j, &col_idx);
                    values[k] = (values[k] - s) / values[diag_at[j]];
                } else {
                    // Columns are ascending, so this is the diagonal.
                    let s: f64 = values[lo..k].iter().map(|v| v * v).sum();
                    let pivot = values[k] - s;
                    if pivot <= 0.0 || !pivot.is_finite() {
                        return None;
                    }
                    values[k] = pivot.sqrt();
                    diag_at[i] = k;
                }
            }
            if diag_at[i] == usize::MAX {
                return None; // structurally missing diagonal
            }
        }
        Some(IncompleteCholesky {
            n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Applies the preconditioner to a node-major block of `k` residuals:
    /// one forward/backward triangular sweep over the factor serves every
    /// vector of the block — the sweep cost (pointer chasing through `L`)
    /// is paid once instead of `k` times.
    pub(crate) fn apply_block_into(&self, r: &[f64], z: &mut [f64], k: usize) {
        debug_assert_eq!(r.len(), self.n * k);
        debug_assert_eq!(z.len(), self.n * k);
        // Forward: L·y = r, overwriting z with y.
        for i in 0..self.n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let (head, tail) = z.split_at_mut(i * k);
            let zi = &mut tail[..k];
            zi.copy_from_slice(&r[i * k..i * k + k]);
            for idx in lo..hi - 1 {
                let v = self.values[idx];
                let zc = &head[self.col_idx[idx] * k..self.col_idx[idx] * k + k];
                for (zj, cj) in zi.iter_mut().zip(zc) {
                    *zj -= v * cj;
                }
            }
            let d = self.values[hi - 1];
            for zj in zi.iter_mut() {
                *zj /= d;
            }
        }
        // Backward: Lᵀ·z = y, scattering column-wise over the rows of L.
        for i in (0..self.n).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let (head, tail) = z.split_at_mut(i * k);
            let zi = &mut tail[..k];
            let d = self.values[hi - 1];
            for zj in zi.iter_mut() {
                *zj /= d;
            }
            for idx in lo..hi - 1 {
                let v = self.values[idx];
                let zc = &mut head[self.col_idx[idx] * k..self.col_idx[idx] * k + k];
                for (cj, zj) in zc.iter_mut().zip(&*zi) {
                    *cj -= v * zj;
                }
            }
        }
    }

    /// Applies the preconditioner: solves `L·Lᵀ·z = r` into `z`.
    pub(crate) fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        debug_assert_eq!(z.len(), self.n);
        // Forward: L·y = r, overwriting z with y.
        for i in 0..self.n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut acc = r[i];
            for k in lo..hi - 1 {
                acc -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = acc / self.values[hi - 1];
        }
        // Backward: Lᵀ·z = y, scattering column-wise over the rows of L.
        for i in (0..self.n).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            z[i] /= self.values[hi - 1];
            let zi = z[i];
            for k in lo..hi - 1 {
                z[self.col_idx[k]] -= self.values[k] * zi;
            }
        }
    }
}

/// Preconditioner choice for [`preconditioned_cg`].
#[derive(Debug, Clone)]
pub(crate) enum Preconditioner {
    /// Diagonal scaling (stores the inverse diagonal).
    Jacobi(Vec<f64>),
    /// Zero-fill incomplete Cholesky.
    Ic0(IncompleteCholesky),
}

impl Preconditioner {
    /// Jacobi preconditioner from the matrix diagonal.
    pub(crate) fn jacobi(a: &CsrMatrix) -> Self {
        let minv = a
            .diagonal()
            .iter()
            .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Preconditioner::Jacobi(minv)
    }

    /// Strongest factorization that exists: modified IC(0), plain IC(0),
    /// then Jacobi.
    pub(crate) fn best(a: &CsrMatrix) -> Self {
        IncompleteCholesky::factor_modified(a)
            .or_else(|| IncompleteCholesky::factor(a))
            .map(Preconditioner::Ic0)
            .unwrap_or_else(|| Preconditioner::jacobi(a))
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        match self {
            Preconditioner::Jacobi(minv) => {
                for ((zi, ri), mi) in z.iter_mut().zip(r).zip(minv) {
                    *zi = ri * mi;
                }
            }
            Preconditioner::Ic0(ic) => ic.apply_into(r, z),
        }
    }

    fn apply_block_into(&self, r: &[f64], z: &mut [f64], k: usize) {
        match self {
            Preconditioner::Jacobi(minv) => {
                for (i, (zi, ri)) in z.chunks_exact_mut(k).zip(r.chunks_exact(k)).enumerate() {
                    for (zj, rj) in zi.iter_mut().zip(ri) {
                        *zj = rj * minv[i];
                    }
                }
            }
            Preconditioner::Ic0(ic) => ic.apply_block_into(r, z, k),
        }
    }
}

impl Preconditioning for Preconditioner {
    type Workspace = ();

    fn workspace(&self, _k: usize) {}

    fn precondition_into(&self, r: &[f64], z: &mut [f64], (): &mut ()) {
        self.apply_into(r, z);
    }

    fn precondition_block_into(&self, r: &[f64], z: &mut [f64], k: usize, (): &mut ()) {
        self.apply_block_into(r, z, k);
    }
}

/// Jacobi-preconditioned conjugate gradients for SPD systems (the
/// default, assembly-per-solve path).
///
/// Returns `(x, iterations, relative_residual)`.
///
/// # Errors
///
/// Returns the iteration count and final residual if the tolerance is not
/// reached within `max_iter`.
pub(crate) fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<(Vec<f64>, usize, f64), (usize, f64)> {
    preconditioned_cg(a, b, tol, max_iter, &Preconditioner::jacobi(a))
}

/// Conjugate gradients with a caller-supplied preconditioner — the
/// factorized path hands in an IC(0) factor computed once and amortized
/// over many right-hand sides. Generic over the operator and the
/// preconditioner, so the CSR + incomplete-Cholesky path and the
/// structured-stencil + multigrid path share one iteration loop.
///
/// Every dot product goes through [`crate::pool::chunked_dot`], the
/// fixed-shape reduction the threaded solvers also use — the summation
/// tree depends only on the vector length, never on how the work is
/// scheduled.
///
/// Returns `(x, iterations, relative_residual)`.
///
/// # Errors
///
/// Returns the iteration count and final residual if the tolerance is not
/// reached within `max_iter`.
pub(crate) fn preconditioned_cg<A: LinearOperator, M: Preconditioning>(
    a: &A,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    precond: &M,
) -> Result<(Vec<f64>, usize, f64), (usize, f64)> {
    let n = a.dim();
    let norm_b = crate::pool::chunked_dot(b, b).sqrt();
    if norm_b == 0.0 {
        return Ok((vec![0.0; n], 0, 0.0));
    }
    let mut ws = precond.workspace(1);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    precond.precondition_into(&r, &mut z, &mut ws);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut rz: f64 = crate::pool::chunked_dot(&r, &z);
    if !rz.is_finite() || rz <= 0.0 {
        // rᵀM⁻¹r must be positive when M is SPD and r ≠ 0; anything else
        // (indefinite preconditioner, non-finite RHS) fails the solve
        // cleanly instead of silently corrupting the iteration.
        return Err((0, f64::INFINITY));
    }
    for it in 0..max_iter {
        a.apply_into(&p, &mut ap);
        #[cfg(feature = "paranoid")]
        crate::paranoid::check_finite("preconditioned_cg matvec output", &ap);
        let pap: f64 = crate::pool::chunked_dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD (or numerically singular).
            return Err((it, f64::INFINITY));
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let norm_r = crate::pool::chunked_dot(&r, &r).sqrt();
        #[cfg(feature = "paranoid")]
        crate::paranoid::check_residual("preconditioned_cg", it + 1, norm_r / norm_b);
        if norm_r / norm_b < tol {
            #[cfg(feature = "paranoid")]
            {
                crate::paranoid::check_finite("preconditioned_cg solution", &x);
                crate::paranoid::check_conservation("preconditioned_cg", &r, norm_b, tol);
            }
            return Ok((x, it + 1, norm_r / norm_b));
        }
        precond.precondition_into(&r, &mut z, &mut ws);
        let rz_new: f64 = crate::pool::chunked_dot(&r, &z);
        if !rz_new.is_finite() || rz_new <= 0.0 {
            return Err((it + 1, norm_r / norm_b));
        }
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let norm_r = crate::pool::chunked_dot(&r, &r).sqrt();
    Err((max_iter, norm_r / norm_b))
}

/// A solved RHS block plus per-system `(iterations, relative_residual)`
/// diagnostics, as produced by [`preconditioned_cg_block`].
pub(crate) type BlockSolution = (Vec<f64>, Vec<(usize, f64)>);

/// Conjugate gradients over a block of `k` independent right-hand sides
/// sharing one matrix and one preconditioner, iterated in lockstep.
///
/// The systems stay mathematically independent — each keeps its own
/// `α`/`β`/residual — but every iteration performs **one** blocked
/// matvec and **one** blocked preconditioner application for the whole
/// batch, so the operator's data is streamed through memory once per
/// iteration instead of `k` times. Converged systems are frozen (their
/// updates zeroed) while the rest keep iterating.
///
/// `b` is node-major (`b[i*k + j]` = entry `i` of RHS `j`). An optional
/// `x0` block (same layout) warm-starts the iteration — the engine
/// behind influence-column seeding, where a neighbouring column is an
/// excellent initial guess. Systems whose RHS is zero are pinned to the
/// zero solution regardless of their seed. Returns the solution block in
/// the same layout plus per-system `(iterations, relative_residual)`
/// diagnostics.
///
/// # Errors
///
/// Returns `(iterations, residual)` of the worst offender if the matrix
/// turns out indefinite or any system misses `tol` within `max_iter`.
pub(crate) fn preconditioned_cg_block<A: LinearOperator, M: Preconditioning>(
    a: &A,
    b: &[f64],
    k: usize,
    tol: f64,
    max_iter: usize,
    precond: &M,
    x0: Option<&[f64]>,
) -> Result<BlockSolution, (usize, f64)> {
    let n = a.dim();
    assert_eq!(b.len(), n * k, "dimension mismatch");
    let mut stats = vec![(0usize, 0.0f64); k];
    if k == 0 {
        return Ok((Vec::new(), stats));
    }
    let mut norm_b = vec![0.0f64; k];
    for row in b.chunks_exact(k) {
        for (nb, bj) in norm_b.iter_mut().zip(row) {
            *nb += bj * bj;
        }
    }
    for nb in &mut norm_b {
        *nb = nb.sqrt();
    }
    // Zero RHS converges immediately; everything else is active.
    let mut active: Vec<bool> = norm_b.iter().map(|&nb| nb > 0.0).collect();
    let mut x = match x0 {
        Some(seed) => {
            assert_eq!(seed.len(), n * k, "dimension mismatch");
            let mut x = seed.to_vec();
            // A·0 = 0, so zero-RHS systems ignore their seed.
            for (j, live) in active.iter().enumerate() {
                if !live {
                    for xi in x.chunks_exact_mut(k) {
                        xi[j] = 0.0;
                    }
                }
            }
            x
        }
        None => vec![0.0f64; n * k],
    };
    if active.iter().all(|a| !a) {
        return Ok((x, stats));
    }
    let mut r = b.to_vec();
    let mut ap = vec![0.0f64; n * k];
    let mut norm_r = vec![0.0f64; k];
    if x0.is_some() {
        // r = b − A·x0; a good seed may already satisfy the tolerance.
        a.apply_block_into(&x, &mut ap, k);
        norm_r.fill(0.0);
        for (ri, api) in r.chunks_exact_mut(k).zip(ap.chunks_exact(k)) {
            for ((rj, aj), nr) in ri.iter_mut().zip(api).zip(norm_r.iter_mut()) {
                *rj -= aj;
                *nr += *rj * *rj;
            }
        }
        let mut any_active = false;
        for j in 0..k {
            if !active[j] {
                continue;
            }
            let rel = norm_r[j].sqrt() / norm_b[j];
            stats[j] = (0, rel);
            if rel < tol {
                active[j] = false;
            } else {
                any_active = true;
            }
        }
        if !any_active {
            return Ok((x, stats));
        }
    }
    let mut ws = precond.workspace(k);
    let mut z = vec![0.0f64; n * k];
    precond.precondition_block_into(&r, &mut z, k, &mut ws);
    let mut p = z.clone();
    let mut rz = vec![0.0f64; k];
    for (ri, zi) in r.chunks_exact(k).zip(z.chunks_exact(k)) {
        for ((rzj, rj), zj) in rz.iter_mut().zip(ri).zip(zi) {
            *rzj += rj * zj;
        }
    }
    let mut pap = vec![0.0f64; k];
    let mut alpha = vec![0.0f64; k];
    for (j, live) in active.iter().enumerate() {
        if *live && (!rz[j].is_finite() || rz[j] <= 0.0) {
            // Preconditioner not SPD on this residual (or non-finite
            // RHS): fail the whole block cleanly.
            return Err((0, f64::INFINITY));
        }
    }
    for it in 0..max_iter {
        a.apply_block_into(&p, &mut ap, k);
        #[cfg(feature = "paranoid")]
        crate::paranoid::check_finite("preconditioned_cg_block matvec output", &ap);
        pap.fill(0.0);
        for (pi, api) in p.chunks_exact(k).zip(ap.chunks_exact(k)) {
            for ((pj, aj), acc) in pi.iter().zip(api).zip(pap.iter_mut()) {
                *acc += pj * aj;
            }
        }
        for j in 0..k {
            if active[j] && pap[j] <= 0.0 {
                // Not SPD (or numerically singular).
                return Err((it, f64::INFINITY));
            }
            alpha[j] = if active[j] { rz[j] / pap[j] } else { 0.0 };
        }
        norm_r.fill(0.0);
        for ((xi, ri), (pi, api)) in x
            .chunks_exact_mut(k)
            .zip(r.chunks_exact_mut(k))
            .zip(p.chunks_exact(k).zip(ap.chunks_exact(k)))
        {
            for j in 0..k {
                xi[j] += alpha[j] * pi[j];
                ri[j] -= alpha[j] * api[j];
                norm_r[j] += ri[j] * ri[j];
            }
        }
        let mut any_active = false;
        for j in 0..k {
            if !active[j] {
                continue;
            }
            let rel = norm_r[j].sqrt() / norm_b[j];
            #[cfg(feature = "paranoid")]
            crate::paranoid::check_residual("preconditioned_cg_block", it + 1, rel);
            stats[j] = (it + 1, rel);
            if rel < tol {
                active[j] = false;
            } else {
                any_active = true;
            }
        }
        if !any_active {
            #[cfg(feature = "paranoid")]
            {
                crate::paranoid::check_finite("preconditioned_cg_block solution", &x);
                for j in 0..k {
                    if norm_b[j] > 0.0 {
                        let col: Vec<f64> = r.iter().skip(j).step_by(k).copied().collect();
                        crate::paranoid::check_conservation(
                            "preconditioned_cg_block",
                            &col,
                            norm_b[j],
                            tol,
                        );
                    }
                }
            }
            return Ok((x, stats));
        }
        precond.precondition_block_into(&r, &mut z, k, &mut ws);
        let mut rz_new = vec![0.0f64; k];
        for (ri, zi) in r.chunks_exact(k).zip(z.chunks_exact(k)) {
            for ((acc, rj), zj) in rz_new.iter_mut().zip(ri).zip(zi) {
                *acc += rj * zj;
            }
        }
        for j in 0..k {
            if active[j] && (!rz_new[j].is_finite() || rz_new[j] <= 0.0) {
                return Err((it + 1, stats[j].1));
            }
        }
        for (pi, zi) in p.chunks_exact_mut(k).zip(z.chunks_exact(k)) {
            for j in 0..k {
                if active[j] {
                    let beta = rz_new[j] / rz[j];
                    pi[j] = zi[j] + beta * pi[j];
                }
            }
        }
        rz = rz_new;
    }
    let worst = stats
        .iter()
        .zip(&active)
        .filter(|(_, live)| **live)
        .map(|((_, res), _)| *res)
        .fold(0.0f64, f64::max);
    Err((max_iter, worst))
}

/// [`preconditioned_cg_block`] threaded over contiguous **lane groups**:
/// the `k` right-hand sides are split into at most `threads` groups and
/// each group runs the blocked CG independently inside one scoped team.
///
/// The blocked iteration never mixes lanes — every matvec, sweep,
/// transfer, dot, `α`/`β` and freeze decision is per-lane — so the
/// grouped solve is **bit-identical** to the single-group solve lane by
/// lane, at any thread count. With one group (or `k == 1`) this is a
/// plain passthrough.
///
/// # Errors
///
/// The first failing group's error, in group order (each group fails
/// exactly as the ungrouped solve over those lanes would).
#[allow(clippy::too_many_arguments)] // mirrors preconditioned_cg_block's signature plus the thread knob
pub(crate) fn preconditioned_cg_block_grouped<A, M>(
    a: &A,
    b: &[f64],
    k: usize,
    tol: f64,
    max_iter: usize,
    precond: &M,
    x0: Option<&[f64]>,
    threads: usize,
) -> Result<BlockSolution, (usize, f64)>
where
    A: LinearOperator + Sync,
    M: Preconditioning + Sync,
{
    let n = a.dim();
    let groups = crate::pool::lane_groups(k, threads);
    if groups.len() <= 1 {
        return preconditioned_cg_block(a, b, k, tol, max_iter, precond, x0);
    }
    // Carve the node-major block into per-group sub-blocks.
    let narrow = |src: &[f64], lo: usize, hi: usize| -> Vec<f64> {
        let kg = hi - lo;
        let mut sub = vec![0.0f64; n * kg];
        for (row, sub_row) in src.chunks_exact(k).zip(sub.chunks_exact_mut(kg)) {
            sub_row.copy_from_slice(&row[lo..hi]);
        }
        sub
    };
    // One job per lane group: (lo, hi, narrowed rhs, narrowed warm start).
    type LaneJob = (usize, usize, Vec<f64>, Option<Vec<f64>>);
    let jobs: Vec<LaneJob> = groups
        .iter()
        .map(|&(lo, hi)| {
            (
                lo,
                hi,
                narrow(b, lo, hi),
                x0.map(|seed| narrow(seed, lo, hi)),
            )
        })
        .collect();
    let results = crate::pool::run(jobs, |_, (lo, hi, bg, x0g)| {
        let kg = hi - lo;
        (
            lo,
            hi,
            preconditioned_cg_block(a, &bg, kg, tol, max_iter, precond, x0g.as_deref()),
        )
    });
    let mut x = vec![0.0f64; n * k];
    let mut stats = vec![(0usize, 0.0f64); k];
    for (lo, hi, result) in results {
        let (xg, sg) = result?;
        let kg = hi - lo;
        for (row, sub_row) in x.chunks_exact_mut(k).zip(xg.chunks_exact(kg)) {
            row[lo..hi].copy_from_slice(sub_row);
        }
        stats[lo..hi].copy_from_slice(&sg);
    }
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.diagonal(), vec![3.0, 1.0]);
    }

    #[test]
    fn cg_solves_laplacian_chain() {
        // Tridiagonal [2,-1] chain, b = e_0: classic SPD test.
        let n = 50;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, &t);
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        let (x, _, res) = conjugate_gradient(&a, &b, 1e-12, 10 * n).unwrap();
        assert!(res < 1e-10);
        // Check A x = b.
        let ax = a.mul_vec(&x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-8, "row {i}");
        }
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let (x, it, _) = conjugate_gradient(&a, &[0.0, 0.0], 1e-12, 10).unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(it, 0);
    }

    #[test]
    fn cg_detects_indefinite_matrix() {
        let a = CsrMatrix::from_triplets(1, &[(0, 0, -1.0)]);
        assert!(conjugate_gradient(&a, &[1.0], 1e-12, 10).is_err());
    }

    fn laplacian_chain(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, &t)
    }

    #[test]
    fn ic0_is_exact_on_a_tridiagonal_matrix() {
        // Tridiagonal matrices have no fill-in, so IC(0) is a complete
        // Cholesky factor and one preconditioner application solves.
        let n = 40;
        let a = laplacian_chain(n);
        let ic = IncompleteCholesky::factor(&a).expect("M-matrix factors");
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -2.0;
        let mut x = vec![0.0; n];
        ic.apply_into(&b, &mut x);
        let ax = a.mul_vec(&x);
        for i in 0..n {
            assert!(
                (ax[i] - b[i]).abs() < 1e-9,
                "row {i}: {} vs {}",
                ax[i],
                b[i]
            );
        }
    }

    #[test]
    fn ic0_pcg_converges_faster_than_jacobi() {
        let n = 200;
        let a = laplacian_chain(n);
        let mut b = vec![0.0; n];
        b[n / 2] = 1.0;
        let (_, it_jacobi, _) =
            preconditioned_cg(&a, &b, 1e-10, 10 * n, &Preconditioner::jacobi(&a)).unwrap();
        let (x, it_ic, _) =
            preconditioned_cg(&a, &b, 1e-10, 10 * n, &Preconditioner::best(&a)).unwrap();
        assert!(
            it_ic < it_jacobi,
            "IC(0) took {it_ic} iterations, Jacobi {it_jacobi}"
        );
        let ax = a.mul_vec(&x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn block_cg_matches_sequential_solves() {
        let n = 120;
        let a = laplacian_chain(n);
        let precond = Preconditioner::best(&a);
        // Four RHS, one of them zero (must freeze at iteration 0).
        let mut singles: Vec<Vec<f64>> = Vec::new();
        for j in 0..4 {
            let mut b = vec![0.0; n];
            if j > 0 {
                b[j * 17 % n] = 1.0 + j as f64;
                b[(j * 31 + 5) % n] = -0.5 * j as f64;
            }
            singles.push(b);
        }
        let k = singles.len();
        let mut block = vec![0.0; n * k];
        for (j, b) in singles.iter().enumerate() {
            for i in 0..n {
                block[i * k + j] = b[i];
            }
        }
        let (x, stats) =
            preconditioned_cg_block(&a, &block, k, 1e-11, 10 * n, &precond, None).unwrap();
        assert_eq!(stats[0], (0, 0.0), "zero RHS converges instantly");
        for (j, b) in singles.iter().enumerate() {
            let (want, _, _) = preconditioned_cg(&a, b, 1e-11, 10 * n, &precond).unwrap();
            for i in 0..n {
                assert!(
                    (x[i * k + j] - want[i]).abs() < 1e-8,
                    "system {j} row {i}: {} vs {}",
                    x[i * k + j],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn block_matvec_and_sweep_match_single() {
        let n = 60;
        let a = laplacian_chain(n);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let k = 3;
        let mut block = vec![0.0; n * k];
        let singles: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                (0..n)
                    .map(|i| ((i * 7 + j * 13) % 10) as f64 - 4.5)
                    .collect()
            })
            .collect();
        for (j, s) in singles.iter().enumerate() {
            for i in 0..n {
                block[i * k + j] = s[i];
            }
        }
        let mut y_block = vec![0.0; n * k];
        a.mul_block_into(&block, &mut y_block, k);
        let mut z_block = vec![0.0; n * k];
        ic.apply_block_into(&block, &mut z_block, k);
        for (j, s) in singles.iter().enumerate() {
            let y = a.mul_vec(s);
            let mut z = vec![0.0; n];
            ic.apply_into(s, &mut z);
            for i in 0..n {
                assert!((y_block[i * k + j] - y[i]).abs() < 1e-12);
                assert!((z_block[i * k + j] - z[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn warm_started_block_cg_matches_and_saves_iterations() {
        let n = 160;
        let a = laplacian_chain(n);
        // Jacobi, not IC(0): the incomplete factor is *exact* on a
        // tridiagonal chain, which would leave no iterations to save.
        let precond = Preconditioner::jacobi(&a);
        let mut b = vec![0.0; n];
        b[n / 3] = 1.0;
        b[2 * n / 3] = -0.5;
        let (cold, cold_stats) =
            preconditioned_cg_block(&a, &b, 1, 1e-11, 10 * n, &precond, None).unwrap();
        // Seeding with the exact solution converges without iterating.
        let (hot, hot_stats) =
            preconditioned_cg_block(&a, &b, 1, 1e-11, 10 * n, &precond, Some(&cold)).unwrap();
        assert_eq!(hot_stats[0].0, 0, "exact seed needs no iterations");
        for (a, b) in cold.iter().zip(&hot) {
            assert!((a - b).abs() < 1e-9);
        }
        // A partially-converged solution as seed picks up roughly where
        // it left off instead of starting over.
        let (rough, _) = preconditioned_cg_block(&a, &b, 1, 1e-4, 10 * n, &precond, None).unwrap();
        let (_, near_stats) =
            preconditioned_cg_block(&a, &b, 1, 1e-11, 10 * n, &precond, Some(&rough)).unwrap();
        assert!(
            near_stats[0].0 < cold_stats[0].0,
            "seeded {} vs cold {}",
            near_stats[0].0,
            cold_stats[0].0
        );
        // A zero-RHS system ignores its seed entirely.
        let zeros = vec![0.0; n];
        let junk = vec![1.0; n];
        let (x, stats) =
            preconditioned_cg_block(&a, &zeros, 1, 1e-11, 10, &precond, Some(&junk)).unwrap();
        assert_eq!(stats[0], (0, 0.0));
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ic0_breakdown_falls_back_to_jacobi() {
        // SPD but engineered so the (1,1) IC pivot goes non-positive is
        // hard with no fill; instead feed an indefinite matrix, whose
        // pivot breaks down immediately.
        let a = CsrMatrix::from_triplets(2, &[(0, 0, -1.0), (1, 1, 1.0)]);
        assert!(IncompleteCholesky::factor(&a).is_none());
        assert!(matches!(
            Preconditioner::best(&a),
            Preconditioner::Jacobi(_)
        ));
    }
}
