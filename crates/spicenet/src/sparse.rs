/// A compressed-sparse-row matrix, built from coordinate triplets.
///
/// Only what the conjugate-gradient solver needs: assembly with duplicate
/// summing, matrix-vector products, and diagonal extraction.
///
/// # Examples
///
/// ```
/// use spicenet::CsrMatrix;
///
/// // [2 -1; -1 2]
/// let m = CsrMatrix::from_triplets(2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)]);
/// let y = m.mul_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles an `n`×`n` matrix from `(row, col, value)` triplets,
    /// summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(r, c, _) in triplets {
            assert!(r < n && c < n, "triplet index out of range");
            counts[r + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0.0f64; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let k = cursor[r];
            col_idx[k] = c;
            values[k] = v;
            cursor[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_row_ptr = vec![0usize; n + 1];
        let mut out_cols = Vec::with_capacity(triplets.len());
        let mut out_vals = Vec::with_capacity(triplets.len());
        for r in 0..n {
            let lo = counts[r];
            let hi = counts[r + 1];
            let mut row: Vec<(usize, f64)> = col_idx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(c, _)| c);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for (c, v) in row {
                match merged.last_mut() {
                    Some((lc, lv)) if *lc == c => *lv += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                out_cols.push(c);
                out_vals.push(v);
            }
            out_row_ptr[r + 1] = out_cols.len();
        }
        CsrMatrix {
            n,
            row_ptr: out_row_ptr,
            col_idx: out_cols,
            values: out_vals,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
        y
    }

    /// The main diagonal (zeros where unstored).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (r, dr) in d.iter_mut().enumerate() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == r {
                    *dr = self.values[k];
                }
            }
        }
        d
    }
}

/// Jacobi-preconditioned conjugate gradients for SPD systems.
///
/// Returns `(x, iterations, relative_residual)`.
///
/// # Errors
///
/// Returns the iteration count and final residual if the tolerance is not
/// reached within `max_iter`.
pub(crate) fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<(Vec<f64>, usize, f64), (usize, f64)> {
    let n = a.n();
    let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm_b == 0.0 {
        return Ok((vec![0.0; n], 0, 0.0));
    }
    let diag = a.diagonal();
    let minv: Vec<f64> = diag
        .iter()
        .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
        .collect();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&minv).map(|(ri, mi)| ri * mi).collect();
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    for it in 0..max_iter {
        let ap = a.mul_vec(&p);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap <= 0.0 {
            // Not SPD (or numerically singular).
            return Err((it, f64::INFINITY));
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let norm_r = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm_r / norm_b < tol {
            return Ok((x, it + 1, norm_r / norm_b));
        }
        for i in 0..n {
            z[i] = r[i] * minv[i];
        }
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let norm_r = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    Err((max_iter, norm_r / norm_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.diagonal(), vec![3.0, 1.0]);
    }

    #[test]
    fn cg_solves_laplacian_chain() {
        // Tridiagonal [2,-1] chain, b = e_0: classic SPD test.
        let n = 50;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, &t);
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        let (x, _, res) = conjugate_gradient(&a, &b, 1e-12, 10 * n).unwrap();
        assert!(res < 1e-10);
        // Check A x = b.
        let ax = a.mul_vec(&x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-8, "row {i}");
        }
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let (x, it, _) = conjugate_gradient(&a, &[0.0, 0.0], 1e-12, 10).unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(it, 0);
    }

    #[test]
    fn cg_detects_indefinite_matrix() {
        let a = CsrMatrix::from_triplets(1, &[(0, 0, -1.0)]);
        assert!(conjugate_gradient(&a, &[1.0], 1e-12, 10).is_err());
    }
}
