//! Modified nodal analysis: system assembly, Dirichlet reduction and
//! solver dispatch.

use std::collections::HashMap;

use crate::circuit::{Circuit, NodeRef};
use crate::dense::lu_solve;
use crate::solution::DcSolution;
use crate::sparse::{conjugate_gradient, CsrMatrix};
use crate::SolveError;

/// Solver selection for [`Circuit::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Pick automatically: Dirichlet-reduced conjugate gradients when every
    /// voltage source is ideal-to-ground, dense LU otherwise.
    #[default]
    Auto,
    /// Force the sparse CG path (requires grounded voltage sources).
    ConjugateGradient,
    /// Force the dense full-MNA path (exact, O(n³) — small circuits only).
    DenseLu,
}

/// Options for [`Circuit::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Solver selection.
    pub method: Method,
    /// Relative residual tolerance for the iterative path.
    pub tolerance: f64,
    /// Iteration cap for the iterative path (default `20·n + 100`).
    pub max_iterations: Option<usize>,
    /// Worker threads for the factorized solvers (`0` and `1` both mean
    /// single-threaded). Results are bit-identical at any thread count
    /// — see [`crate::pool`] — so this is purely a latency knob.
    pub threads: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            method: Method::Auto,
            tolerance: 1e-10,
            max_iterations: None,
            threads: 1,
        }
    }
}

/// Returns `Some(map)` of node-index → fixed voltage when every voltage
/// source is ideal-to-ground; `None` otherwise. Conflicting constraints
/// yield an error.
pub(crate) fn dirichlet_map(c: &Circuit) -> Result<Option<HashMap<usize, f64>>, SolveError> {
    let mut fixed: HashMap<usize, f64> = HashMap::new();
    for vs in &c.vsources {
        let (node, volts) = match (vs.pos, vs.neg) {
            (NodeRef::Node(n), NodeRef::Ground) => (n.index(), vs.volts),
            (NodeRef::Ground, NodeRef::Node(n)) => (n.index(), -vs.volts),
            _ => return Ok(None),
        };
        if let Some(&prev) = fixed.get(&node) {
            if (prev - volts).abs() > 1e-12 {
                return Err(SolveError::Singular {
                    detail: format!(
                        "node {} is pinned to both {prev} V and {volts} V",
                        c.node_name(crate::NodeId::new(node))
                    ),
                });
            }
        }
        fixed.insert(node, volts);
    }
    Ok(Some(fixed))
}

/// The Dirichlet-reduced SPD system of a circuit: the conductance matrix
/// over non-pinned nodes plus the constant right-hand-side contribution
/// of the pinned (voltage-source) couplings. Everything here depends only
/// on the resistor pattern and the source voltages — not on the current
/// sources — so it can be assembled once and re-solved against many
/// injection vectors (see [`crate::FactorizedCircuit`]).
#[derive(Debug)]
pub(crate) struct ReducedSystem {
    /// Node index → reduced index (`None` for pinned nodes).
    pub(crate) reduced: Vec<Option<usize>>,
    /// Node index → pinned voltage.
    pub(crate) fixed: HashMap<usize, f64>,
    /// Reduced conductance matrix (SPD).
    pub(crate) a: CsrMatrix,
    /// RHS contribution of resistor couplings into pinned nodes.
    pub(crate) fixed_rhs: Vec<f64>,
}

/// Assembles the reduced system, rejecting nodes with no resistive path.
pub(crate) fn reduce(c: &Circuit, fixed: HashMap<usize, f64>) -> Result<ReducedSystem, SolveError> {
    let n = c.node_count();
    // Map unknown nodes to a dense reduced index space.
    let mut reduced: Vec<Option<usize>> = vec![None; n];
    let mut n_red = 0;
    for (i, slot) in reduced.iter_mut().enumerate() {
        if !fixed.contains_key(&i) {
            *slot = Some(n_red);
            n_red += 1;
        }
    }
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(4 * c.resistors.len());
    let mut fixed_rhs = vec![0.0; n_red];
    for r in &c.resistors {
        let g = 1.0 / r.ohms;
        let ends = [r.a, r.b];
        for (this, other) in [(ends[0], ends[1]), (ends[1], ends[0])] {
            let NodeRef::Node(ti) = this else { continue };
            let Some(ri) = reduced[ti.index()] else {
                continue;
            };
            triplets.push((ri, ri, g));
            match other {
                NodeRef::Ground => {}
                NodeRef::Node(oi) => match reduced[oi.index()] {
                    Some(rj) => triplets.push((ri, rj, -g)),
                    None => fixed_rhs[ri] += g * fixed[&oi.index()],
                },
            }
        }
    }
    let a = CsrMatrix::from_triplets(n_red, &triplets);
    // A node with no resistive attachment has an empty row — singular.
    for (i, &d) in a.diagonal().iter().enumerate() {
        if d <= 0.0 {
            let name = (0..n)
                .find(|&k| reduced[k] == Some(i))
                .map(|k| c.node_name(crate::NodeId::new(k)).to_string())
                .unwrap_or_default();
            return Err(SolveError::Singular {
                detail: format!("node {name} has no resistive path"),
            });
        }
    }
    Ok(ReducedSystem {
        reduced,
        fixed,
        a,
        fixed_rhs,
    })
}

impl ReducedSystem {
    /// Adds the circuit's own current sources onto a reduced RHS.
    pub(crate) fn isource_rhs_into(&self, c: &Circuit, rhs: &mut [f64]) {
        for s in &c.isources {
            if let NodeRef::Node(t) = s.to {
                if let Some(ri) = self.reduced[t.index()] {
                    rhs[ri] += s.amps;
                }
            }
            if let NodeRef::Node(fr) = s.from {
                if let Some(ri) = self.reduced[fr.index()] {
                    rhs[ri] -= s.amps;
                }
            }
        }
    }

    /// Expands a reduced *delta* solution back to per-node values: pinned
    /// nodes contribute zero (a voltage source absorbs any perturbation),
    /// so the result is a pure response to the injected deltas — the
    /// superposition building block behind influence columns.
    pub(crate) fn expand_delta(&self, x: &[f64]) -> Vec<f64> {
        self.reduced
            .iter()
            .map(|slot| match slot {
                Some(r) => x[*r],
                None => 0.0,
            })
            .collect()
    }

    /// Expands a reduced solution back to per-node voltages.
    pub(crate) fn expand(&self, x: &[f64]) -> Vec<f64> {
        self.reduced
            .iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(r) => x[*r],
                None => self.fixed[&i],
            })
            .collect()
    }
}

fn solve_reduced(
    c: &Circuit,
    fixed: HashMap<usize, f64>,
    options: &SolveOptions,
) -> Result<DcSolution, SolveError> {
    let sys = reduce(c, fixed)?;
    let n_red = sys.a.n();
    let mut rhs = sys.fixed_rhs.clone();
    sys.isource_rhs_into(c, &mut rhs);
    let max_iter = options.max_iterations.unwrap_or(20 * n_red + 100);
    let (x, iterations, residual) = if n_red == 0 {
        (Vec::new(), 0, 0.0)
    } else {
        conjugate_gradient(&sys.a, &rhs, options.tolerance, max_iter).map_err(
            |(iterations, residual)| {
                if residual.is_infinite() {
                    SolveError::Singular {
                        detail: "conductance matrix is not positive definite \
                                 (floating subcircuit?)"
                            .to_string(),
                    }
                } else {
                    SolveError::NotConverged {
                        iterations,
                        residual,
                    }
                }
            },
        )?
    };
    let voltages: Vec<f64> = sys.expand(&x);
    // Current delivered by each voltage source = KCL imbalance at its node.
    let volt_of = |r: NodeRef| -> f64 {
        match r {
            NodeRef::Ground => 0.0,
            NodeRef::Node(id) => voltages[id.index()],
        }
    };
    let vsource_currents: Vec<f64> = c
        .vsources
        .iter()
        .map(|vs| {
            let (node_ref, sign) = match (vs.pos, vs.neg) {
                (NodeRef::Node(_), NodeRef::Ground) => (vs.pos, 1.0),
                (NodeRef::Ground, NodeRef::Node(_)) => (vs.neg, -1.0),
                _ => unreachable!("reduced path requires grounded sources"),
            };
            let mut out = 0.0;
            for r in &c.resistors {
                if r.a == node_ref {
                    out += (volt_of(r.a) - volt_of(r.b)) / r.ohms;
                } else if r.b == node_ref {
                    out += (volt_of(r.b) - volt_of(r.a)) / r.ohms;
                }
            }
            for s in &c.isources {
                if s.to == node_ref {
                    out -= s.amps;
                }
                if s.from == node_ref {
                    out += s.amps;
                }
            }
            sign * out
        })
        .collect();
    Ok(DcSolution::new(
        voltages,
        vsource_currents,
        iterations,
        residual,
    ))
}

fn solve_dense(c: &Circuit, _options: &SolveOptions) -> Result<DcSolution, SolveError> {
    let n = c.node_count();
    let m = c.vsources.len();
    let dim = n + m;
    let mut a = vec![vec![0.0; dim]; dim];
    let mut b = vec![0.0; dim];
    let idx = |r: NodeRef| -> Option<usize> {
        match r {
            NodeRef::Ground => None,
            NodeRef::Node(id) => Some(id.index()),
        }
    };
    for r in &c.resistors {
        let g = 1.0 / r.ohms;
        let ia = idx(r.a);
        let ib = idx(r.b);
        if let Some(i) = ia {
            a[i][i] += g;
        }
        if let Some(j) = ib {
            a[j][j] += g;
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            a[i][j] -= g;
            a[j][i] -= g;
        }
    }
    for s in &c.isources {
        if let Some(i) = idx(s.to) {
            b[i] += s.amps;
        }
        if let Some(i) = idx(s.from) {
            b[i] -= s.amps;
        }
    }
    for (k, vs) in c.vsources.iter().enumerate() {
        let row = n + k;
        if let Some(i) = idx(vs.pos) {
            a[i][row] += 1.0;
            a[row][i] += 1.0;
        }
        if let Some(i) = idx(vs.neg) {
            a[i][row] -= 1.0;
            a[row][i] -= 1.0;
        }
        b[row] = vs.volts;
    }
    let x = lu_solve(a, b).ok_or_else(|| SolveError::Singular {
        detail: "MNA matrix is singular (floating node or source loop)".to_string(),
    })?;
    let voltages = x[..n].to_vec();
    // MNA's extra unknowns are the currents *into* the positive terminal;
    // negate to report the current delivered by the source.
    let vsource_currents = x[n..].iter().map(|i| -i).collect();
    Ok(DcSolution::new(voltages, vsource_currents, 0, 0.0))
}

pub(crate) fn solve(c: &Circuit, options: SolveOptions) -> Result<DcSolution, SolveError> {
    if c.node_count() == 0 || c.element_count() == 0 {
        return Err(SolveError::EmptyCircuit);
    }
    match options.method {
        Method::DenseLu => solve_dense(c, &options),
        Method::ConjugateGradient => match dirichlet_map(c)? {
            Some(fixed) => solve_reduced(c, fixed, &options),
            None => Err(SolveError::Singular {
                detail: "CG path requires all voltage sources grounded".to_string(),
            }),
        },
        Method::Auto => match dirichlet_map(c)? {
            Some(fixed) => solve_reduced(c, fixed, &options),
            None => solve_dense(c, &options),
        },
    }
}
