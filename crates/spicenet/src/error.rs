use crate::NodeId;

/// Errors raised while constructing a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CircuitError {
    /// A node id from a different circuit (or out of range) was used.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// An element value was non-finite or out of its legal range.
    InvalidValue {
        /// Which quantity was invalid.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An element connected a node to itself.
    SelfLoop,
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::UnknownNode { node } => write!(f, "unknown node {node}"),
            CircuitError::InvalidValue { what, value } => {
                write!(f, "invalid {what} value {value}")
            }
            CircuitError::SelfLoop => write!(f, "element connects a node to itself"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// Errors raised by the DC solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The circuit has no nodes or no elements.
    EmptyCircuit,
    /// An injection or probe named a node that does not belong to the
    /// factorized circuit.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// The system matrix is singular — typically a node or subcircuit with
    /// no DC path to ground or a voltage source.
    Singular {
        /// Human-readable description of the offending structure.
        detail: String,
    },
    /// The iterative solver did not reach the requested tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::EmptyCircuit => write!(f, "circuit has no solvable content"),
            SolveError::UnknownNode { node } => {
                write!(f, "node {node} does not belong to the factorized circuit")
            }
            SolveError::Singular { detail } => write!(f, "singular system: {detail}"),
            SolveError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solve stopped after {iterations} iterations at residual {residual:.3e}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}
