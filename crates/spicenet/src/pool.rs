//! Deterministic scoped worker-pool primitives for the threaded solver
//! kernels.
//!
//! The multigrid stencil path threads its hot kernels over disjoint
//! lateral row slabs (see `stencil.rs`); the blocked CG paths thread
//! over lane groups (see `sparse.rs`). Both are built from the pieces
//! in this module:
//!
//! * [`run`] — spawn a worker team inside one [`std::thread::scope`]
//!   and hand each worker its own moved-in context. The team is spawned
//!   **once per solve** and reused across every CG iteration; phases
//!   inside the solve synchronize through [`Board::sync`] barriers
//!   rather than respawning threads per kernel call.
//! * [`Board`] — a mailbox-and-barrier rendezvous: workers publish halo
//!   rows (or gathered slabs) into their own slot, synchronize, and
//!   read their neighbours' slots. Plain `Mutex<Vec<f64>>` slots keep
//!   the whole layer safe Rust — the workspace forbids `unsafe`.
//! * [`Partials`] — fixed-shape reduction slots. Every global sum in
//!   the threaded solver (dot products, the border-row bottom sum) is
//!   computed as per-row partial sums folded in a fixed sequential
//!   order, so the grouping of floating-point additions depends only on
//!   the problem shape — **never** on the thread count.
//! * [`dot_wide`] / [`chunked_dot`] — the canonical fixed-shape dot
//!   kernels: an 8-accumulator inner loop the compiler can
//!   autovectorize, folded over fixed-width chunks.
//!
//! # Determinism contract
//!
//! Every kernel built on this module produces **bit-identical** results
//! at any thread count (including 1). This is load-bearing:
//! `Flow::content_key` and the coolserved disk cache assume bit-exact
//! reproducibility, so a result computed with 4 threads must hash to
//! the same key as the same solve on 1 thread. The property tests in
//! `stencil.rs` pin this at 1/2/4 threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};

/// Number of independent accumulators in [`dot_wide`]'s inner loop —
/// wide enough for the compiler to keep the reduction in vector
/// registers, fixed so the summation tree never changes shape.
const DOT_LANES: usize = 8;

/// Chunk width of [`chunked_dot`]: partial sums are taken over
/// fixed-width chunks of this many entries and folded sequentially, so
/// the reduction tree depends only on the vector length.
pub const DOT_CHUNK: usize = 4096;

/// Resolves a requested thread count to the effective worker count:
/// `0` and `1` both mean single-threaded; anything larger is honoured
/// as-is (capped at 64 — a slab split finer than that stops paying).
pub fn effective_threads(requested: usize) -> usize {
    requested.clamp(1, 64)
}

/// The fixed-shape dot product of two equal-length slices: `DOT_LANES`
/// independent accumulators over the `chunks_exact` body, combined in a
/// fixed binary tree, plus a sequential tail. The summation order is a
/// pure function of the slice length, so every caller — scalar or
/// threaded — gets the same bits.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_wide(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    let mut acc = [0.0f64; DOT_LANES];
    let a_body = a.chunks_exact(DOT_LANES);
    let b_body = b.chunks_exact(DOT_LANES);
    let a_tail = a_body.remainder();
    let b_tail = b_body.remainder();
    for (av, bv) in a_body.zip(b_body) {
        for ((acc, x), y) in acc.iter_mut().zip(av).zip(bv) {
            *acc += x * y;
        }
    }
    let pair01 = acc[0] + acc[1];
    let pair23 = acc[2] + acc[3];
    let pair45 = acc[4] + acc[5];
    let pair67 = acc[6] + acc[7];
    let mut total = (pair01 + pair23) + (pair45 + pair67);
    for (x, y) in a_tail.iter().zip(b_tail) {
        total += x * y;
    }
    total
}

/// The chunked-tree dot product: [`dot_wide`] partials over fixed
/// [`DOT_CHUNK`]-wide chunks, folded in sequence. This is the
/// deterministic replacement for `iter().zip().map().sum()` in the CG
/// loops — same shape whether the chunks are evaluated by one thread
/// or many.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn chunked_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    let mut total = 0.0;
    for (av, bv) in a.chunks(DOT_CHUNK).zip(b.chunks(DOT_CHUNK)) {
        total += dot_wide(av, bv);
    }
    total
}

/// Splits `k` lanes into at most `threads` contiguous, near-equal
/// groups — the lane-group decomposition of the blocked CG paths.
/// Returns `(start, end)` half-open ranges covering `0..k` in order.
///
/// Groups always hold at least two lanes (unless `k < 2`): a size-1
/// group would run the multigrid cycle's scalar `k == 1` kernels, whose
/// summation shape differs from the blocked kernels — and lane-group
/// solves must stay bit-identical lane-by-lane at any thread count.
pub fn lane_groups(k: usize, threads: usize) -> Vec<(usize, usize)> {
    let g = effective_threads(threads).min((k / 2).max(1));
    (0..g)
        .map(|i| (k * i / g, k * (i + 1) / g))
        .filter(|(lo, hi)| hi > lo)
        .collect()
}

/// Runs `ctxs.len()` workers inside one [`std::thread::scope`], moving
/// each context into its worker. Worker 0 runs on the calling thread;
/// results come back in worker order. The scope spans the whole call,
/// so a solver that enters here once keeps its team alive across every
/// iteration of its outer loop.
///
/// # Panics
///
/// Propagates the first worker panic after the scope joins.
pub fn run<C: Send, R: Send>(ctxs: Vec<C>, f: impl Fn(usize, C) -> R + Sync) -> Vec<R> {
    let mut ctxs = ctxs.into_iter();
    let Some(ctx0) = ctxs.next() else {
        return Vec::new();
    };
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .enumerate()
            .map(|(i, ctx)| scope.spawn(move || f(i + 1, ctx)))
            .collect();
        let first = f(0, ctx0);
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(first);
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out
    })
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A poisoned slot only means a sibling worker panicked mid-publish;
    // the panic propagates through the scope join, so recovering the
    // guard here cannot launder a half-written exchange into a result.
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Mailbox-and-barrier rendezvous for a worker team: one publishing
/// slot per worker plus the phase barrier the whole solve synchronizes
/// on. The publish → [`Board::sync`] → read → [`Board::sync`] cycle
/// makes every exchange race-free: writes happen strictly before the
/// first barrier, reads strictly between the two.
pub struct Board {
    slots: Vec<Mutex<Vec<f64>>>,
    barrier: Barrier,
}

impl Board {
    /// A board for `workers` participants, each slot empty.
    pub fn new(workers: usize) -> Board {
        Board {
            slots: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            barrier: Barrier::new(workers),
        }
    }

    /// Overwrites worker `w`'s slot through `fill` (the slot vector is
    /// cleared first; its capacity is retained across exchanges).
    pub fn publish(&self, w: usize, fill: impl FnOnce(&mut Vec<f64>)) {
        let mut slot = unpoison(self.slots[w].lock());
        slot.clear();
        fill(&mut slot);
    }

    /// Reads worker `s`'s slot.
    pub fn read<R>(&self, s: usize, f: impl FnOnce(&[f64]) -> R) -> R {
        f(&unpoison(self.slots[s].lock()))
    }

    /// The team barrier: every worker must call this the same number of
    /// times in the same phase order.
    pub fn sync(&self) {
        self.barrier.wait();
    }
}

/// Fixed-shape reduction slots: one `f64` (stored as bits in an
/// `AtomicU64`) per partial sum. Workers store the partials for the
/// rows they own, synchronize on the team [`Board`], and every worker
/// folds **all** slots in the same fixed sequential order — the
/// reduction tree is a function of the slot count alone, never of the
/// thread count.
pub struct Partials {
    slots: Vec<AtomicU64>,
}

impl Partials {
    /// `n` zeroed slots.
    pub fn new(n: usize) -> Partials {
        Partials {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Stores partial `i` (relaxed — the phase barrier publishes it).
    pub fn set(&self, i: usize, v: f64) {
        self.slots[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Folds slots `0..len` sequentially. Call only after a barrier
    /// that orders it against every [`Partials::set`].
    pub fn fold(&self) -> f64 {
        let mut total = 0.0;
        for s in &self.slots {
            total += f64::from_bits(s.load(Ordering::Relaxed));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_kernels_are_exact_on_integers_and_shape_stable() {
        let a: Vec<f64> = (0..10_000).map(|i| (i % 37) as f64).collect();
        let b: Vec<f64> = (0..10_000).map(|i| (i % 11) as f64).collect();
        // Integer-valued data keeps every f64 sum exact, so the chunked
        // kernels must agree with the naive sum to the last bit.
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot_wide(&a, &b), naive);
        assert_eq!(chunked_dot(&a, &b), naive);
        // And the chunked shape is stable under slicing boundaries that
        // are not multiples of the lane width.
        let odd = 4097;
        let naive_odd: f64 = a[..odd].iter().zip(&b[..odd]).map(|(x, y)| x * y).sum();
        assert_eq!(chunked_dot(&a[..odd], &b[..odd]), naive_odd);
    }

    #[test]
    fn lane_groups_cover_and_respect_caps() {
        assert_eq!(lane_groups(10, 3), vec![(0, 3), (3, 6), (6, 10)]);
        assert_eq!(lane_groups(2, 8), vec![(0, 2)]);
        assert_eq!(lane_groups(5, 4), vec![(0, 2), (2, 5)]);
        assert_eq!(lane_groups(5, 1), vec![(0, 5)]);
        assert_eq!(lane_groups(0, 4), Vec::<(usize, usize)>::new());
        for k in 1..40 {
            for t in 1..9 {
                let groups = lane_groups(k, t);
                assert_eq!(groups.first().map(|g| g.0), Some(0));
                assert_eq!(groups.last().map(|g| g.1), Some(k));
                for pair in groups.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "contiguous groups");
                    assert!(pair[0].1 - pair[0].0 >= 2, "no singleton groups");
                }
                if k >= 2 {
                    for (lo, hi) in &groups {
                        assert!(hi - lo >= 2, "k={k} t={t}: singleton group");
                    }
                }
            }
        }
    }

    #[test]
    fn run_moves_contexts_and_orders_results() {
        let ctxs: Vec<usize> = (0..4).collect();
        let out = run(ctxs, |w, c| {
            assert_eq!(w, c);
            w * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert_eq!(run(Vec::<usize>::new(), |_, c| c), Vec::<usize>::new());
    }

    #[test]
    fn board_exchange_and_partials_roundtrip() {
        let board = Board::new(1);
        board.publish(0, |v| v.extend_from_slice(&[1.0, 2.0]));
        board.sync();
        let got = board.read(0, |s| s.to_vec());
        assert_eq!(got, vec![1.0, 2.0]);
        let p = Partials::new(3);
        p.set(0, 1.5);
        p.set(2, 2.5);
        assert_eq!(p.fold(), 4.0);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(4), 4);
        assert_eq!(effective_threads(1000), 64);
    }
}
