use crate::NodeRef;

/// Convergence diagnostics of one iterative re-solve — the
/// preconditioner-quality signal behind the bench pipeline's
/// solver-scaling section. `#[must_use]`: a dropped `SolveStats` means
/// a caller asked for diagnostics it never looked at (use
/// `solve_injections` instead).
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Conjugate-gradient iterations performed (0 when the reduced
    /// system is empty).
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// The result of a DC operating-point analysis.
///
/// # Examples
///
/// ```
/// use spicenet::{Circuit, NodeRef, SolveOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new();
/// let n = c.node("n");
/// c.current_source(NodeRef::Ground, NodeRef::Node(n), 2.0)?;
/// c.resistor(NodeRef::Node(n), NodeRef::Ground, 5.0)?;
/// let sol = c.solve(SolveOptions::default())?;
/// assert!((sol.voltage(NodeRef::Node(n)) - 10.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    voltages: Vec<f64>,
    vsource_currents: Vec<f64>,
    iterations: usize,
    residual: f64,
}

impl DcSolution {
    pub(crate) fn new(
        voltages: Vec<f64>,
        vsource_currents: Vec<f64>,
        iterations: usize,
        residual: f64,
    ) -> Self {
        DcSolution {
            voltages,
            vsource_currents,
            iterations,
            residual,
        }
    }

    /// The voltage at a node (0 for ground).
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn voltage(&self, node: NodeRef) -> f64 {
        match node {
            NodeRef::Ground => 0.0,
            NodeRef::Node(id) => self.voltages[id.index()],
        }
    }

    /// All node voltages, indexed by [`crate::NodeId`].
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// The current delivered by the `k`-th voltage source (in insertion
    /// order), flowing out of its positive terminal into the circuit.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn vsource_current(&self, k: usize) -> f64 {
        self.vsource_currents[k]
    }

    /// Iterations used by the iterative path (0 for dense solves).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final relative residual of the iterative path (0 for dense solves).
    pub fn residual(&self) -> f64 {
        self.residual
    }
}
